#include "text/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace briq::text {

namespace {

bool IsWordChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c));
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

// Returns the byte length of the UTF-8 sequence starting at s[i], or 1 for
// ASCII / malformed input.
size_t Utf8Len(std::string_view s, size_t i) {
  unsigned char c = static_cast<unsigned char>(s[i]);
  if (c < 0x80) return 1;
  size_t len = 1;
  if ((c & 0xE0) == 0xC0) len = 2;
  else if ((c & 0xF0) == 0xE0) len = 3;
  else if ((c & 0xF8) == 0xF0) len = 4;
  if (i + len > s.size()) return 1;
  return len;
}

// Symbols meaningful to the quantity parser (kept as kSymbol tokens).
bool IsAsciiSymbolChar(char c) {
  switch (c) {
    case '$':
    case '%':
    case '#':
    case '+':
    case '^':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<Token> Tokenize(std::string_view s) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (IsSpace(c)) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsDigit(c)) {
      // Number: digits with internal ',', '.', or digit-grouping. A ',' or
      // '.' is internal only if followed by a digit.
      ++i;
      while (i < s.size()) {
        if (IsDigit(s[i])) {
          ++i;
        } else if ((s[i] == ',' || s[i] == '.') && i + 1 < s.size() &&
                   IsDigit(s[i + 1])) {
          i += 2;
        } else {
          break;
        }
      }
      tokens.push_back(Token{std::string(s.substr(start, i - start)),
                             TokenKind::kNumber, Span{start, i}});
    } else if (IsWordChar(c)) {
      // Word: letters with internal hyphens/apostrophes ("e-tron", "don't").
      ++i;
      while (i < s.size()) {
        if (IsWordChar(s[i])) {
          ++i;
        } else if ((s[i] == '-' || s[i] == '\'') && i + 1 < s.size() &&
                   IsWordChar(s[i + 1])) {
          i += 2;
        } else {
          break;
        }
      }
      tokens.push_back(Token{std::string(s.substr(start, i - start)),
                             TokenKind::kWord, Span{start, i}});
    } else if (static_cast<unsigned char>(c) >= 0x80) {
      // Multi-byte UTF-8 char (currency symbols like €, £, ±): one symbol.
      size_t len = Utf8Len(s, i);
      i += len;
      tokens.push_back(Token{std::string(s.substr(start, len)),
                             TokenKind::kSymbol, Span{start, i}});
    } else if (IsAsciiSymbolChar(c)) {
      ++i;
      tokens.push_back(
          Token{std::string(1, c), TokenKind::kSymbol, Span{start, i}});
    } else {
      // Single punctuation character.
      ++i;
      tokens.push_back(
          Token{std::string(1, c), TokenKind::kPunctuation, Span{start, i}});
    }
  }
  return tokens;
}

namespace {

// Abbreviations whose trailing '.' does not end a sentence.
bool IsAbbreviation(std::string_view word) {
  static const char* kAbbrevs[] = {"ca",  "approx", "e.g", "i.e", "etc", "vs",
                                   "mr",  "mrs",    "dr",  "no",  "fig", "mio",
                                   "bn",  "mln",    "st",  "inc", "corp", "q"};
  std::string lower = util::ToLower(word);
  for (const char* a : kAbbrevs) {
    if (lower == a) return true;
  }
  // Single letters ("J. Smith") are abbreviations.
  return word.size() == 1;
}

}  // namespace

std::vector<Span> SplitSentences(std::string_view s) {
  std::vector<Span> sentences;
  size_t start = 0;
  size_t i = 0;
  auto flush = [&](size_t end) {
    // Trim whitespace inside the span.
    size_t b = start;
    while (b < end && IsSpace(s[b])) ++b;
    size_t e = end;
    while (e > b && IsSpace(s[e - 1])) --e;
    if (e > b) sentences.push_back(Span{b, e});
    start = end;
  };
  while (i < s.size()) {
    char c = s[i];
    if (c == '!' || c == '?' || c == '\n') {
      flush(i + 1);
      ++i;
      continue;
    }
    if (c == '.') {
      // Not a boundary when inside a decimal number: digit '.' digit.
      bool prev_digit = i > 0 && IsDigit(s[i - 1]);
      bool next_digit = i + 1 < s.size() && IsDigit(s[i + 1]);
      if (prev_digit && next_digit) {
        ++i;
        continue;
      }
      // Not a boundary after a known abbreviation.
      size_t wend = i;
      size_t wstart = wend;
      while (wstart > start && (IsWordChar(s[wstart - 1]) || s[wstart - 1] == '.')) {
        --wstart;
      }
      if (wend > wstart && IsAbbreviation(s.substr(wstart, wend - wstart))) {
        ++i;
        continue;
      }
      // Boundary only if followed by whitespace+capital/digit or end.
      size_t j = i + 1;
      while (j < s.size() && s[j] == '.') ++j;  // ellipsis
      if (j >= s.size()) {
        flush(j);
        i = j;
        continue;
      }
      if (IsSpace(s[j])) {
        size_t k = j;
        while (k < s.size() && IsSpace(s[k])) ++k;
        if (k >= s.size() || std::isupper(static_cast<unsigned char>(s[k])) ||
            IsDigit(s[k]) || s[k] == '$' ||
            static_cast<unsigned char>(s[k]) >= 0x80) {
          flush(j);
          i = j;
          continue;
        }
      }
    }
    ++i;
  }
  flush(s.size());
  return sentences;
}

std::vector<std::string> LowercaseWords(std::string_view s) {
  std::vector<std::string> words;
  for (const Token& t : Tokenize(s)) {
    if (t.kind == TokenKind::kWord) words.push_back(util::ToLower(t.textual));
  }
  return words;
}

}  // namespace briq::text
