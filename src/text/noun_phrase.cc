#include "text/noun_phrase.h"

#include "text/stopwords.h"
#include "util/string_util.h"

namespace briq::text {

std::vector<NounPhrase> ExtractNounPhrases(std::string_view s) {
  std::vector<Token> tokens = Tokenize(s);
  std::vector<NounPhrase> phrases;

  size_t i = 0;
  while (i < tokens.size()) {
    // Skip anything that cannot start a phrase.
    if (tokens[i].kind != TokenKind::kWord || IsStopword(tokens[i].textual) ||
        IsPhraseBreaker(tokens[i].textual)) {
      ++i;
      continue;
    }
    // Collect a maximal run of content words.
    size_t start = i;
    while (i < tokens.size() && tokens[i].kind == TokenKind::kWord &&
           !IsStopword(tokens[i].textual) &&
           !IsPhraseBreaker(tokens[i].textual)) {
      ++i;
    }
    NounPhrase np;
    np.span = Span{tokens[start].span.begin, tokens[i - 1].span.end};
    for (size_t j = start; j < i; ++j) {
      np.words.push_back(util::ToLower(tokens[j].textual));
    }
    np.normalized = util::Join(np.words, " ");
    phrases.push_back(std::move(np));
  }
  return phrases;
}

std::vector<std::string> NounPhraseStrings(std::string_view s) {
  std::vector<std::string> out;
  for (auto& np : ExtractNounPhrases(s)) out.push_back(std::move(np.normalized));
  return out;
}

}  // namespace briq::text
