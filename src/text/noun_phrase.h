#ifndef BRIQ_TEXT_NOUN_PHRASE_H_
#define BRIQ_TEXT_NOUN_PHRASE_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"

namespace briq::text {

/// A candidate noun phrase: contiguous content words from the source text.
struct NounPhrase {
  /// Lowercased, space-joined words, e.g. "segment profit".
  std::string normalized;
  /// Individual lowercased words.
  std::vector<std::string> words;
  Span span;
};

/// Extracts heuristic noun phrases: maximal runs of word tokens that are
/// neither stopwords nor phrase-breaking verbs, with leading/trailing
/// adjectives kept. This lexicon-driven chunker substitutes for a full POS
/// tagger; the paper's features f4/f5 only require comparable phrase bags on
/// the text and table sides, which this provides (see DESIGN.md §2).
std::vector<NounPhrase> ExtractNounPhrases(std::string_view s);

/// Flattened normalized phrase strings (convenience for overlap features).
std::vector<std::string> NounPhraseStrings(std::string_view s);

}  // namespace briq::text

#endif  // BRIQ_TEXT_NOUN_PHRASE_H_
