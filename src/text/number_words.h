#ifndef BRIQ_TEXT_NUMBER_WORDS_H_
#define BRIQ_TEXT_NUMBER_WORDS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace briq::text {

/// Parses a spelled-out English number ("twenty", "twenty-five",
/// "three hundred", "two million") into its value. Accepts hyphenated and
/// space-separated compounds. Returns nullopt when `words` is not a number
/// phrase.
std::optional<double> ParseNumberWords(const std::vector<std::string>& words);

/// Convenience overload over a raw phrase ("twenty five").
std::optional<double> ParseNumberWords(std::string_view phrase);

/// True if `word` (single token, any case) participates in spelled-out
/// numbers ("seven", "hundred", "million").
bool IsNumberWord(std::string_view word);

/// Scale multiplier for words like "thousand"/"k"/"million"/"mio"/"bn";
/// returns nullopt for non-scale words.
std::optional<double> ScaleWordMultiplier(std::string_view word);

}  // namespace briq::text

#endif  // BRIQ_TEXT_NUMBER_WORDS_H_
