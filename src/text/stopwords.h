#ifndef BRIQ_TEXT_STOPWORDS_H_
#define BRIQ_TEXT_STOPWORDS_H_

#include <string_view>

namespace briq::text {

/// True if `word` (any case) is an English stopword (determiners, pronouns,
/// prepositions, auxiliaries, conjunctions). Used to filter bag-of-words
/// features and to delimit heuristic noun phrases.
bool IsStopword(std::string_view word);

/// True for words that terminate a noun phrase even though they are not
/// classic stopwords (verbs of being/reporting, comparatives used as cues).
bool IsPhraseBreaker(std::string_view word);

}  // namespace briq::text

#endif  // BRIQ_TEXT_STOPWORDS_H_
