#include "text/number_words.h"

#include <unordered_map>

#include "util/string_util.h"

namespace briq::text {

namespace {

const std::unordered_map<std::string, double>& UnitWordMap() {
  static const auto& kMap = *new std::unordered_map<std::string, double>{
      {"zero", 0},      {"one", 1},       {"two", 2},      {"three", 3},
      {"four", 4},      {"five", 5},      {"six", 6},      {"seven", 7},
      {"eight", 8},     {"nine", 9},      {"ten", 10},     {"eleven", 11},
      {"twelve", 12},   {"thirteen", 13}, {"fourteen", 14}, {"fifteen", 15},
      {"sixteen", 16},  {"seventeen", 17}, {"eighteen", 18}, {"nineteen", 19},
      {"twenty", 20},   {"thirty", 30},   {"forty", 40},   {"fifty", 50},
      {"sixty", 60},    {"seventy", 70},  {"eighty", 80},  {"ninety", 90},
  };
  return kMap;
}

// Multipliers usable inside spelled-out numbers.
const std::unordered_map<std::string, double>& MultiplierWordMap() {
  static const auto& kMap = *new std::unordered_map<std::string, double>{
      {"hundred", 1e2},  {"thousand", 1e3}, {"million", 1e6},
      {"billion", 1e9},  {"trillion", 1e12},
  };
  return kMap;
}

}  // namespace

bool IsNumberWord(std::string_view word) {
  std::string w = util::ToLower(word);
  return UnitWordMap().count(w) > 0 || MultiplierWordMap().count(w) > 0;
}

std::optional<double> ScaleWordMultiplier(std::string_view word) {
  static const auto& kScales = *new std::unordered_map<std::string, double>{
      {"k", 1e3},        {"thousand", 1e3},  {"thousands", 1e3},
      {"m", 1e6},        {"mm", 1e6},        {"mio", 1e6},
      {"mln", 1e6},      {"million", 1e6},   {"millions", 1e6},
      {"b", 1e9},        {"bn", 1e9},        {"billion", 1e9},
      {"billions", 1e9}, {"trillion", 1e12}, {"trillions", 1e12},
      {"t", 1e12},       {"lakh", 1e5},      {"crore", 1e7},
  };
  auto it = kScales.find(util::ToLower(word));
  if (it == kScales.end()) return std::nullopt;
  return it->second;
}

std::optional<double> ParseNumberWords(const std::vector<std::string>& words) {
  if (words.empty()) return std::nullopt;

  double total = 0.0;    // completed groups (e.g., "two thousand")
  double current = 0.0;  // group under construction
  bool saw_any = false;

  for (const std::string& raw : words) {
    std::string w = util::ToLower(raw);
    if (w == "and") continue;  // "one hundred and five"

    // Hyphenated compounds: "twenty-five".
    auto hyphen = w.find('-');
    if (hyphen != std::string::npos) {
      auto left = UnitWordMap().find(w.substr(0, hyphen));
      auto right = UnitWordMap().find(w.substr(hyphen + 1));
      if (left == UnitWordMap().end() || right == UnitWordMap().end()) {
        return std::nullopt;
      }
      current += left->second + right->second;
      saw_any = true;
      continue;
    }

    auto unit = UnitWordMap().find(w);
    if (unit != UnitWordMap().end()) {
      current += unit->second;
      saw_any = true;
      continue;
    }
    auto mult = MultiplierWordMap().find(w);
    if (mult != MultiplierWordMap().end()) {
      if (!saw_any) current = 1.0;  // bare "hundred" == 100
      if (mult->second == 1e2) {
        current *= 1e2;  // "three hundred fifty" keeps building the group
      } else {
        total += current * mult->second;
        current = 0.0;
      }
      saw_any = true;
      continue;
    }
    return std::nullopt;  // non-number word
  }
  if (!saw_any) return std::nullopt;
  return total + current;
}

std::optional<double> ParseNumberWords(std::string_view phrase) {
  return ParseNumberWords(util::SplitWhitespace(phrase));
}

}  // namespace briq::text
