#ifndef BRIQ_TEXT_TOKENIZER_H_
#define BRIQ_TEXT_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace briq::text {

/// A half-open character range [begin, end) into the source string.
struct Span {
  size_t begin = 0;
  size_t end = 0;

  size_t length() const { return end - begin; }
  bool Overlaps(const Span& other) const {
    return begin < other.end && other.begin < end;
  }
  bool Contains(size_t pos) const { return pos >= begin && pos < end; }
  bool operator==(const Span& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// Token kinds distinguish the pieces the quantity extractor cares about.
enum class TokenKind {
  kWord,         // alphabetic run, possibly with internal hyphens/apostrophes
  kNumber,       // digit run, possibly with separators/decimal point
  kPunctuation,  // single punctuation char
  kSymbol,       // currency symbols, %, etc.
};

/// A token with its surface form and source position.
struct Token {
  std::string textual;  // surface form as it appears
  TokenKind kind = TokenKind::kWord;
  Span span;

  const std::string& str() const { return textual; }
};

/// Splits `s` into word/number/punctuation/symbol tokens with exact source
/// offsets. Numbers keep internal thousands separators and decimal points
/// ("1,144,716", "2.74") as a single token; words keep internal hyphens and
/// apostrophes ("e-tron", "don't"). Multi-byte UTF-8 currency symbols
/// (e.g. "€") are emitted as single kSymbol tokens.
std::vector<Token> Tokenize(std::string_view s);

/// Splits `s` into sentences by ., !, ? boundaries, skipping common
/// abbreviation traps ("ca.", "e.g.", decimal points). Returns spans into
/// `s`; every character belongs to at most one sentence span.
std::vector<Span> SplitSentences(std::string_view s);

/// Lowercased word tokens only (convenience for bag-of-words features).
std::vector<std::string> LowercaseWords(std::string_view s);

}  // namespace briq::text

#endif  // BRIQ_TEXT_TOKENIZER_H_
