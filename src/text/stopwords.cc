#include "text/stopwords.h"

#include <string>
#include <unordered_set>

#include "util/string_util.h"

namespace briq::text {

namespace {

const std::unordered_set<std::string>& StopwordSet() {
  static const auto& kSet = *new std::unordered_set<std::string>{
      // Articles & determiners.
      "a", "an", "the", "this", "that", "these", "those", "some", "any",
      "each", "every", "no", "such", "both", "either", "neither", "its",
      "their", "his", "her", "my", "your", "our",
      // Pronouns.
      "i", "you", "he", "she", "it", "we", "they", "them", "him", "me", "us",
      "who", "whom", "which", "what", "whose",
      // Prepositions.
      "of", "in", "on", "at", "by", "for", "with", "about", "against",
      "between", "into", "through", "during", "before", "after", "above",
      "below", "to", "from", "up", "down", "out", "off", "over", "under",
      "per", "than", "as", "via",
      // Conjunctions.
      "and", "or", "but", "nor", "so", "yet", "if", "because", "while",
      "when", "where", "whereas", "although", "though",
      // Auxiliaries / copulas.
      "is", "are", "was", "were", "be", "been", "being", "am", "do", "does",
      "did", "have", "has", "had", "will", "would", "can", "could", "shall",
      "should", "may", "might", "must",
      // Misc high-frequency.
      "not", "also", "only", "there", "here", "then", "now", "very", "just",
      "more", "most", "less", "least", "other", "another", "same",
  };
  return kSet;
}

const std::unordered_set<std::string>& PhraseBreakerSet() {
  static const auto& kSet = *new std::unordered_set<std::string>{
      "said",    "says",     "reported", "reports",  "rose",    "fell",
      "grew",    "declined", "increased", "decreased", "remained", "compared",
      "reached", "totaled",  "stood",    "came",      "went",    "shows",
      "showed",  "earned",   "gained",   "lost",      "sold",    "counted",
  };
  return kSet;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(util::ToLower(word)) > 0;
}

bool IsPhraseBreaker(std::string_view word) {
  return PhraseBreakerSet().count(util::ToLower(word)) > 0;
}

}  // namespace briq::text
