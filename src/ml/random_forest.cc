#include "ml/random_forest.h"

#include <algorithm>

#include "util/logging.h"

namespace briq::ml {

void RandomForest::Fit(const Dataset& data, const ForestConfig& config) {
  BRIQ_CHECK(!data.empty()) << "cannot fit on empty dataset";
  trees_.clear();
  num_classes_ = data.num_classes();
  num_features_ = data.num_features();

  Dataset working = data.Subset([&] {
    std::vector<size_t> all(data.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }());
  if (config.balance_classes) working.BalanceClassWeights();

  util::Rng rng(config.seed);
  trees_.resize(config.num_trees);
  for (int t = 0; t < config.num_trees; ++t) {
    if (config.bootstrap) {
      std::vector<size_t> sample(working.size());
      for (auto& idx : sample) idx = rng.UniformInt(working.size());
      Dataset boot = working.Subset(sample);
      trees_[t].Fit(boot, config.tree, &rng);
    } else {
      trees_[t].Fit(working, config.tree, &rng);
    }
  }
}

std::vector<double> RandomForest::PredictProba(const double* x) const {
  BRIQ_CHECK(fitted()) << "forest not fitted";
  std::vector<double> acc(num_classes_, 0.0);
  for (const DecisionTree& tree : trees_) {
    std::vector<double> p = tree.PredictProba(x);
    for (size_t c = 0; c < p.size() && c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

int RandomForest::Predict(const double* x) const {
  std::vector<double> p = PredictProba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

double RandomForest::PredictPositiveProba(const std::vector<double>& x) const {
  std::vector<double> p = PredictProba(x.data());
  return p.size() > 1 ? p[1] : 0.0;
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> total(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& dec = tree.impurity_decrease();
    for (int f = 0; f < num_features_; ++f) total[f] += dec[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace briq::ml
