#include "ml/random_forest.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace briq::ml {

void RandomForest::Fit(const Dataset& data, const ForestConfig& config) {
  BRIQ_CHECK(!data.empty()) << "cannot fit on empty dataset";
  trees_.clear();
  num_classes_ = data.num_classes();
  num_features_ = data.num_features();

  Dataset working = data.Subset([&] {
    std::vector<size_t> all(data.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }());
  if (config.balance_classes) working.BalanceClassWeights();

  // Each tree owns an Rng seeded from (config.seed + tree index), so the
  // forest is bit-identical no matter how trees are scheduled across
  // threads. `working` is read-only past this point; tree t writes only
  // trees_[t].
  trees_.resize(config.num_trees);
  util::ParallelFor(
      config.num_threads, 0, trees_.size(), /*grain=*/1,
      [&](size_t lo, size_t hi) {
        for (size_t t = lo; t < hi; ++t) {
          util::Rng rng(config.seed + static_cast<uint64_t>(t));
          if (config.bootstrap) {
            std::vector<size_t> sample(working.size());
            for (auto& idx : sample) idx = rng.UniformInt(working.size());
            Dataset boot = working.Subset(sample);
            trees_[t].Fit(boot, config.tree, &rng);
          } else {
            trees_[t].Fit(working, config.tree, &rng);
          }
        }
      });
}

void RandomForest::PredictProba(const double* x, double* out) const {
  BRIQ_CHECK(fitted()) << "forest not fitted";
  for (int c = 0; c < num_classes_; ++c) out[c] = 0.0;
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& p = tree.LeafProba(x);
    const size_t n = std::min<size_t>(p.size(), num_classes_);
    for (size_t c = 0; c < n; ++c) out[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (int c = 0; c < num_classes_; ++c) out[c] *= inv;
}

std::vector<double> RandomForest::PredictProba(const double* x) const {
  std::vector<double> acc(num_classes_, 0.0);
  PredictProba(x, acc.data());
  return acc;
}

int RandomForest::Predict(const double* x) const {
  BRIQ_CHECK(fitted()) << "forest not fitted";
  constexpr int kStackClasses = 16;
  double stack[kStackClasses];
  if (num_classes_ <= kStackClasses) {
    PredictProba(x, stack);
    return static_cast<int>(std::max_element(stack, stack + num_classes_) -
                            stack);
  }
  std::vector<double> p = PredictProba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

double RandomForest::PredictPositiveProba(const double* x) const {
  BRIQ_CHECK(fitted()) << "forest not fitted";
  if (num_classes_ < 2) return 0.0;
  double acc = 0.0;
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& p = tree.LeafProba(x);
    if (p.size() > 1) acc += p[1];
  }
  return acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> total;
  FeatureImportance(&total);
  return total;
}

void RandomForest::FeatureImportance(std::vector<double>* out) const {
  out->assign(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& dec = tree.impurity_decrease();
    for (int f = 0; f < num_features_; ++f) (*out)[f] += dec[f];
  }
  double sum = 0.0;
  for (double v : *out) sum += v;
  if (sum > 0.0) {
    for (double& v : *out) v /= sum;
  }
}

}  // namespace briq::ml
