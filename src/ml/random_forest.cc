#include "ml/random_forest.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace briq::ml {

void RandomForest::Fit(const Dataset& data, const ForestConfig& config) {
  BRIQ_CHECK(!data.empty()) << "cannot fit on empty dataset";
  Fit(DatasetSampleSource(&data), config);
}

void RandomForest::Fit(const SampleSource& source, const ForestConfig& config) {
  const size_t n = source.size();
  BRIQ_CHECK(n > 0) << "cannot fit on empty sample source";
  trees_.clear();
  num_features_ = source.num_features();

  // One sequential pass collects labels and stored weights; classes and
  // balanced weights then match Dataset::BalanceClassWeights exactly
  // (weight = total / (num_classes * class_count), count-based). Only
  // labels and weights stay resident — O(n) ints and doubles — while the
  // feature rows remain wherever the source keeps them (RAM or the spill
  // file).
  std::vector<int> labels(n);
  std::vector<double> weights(n);
  {
    std::vector<double> row(static_cast<size_t>(num_features_));
    for (size_t i = 0; i < n; ++i) {
      const util::Status status =
          source.Read(i, row.data(), &labels[i], &weights[i]);
      BRIQ_CHECK(status.ok()) << "sample source read failed during label "
                                 "scan: " << status.ToString();
      BRIQ_CHECK(labels[i] >= 0) << "labels must be non-negative";
    }
  }
  int max_label = 0;
  for (int l : labels) max_label = std::max(max_label, l);
  num_classes_ = max_label + 1;
  if (config.balance_classes) {
    std::vector<size_t> counts(static_cast<size_t>(num_classes_), 0);
    for (int l : labels) ++counts[static_cast<size_t>(l)];
    const double total = static_cast<double>(n);
    const double k = static_cast<double>(counts.size());
    for (size_t i = 0; i < n; ++i) {
      const size_t c = counts[static_cast<size_t>(labels[i])];
      weights[i] = c == 0 ? 0.0 : total / (k * static_cast<double>(c));
    }
  }

  // Non-bootstrap trees all train on the same rows; materialize them once
  // and share the dataset read-only across workers.
  Dataset full(0);
  if (!config.bootstrap) {
    full = Dataset(num_features_);
    std::vector<double> row(static_cast<size_t>(num_features_));
    int label = 0;
    double stored = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const util::Status status = source.Read(i, row.data(), &label, &stored);
      BRIQ_CHECK(status.ok()) << "sample source read failed: "
                              << status.ToString();
      full.Add(row, labels[i], weights[i]);
    }
  }

  // Each tree owns an Rng seeded from (config.seed + tree index), so the
  // forest is bit-identical no matter how trees are scheduled across
  // threads. The source is read-only past this point; tree t writes only
  // trees_[t].
  trees_.resize(config.num_trees);
  util::ParallelFor(
      config.num_threads, 0, trees_.size(), /*grain=*/1,
      [&](size_t lo, size_t hi) {
        std::vector<double> row(static_cast<size_t>(num_features_));
        for (size_t t = lo; t < hi; ++t) {
          util::Rng rng(config.seed + static_cast<uint64_t>(t));
          if (config.bootstrap) {
            // Draw all indices first (same Rng consumption order as the
            // historical in-memory path), then materialize just this
            // tree's bootstrap rows.
            std::vector<size_t> sample(n);
            for (auto& idx : sample) idx = rng.UniformInt(n);
            Dataset boot(num_features_);
            for (size_t idx : sample) {
              int label = 0;
              double stored = 0.0;
              const util::Status status =
                  source.Read(idx, row.data(), &label, &stored);
              BRIQ_CHECK(status.ok()) << "sample source read failed: "
                                      << status.ToString();
              boot.Add(row, labels[idx], weights[idx]);
            }
            trees_[t].Fit(boot, config.tree, &rng);
          } else {
            trees_[t].Fit(full, config.tree, &rng);
          }
        }
      });
}

void RandomForest::PredictProba(const double* x, double* out) const {
  BRIQ_CHECK(fitted()) << "forest not fitted";
  for (int c = 0; c < num_classes_; ++c) out[c] = 0.0;
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& p = tree.LeafProba(x);
    const size_t n = std::min<size_t>(p.size(), num_classes_);
    for (size_t c = 0; c < n; ++c) out[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (int c = 0; c < num_classes_; ++c) out[c] *= inv;
}

std::vector<double> RandomForest::PredictProba(const double* x) const {
  std::vector<double> acc(num_classes_, 0.0);
  PredictProba(x, acc.data());
  return acc;
}

int RandomForest::Predict(const double* x) const {
  BRIQ_CHECK(fitted()) << "forest not fitted";
  constexpr int kStackClasses = 16;
  double stack[kStackClasses];
  if (num_classes_ <= kStackClasses) {
    PredictProba(x, stack);
    return static_cast<int>(std::max_element(stack, stack + num_classes_) -
                            stack);
  }
  std::vector<double> p = PredictProba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

double RandomForest::PredictPositiveProba(const double* x) const {
  BRIQ_CHECK(fitted()) << "forest not fitted";
  if (num_classes_ < 2) return 0.0;
  double acc = 0.0;
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& p = tree.LeafProba(x);
    if (p.size() > 1) acc += p[1];
  }
  return acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> total;
  FeatureImportance(&total);
  return total;
}

namespace {
constexpr uint32_t kForestFormatVersion = 1;
}  // namespace

util::Status RandomForest::Save(std::ostream& out) const {
  util::WritePod(out, kForestFormatVersion);
  util::WritePod(out, static_cast<int32_t>(num_classes_));
  util::WritePod(out, static_cast<int32_t>(num_features_));
  util::WritePod(out, static_cast<uint64_t>(trees_.size()));
  for (const DecisionTree& tree : trees_) tree.Save(out);
  if (!out.good()) {
    return util::Status::Internal("forest serialization stream failed");
  }
  return util::Status::OK();
}

util::Status RandomForest::Load(std::istream& in) {
  uint32_t version = 0;
  int32_t num_classes = 0;
  int32_t num_features = 0;
  uint64_t num_trees = 0;
  if (!util::ReadPod(in, &version)) {
    return util::Status::ParseError("forest model truncated in header");
  }
  if (version != kForestFormatVersion) {
    return util::Status::ParseError("unsupported forest model version " +
                                    std::to_string(version));
  }
  if (!util::ReadPod(in, &num_classes) || !util::ReadPod(in, &num_features) ||
      !util::ReadPod(in, &num_trees)) {
    return util::Status::ParseError("forest model truncated in header");
  }
  if (num_classes < 0 || num_features < 0 || num_trees > (uint64_t{1} << 20)) {
    return util::Status::ParseError("forest model header is implausible");
  }
  std::vector<DecisionTree> trees(static_cast<size_t>(num_trees));
  for (uint64_t t = 0; t < num_trees; ++t) {
    BRIQ_RETURN_IF_ERROR(trees[static_cast<size_t>(t)].Load(in));
  }
  trees_ = std::move(trees);
  num_classes_ = num_classes;
  num_features_ = num_features;
  return util::Status::OK();
}

void RandomForest::FeatureImportance(std::vector<double>* out) const {
  out->assign(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& dec = tree.impurity_decrease();
    for (int f = 0; f < num_features_; ++f) (*out)[f] += dec[f];
  }
  double sum = 0.0;
  for (double v : *out) sum += v;
  if (sum > 0.0) {
    for (double& v : *out) v /= sum;
  }
}

}  // namespace briq::ml
