#ifndef BRIQ_ML_RANDOM_FOREST_H_
#define BRIQ_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/sample_sink.h"
#include "util/status.h"

namespace briq::ml {

/// Hyperparameters of the Random Forest.
struct ForestConfig {
  int num_trees = 40;
  TreeConfig tree;
  /// Train each tree on a bootstrap sample of the training set.
  bool bootstrap = true;
  /// Reweight samples so classes carry equal total weight before training
  /// (paper §VII-B).
  bool balance_classes = true;
  uint64_t seed = 42;
  /// Worker threads for Fit; <= 1 trains sequentially, 0 is treated as 1.
  /// Parallel and sequential fits are bit-identical: each tree draws its
  /// bootstrap sample and split randomness from an Rng seeded with
  /// `seed + tree_index`, independent of scheduling.
  int num_threads = 1;

  ForestConfig() { tree.max_features = -1; }  // sqrt(d) per split
};

/// A bagged ensemble of CART trees. Probabilities are the average of the
/// per-tree leaf distributions (the soft analogue of the vote fraction the
/// paper relies on; RF vote fractions are well calibrated [Niculescu-Mizil
/// & Caruana 2005], which matters because stage-2 uses them as priors).
class RandomForest {
 public:
  RandomForest() = default;

  /// Fits from an in-memory dataset. A thin adapter over the SampleSource
  /// overload below — both produce bit-identical forests for the same rows
  /// in the same order.
  void Fit(const Dataset& data, const ForestConfig& config);

  /// Fits from a random-access sample source (in-memory dataset view or a
  /// spilled briq-samples-v1 file). One sequential pass collects labels
  /// and weights (and computes balanced class weights exactly like
  /// Dataset::BalanceClassWeights); then each tree draws its bootstrap
  /// row indices from an Rng seeded `config.seed + tree_index` and reads
  /// just those rows — so only O(bootstrap sample) rows are materialized
  /// per in-flight tree, never the full training set, and the forest is
  /// bit-identical to the in-memory path at any thread count.
  void Fit(const SampleSource& source, const ForestConfig& config);

  /// Averaged class probabilities. Size = num_classes at fit time.
  std::vector<double> PredictProba(const double* x) const;
  std::vector<double> PredictProba(const std::vector<double>& x) const {
    return PredictProba(x.data());
  }

  /// Allocation-free variant: accumulates the averaged probabilities into
  /// out[0 .. num_classes()), which the caller owns.
  void PredictProba(const double* x, double* out) const;

  /// argmax class.
  int Predict(const double* x) const;
  int Predict(const std::vector<double>& x) const { return Predict(x.data()); }

  /// Probability of class 1 (binary convenience). The pointer overload is
  /// allocation-free.
  double PredictPositiveProba(const double* x) const;
  double PredictPositiveProba(const std::vector<double>& x) const {
    return PredictPositiveProba(x.data());
  }

  /// Mean decrease in gini impurity per feature, normalized to sum to 1.
  std::vector<double> FeatureImportance() const;

  /// Buffer-reuse variant: resizes *out to num_features and fills it.
  void FeatureImportance(std::vector<double>* out) const;

  int num_classes() const { return num_classes_; }
  int num_features() const { return num_features_; }
  size_t num_trees() const { return trees_.size(); }
  bool fitted() const { return !trees_.empty(); }

  /// Read-only tree access for re-layout compilers (ml::FlatForest).
  const DecisionTree& tree(size_t t) const { return trees_[t]; }

  /// Serializes the forest (fitted or not) to a stream in the versioned
  /// binary tree format (see decision_tree.h). The caller owns framing and
  /// checksumming (core model files wrap this in "briq-model-v1").
  util::Status Save(std::ostream& out) const;

  /// Restores a forest written by Save(), replacing the current state.
  util::Status Load(std::istream& in);

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
  int num_features_ = 0;
};

}  // namespace briq::ml

#endif  // BRIQ_ML_RANDOM_FOREST_H_
