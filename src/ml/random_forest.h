#ifndef BRIQ_ML_RANDOM_FOREST_H_
#define BRIQ_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace briq::ml {

/// Hyperparameters of the Random Forest.
struct ForestConfig {
  int num_trees = 40;
  TreeConfig tree;
  /// Train each tree on a bootstrap sample of the training set.
  bool bootstrap = true;
  /// Reweight samples so classes carry equal total weight before training
  /// (paper §VII-B).
  bool balance_classes = true;
  uint64_t seed = 42;
  /// Worker threads for Fit; <= 1 trains sequentially, 0 is treated as 1.
  /// Parallel and sequential fits are bit-identical: each tree draws its
  /// bootstrap sample and split randomness from an Rng seeded with
  /// `seed + tree_index`, independent of scheduling.
  int num_threads = 1;

  ForestConfig() { tree.max_features = -1; }  // sqrt(d) per split
};

/// A bagged ensemble of CART trees. Probabilities are the average of the
/// per-tree leaf distributions (the soft analogue of the vote fraction the
/// paper relies on; RF vote fractions are well calibrated [Niculescu-Mizil
/// & Caruana 2005], which matters because stage-2 uses them as priors).
class RandomForest {
 public:
  RandomForest() = default;

  void Fit(const Dataset& data, const ForestConfig& config);

  /// Averaged class probabilities. Size = num_classes at fit time.
  std::vector<double> PredictProba(const double* x) const;
  std::vector<double> PredictProba(const std::vector<double>& x) const {
    return PredictProba(x.data());
  }

  /// Allocation-free variant: accumulates the averaged probabilities into
  /// out[0 .. num_classes()), which the caller owns.
  void PredictProba(const double* x, double* out) const;

  /// argmax class.
  int Predict(const double* x) const;
  int Predict(const std::vector<double>& x) const { return Predict(x.data()); }

  /// Probability of class 1 (binary convenience). The pointer overload is
  /// allocation-free.
  double PredictPositiveProba(const double* x) const;
  double PredictPositiveProba(const std::vector<double>& x) const {
    return PredictPositiveProba(x.data());
  }

  /// Mean decrease in gini impurity per feature, normalized to sum to 1.
  std::vector<double> FeatureImportance() const;

  /// Buffer-reuse variant: resizes *out to num_features and fills it.
  void FeatureImportance(std::vector<double>* out) const;

  int num_classes() const { return num_classes_; }
  size_t num_trees() const { return trees_.size(); }
  bool fitted() const { return !trees_.empty(); }

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
  int num_features_ = 0;
};

}  // namespace briq::ml

#endif  // BRIQ_ML_RANDOM_FOREST_H_
