#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"

namespace briq::ml {

namespace {

// Gini impurity of a weighted class histogram with total weight `total`.
double Gini(const std::vector<double>& class_weight, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double w : class_weight) {
    double p = w / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::Fit(const Dataset& data, const TreeConfig& config,
                       util::Rng* rng) {
  BRIQ_CHECK(!data.empty()) << "cannot fit on empty dataset";
  nodes_.clear();
  depth_ = 0;
  num_classes_ = data.num_classes();
  num_features_ = data.num_features();
  impurity_decrease_.assign(num_features_, 0.0);

  std::vector<size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  Build(&indices, 0, data.size(), 0, data, config, rng);
}

int DecisionTree::Build(std::vector<size_t>* indices, size_t begin, size_t end,
                        int level, const Dataset& data,
                        const TreeConfig& config, util::Rng* rng) {
  depth_ = std::max(depth_, level);
  const size_t n = end - begin;

  // Node class histogram.
  std::vector<double> class_weight(num_classes_, 0.0);
  double total = 0.0;
  for (size_t k = begin; k < end; ++k) {
    size_t i = (*indices)[k];
    class_weight[data.label(i)] += data.weight(i);
    total += data.weight(i);
  }
  const double node_gini = Gini(class_weight, total);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.proba.resize(num_classes_);
    for (int c = 0; c < num_classes_; ++c) {
      leaf.proba[c] = total > 0.0 ? class_weight[c] / total
                                  : 1.0 / num_classes_;
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  };

  if (level >= config.max_depth || n < config.min_samples_split ||
      node_gini <= 1e-12) {
    return make_leaf();
  }

  // Feature subset for this node.
  int mtry = config.max_features;
  if (mtry < 0) {
    mtry = std::max(1, static_cast<int>(std::lround(std::sqrt(
                           static_cast<double>(num_features_)))));
  }
  std::vector<int> features(num_features_);
  std::iota(features.begin(), features.end(), 0);
  if (mtry > 0 && mtry < num_features_) {
    rng->Shuffle(&features);
    features.resize(mtry);
  }

  // Best split search: sort once per candidate feature, sweep thresholds.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini;  // must strictly improve
  std::vector<size_t> local(indices->begin() + begin, indices->begin() + end);

  for (int f : features) {
    std::sort(local.begin(), local.end(), [&](size_t a, size_t b) {
      return data.feature(a, f) < data.feature(b, f);
    });
    std::vector<double> left_weight(num_classes_, 0.0);
    double left_total = 0.0;
    size_t left_count = 0;
    for (size_t k = 0; k + 1 < n; ++k) {
      size_t i = local[k];
      left_weight[data.label(i)] += data.weight(i);
      left_total += data.weight(i);
      ++left_count;
      double v = data.feature(i, f);
      double v_next = data.feature(local[k + 1], f);
      if (v_next <= v) continue;  // no threshold between equal values
      if (left_count < config.min_samples_leaf ||
          n - left_count < config.min_samples_leaf) {
        continue;
      }
      // Weighted impurity of the split.
      std::vector<double> right_weight(num_classes_);
      for (int c = 0; c < num_classes_; ++c) {
        right_weight[c] = class_weight[c] - left_weight[c];
      }
      double right_total = total - left_total;
      double impurity =
          (left_total * Gini(left_weight, left_total) +
           right_total * Gini(right_weight, right_total)) /
          total;
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = f;
        // Split at v itself ("x <= v goes left"): exact, unlike a midpoint,
        // which can round to v_next for adjacent doubles and degenerate the
        // partition.
        best_threshold = v;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  impurity_decrease_[best_feature] += total * (node_gini - best_impurity);

  // Partition [begin, end) in place.
  auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](size_t i) {
        return data.feature(i, best_feature) <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - indices->begin());
  BRIQ_CHECK(mid > begin && mid < end) << "degenerate partition";

  // Reserve this node's slot before building children.
  nodes_.emplace_back();
  int self = static_cast<int>(nodes_.size() - 1);
  int left = Build(indices, begin, mid, level + 1, data, config, rng);
  int right = Build(indices, mid, end, level + 1, data, config, rng);
  nodes_[self].feature = best_feature;
  nodes_[self].threshold = best_threshold;
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

const std::vector<double>& DecisionTree::LeafProba(const double* x) const {
  BRIQ_CHECK(!nodes_.empty()) << "tree not fitted";
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& nd = nodes_[node];
    node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[node].proba;
}

std::vector<double> DecisionTree::PredictProba(const double* x) const {
  return LeafProba(x);
}

int DecisionTree::Predict(const double* x) const {
  const std::vector<double>& p = LeafProba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

void DecisionTree::Save(std::ostream& out) const {
  util::WritePod(out, static_cast<int32_t>(num_classes_));
  util::WritePod(out, static_cast<int32_t>(num_features_));
  util::WritePod(out, static_cast<int32_t>(depth_));
  util::WritePod(out, static_cast<uint64_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    util::WritePod(out, static_cast<int32_t>(node.feature));
    util::WritePod(out, node.threshold);
    util::WritePod(out, static_cast<int32_t>(node.left));
    util::WritePod(out, static_cast<int32_t>(node.right));
    util::WritePod(out, static_cast<uint64_t>(node.proba.size()));
    for (double p : node.proba) util::WritePod(out, p);
  }
  util::WritePod(out, static_cast<uint64_t>(impurity_decrease_.size()));
  for (double d : impurity_decrease_) util::WritePod(out, d);
}

util::Status DecisionTree::Load(std::istream& in) {
  // Structural caps reject nonsense counts from a corrupt stream before
  // any allocation is attempted.
  constexpr uint64_t kMaxNodes = uint64_t{1} << 30;
  constexpr uint64_t kMaxVector = uint64_t{1} << 24;

  int32_t num_classes = 0;
  int32_t num_features = 0;
  int32_t depth = 0;
  uint64_t num_nodes = 0;
  if (!util::ReadPod(in, &num_classes) || !util::ReadPod(in, &num_features) ||
      !util::ReadPod(in, &depth) || !util::ReadPod(in, &num_nodes)) {
    return util::Status::ParseError("tree model truncated in header");
  }
  if (num_classes < 0 || num_features < 0 || depth < 0 ||
      num_nodes > kMaxNodes) {
    return util::Status::ParseError("tree model header is implausible");
  }
  std::vector<Node> nodes(static_cast<size_t>(num_nodes));
  for (uint64_t i = 0; i < num_nodes; ++i) {
    Node& node = nodes[static_cast<size_t>(i)];
    int32_t feature = 0;
    int32_t left = 0;
    int32_t right = 0;
    uint64_t proba_size = 0;
    if (!util::ReadPod(in, &feature) || !util::ReadPod(in, &node.threshold) ||
        !util::ReadPod(in, &left) || !util::ReadPod(in, &right) ||
        !util::ReadPod(in, &proba_size)) {
      return util::Status::ParseError("tree model truncated in node " +
                                      std::to_string(i));
    }
    if (proba_size > kMaxVector) {
      return util::Status::ParseError("tree model node " + std::to_string(i) +
                                      " has implausible class count");
    }
    node.feature = feature;
    node.left = left;
    node.right = right;
    node.proba.resize(static_cast<size_t>(proba_size));
    for (double& p : node.proba) {
      if (!util::ReadPod(in, &p)) {
        return util::Status::ParseError("tree model truncated in node " +
                                        std::to_string(i) + " probabilities");
      }
    }
    const auto in_range = [&](int idx) {
      return idx >= 0 && static_cast<uint64_t>(idx) < num_nodes;
    };
    if (node.feature >= 0) {
      if (node.feature >= num_features || !in_range(node.left) ||
          !in_range(node.right)) {
        return util::Status::ParseError(
            "tree model node " + std::to_string(i) +
            " references an out-of-range feature or child");
      }
    }
  }
  uint64_t imp_size = 0;
  if (!util::ReadPod(in, &imp_size) || imp_size > kMaxVector) {
    return util::Status::ParseError("tree model truncated before importance");
  }
  std::vector<double> impurity(static_cast<size_t>(imp_size));
  for (double& d : impurity) {
    if (!util::ReadPod(in, &d)) {
      return util::Status::ParseError("tree model truncated in importance");
    }
  }
  nodes_ = std::move(nodes);
  num_classes_ = num_classes;
  num_features_ = num_features;
  depth_ = depth;
  impurity_decrease_ = std::move(impurity);
  return util::Status::OK();
}

}  // namespace briq::ml
