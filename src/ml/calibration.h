#ifndef BRIQ_ML_CALIBRATION_H_
#define BRIQ_ML_CALIBRATION_H_

#include <string>
#include <vector>

namespace briq::ml {

/// Probability-calibration diagnostics. The BriQ design leans on Random
/// Forest vote fractions being well calibrated ([Caruana & Niculescu-Mizil
/// 2006], paper §IV-A) because stage-4 feeds them into OverallScore as
/// priors; these tools measure whether that assumption holds on held-out
/// pairs.

/// One reliability-diagram bin: predictions in (lo, hi], their mean
/// predicted probability, and the empirical positive rate.
struct CalibrationBin {
  double lo = 0.0;
  double hi = 0.0;
  size_t count = 0;
  double mean_predicted = 0.0;
  double fraction_positive = 0.0;
};

/// Bins (score, label) pairs into `num_bins` equal-width probability bins.
/// Scores must lie in [0, 1]; labels are 0/1.
std::vector<CalibrationBin> ReliabilityDiagram(
    const std::vector<double>& scores, const std::vector<int>& labels,
    int num_bins = 10);

/// Expected Calibration Error: the count-weighted mean |confidence -
/// accuracy| over the bins. 0 = perfectly calibrated.
double ExpectedCalibrationError(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                int num_bins = 10);

/// Brier score: mean squared error of the probabilities. Lower is better;
/// 0.25 is the score of a constant 0.5 prediction on balanced data.
double BrierScore(const std::vector<double>& scores,
                  const std::vector<int>& labels);

/// ASCII rendering of a reliability diagram for bench output.
std::string RenderReliabilityDiagram(const std::vector<CalibrationBin>& bins);

}  // namespace briq::ml

#endif  // BRIQ_ML_CALIBRATION_H_
