#ifndef BRIQ_ML_DECISION_TREE_H_
#define BRIQ_ML_DECISION_TREE_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"
#include "util/status.h"

namespace briq::ml {

/// Hyperparameters of a CART tree.
struct TreeConfig {
  int max_depth = 16;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  /// Number of features considered per split; 0 means all, -1 means
  /// round(sqrt(num_features)) (the Random-Forest default).
  int max_features = 0;
};

/// A CART decision tree for (weighted) multiclass classification using the
/// gini impurity criterion. Numeric features only; categorical inputs are
/// ordinal-encoded by the caller (trees split them by threshold, which is
/// lossless for small cardinalities given enough depth).
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits the tree on `data`. `rng` drives the per-node feature
  /// subsampling (only consulted when config.max_features != 0).
  void Fit(const Dataset& data, const TreeConfig& config, util::Rng* rng);

  /// Class-probability estimates for a feature row (weighted class
  /// distribution of the reached leaf). Size = num_classes seen in Fit.
  std::vector<double> PredictProba(const double* x) const;

  /// The reached leaf's class distribution by reference — the
  /// allocation-free variant of PredictProba for hot scoring loops.
  const std::vector<double>& LeafProba(const double* x) const;

  /// argmax of PredictProba.
  int Predict(const double* x) const;

  int num_classes() const { return num_classes_; }
  size_t num_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }

  /// Read-only structural view of node `i`, for compilers that re-lay the
  /// tree out in another memory format (ml::FlatForest). Leaves have
  /// feature < 0 and carry the class distribution; internal nodes carry
  /// child indices into this tree's node array. Node 0 is the root.
  struct NodeView {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    const std::vector<double>* proba = nullptr;
  };
  NodeView node_view(size_t i) const {
    const Node& n = nodes_[i];
    return NodeView{n.feature, n.threshold, n.left, n.right, &n.proba};
  }

  /// Total gini-impurity decrease attributed to each feature (for feature
  /// importance in the forest).
  const std::vector<double>& impurity_decrease() const {
    return impurity_decrease_;
  }

  /// Serializes the fitted tree to a stream (raw host-order binary; the
  /// enclosing model file handles versioning and checksums). Doubles are
  /// written bit-exact, so a loaded tree predicts identically.
  void Save(std::ostream& out) const;

  /// Restores a tree written by Save(), validating structural invariants
  /// (child indices in range, probability vectors sized to num_classes).
  util::Status Load(std::istream& in);

 private:
  struct Node {
    int feature = -1;          // -1 for leaves
    double threshold = 0.0;    // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    std::vector<double> proba;  // leaves: normalized class distribution
  };

  int Build(std::vector<size_t>* indices, size_t begin, size_t end, int level,
            const Dataset& data, const TreeConfig& config, util::Rng* rng);

  std::vector<Node> nodes_;
  int num_classes_ = 0;
  int num_features_ = 0;
  int depth_ = 0;
  std::vector<double> impurity_decrease_;
};

}  // namespace briq::ml

#endif  // BRIQ_ML_DECISION_TREE_H_
