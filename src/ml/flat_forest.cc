#include "ml/flat_forest.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace briq::ml {

void FlatForest::Clear() {
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  tree_roots_.clear();
  leaf_proba_.clear();
  num_classes_ = 0;
  num_features_ = 0;
}

void FlatForest::Compile(const RandomForest& forest) {
  Clear();
  if (!forest.fitted()) return;
  num_classes_ = forest.num_classes();
  num_features_ = forest.num_features();
  const size_t nc = static_cast<size_t>(num_classes_);

  // Deduplicates identical leaf distributions across the whole forest:
  // shallow trees repeat pure leaves like (1, 0) thousands of times, and
  // one shared row per distinct distribution keeps the table in cache.
  std::map<std::vector<double>, int32_t> leaf_ids;
  std::vector<size_t> order;       // old node ids in breadth-first order
  std::vector<int32_t> new_index;  // old node id -> flat array offset

  for (size_t t = 0; t < forest.num_trees(); ++t) {
    const DecisionTree& tree = forest.tree(t);
    BRIQ_CHECK(tree.num_nodes() > 0) << "fitted tree has no nodes";
    const size_t offset = feature_.size();
    tree_roots_.push_back(static_cast<int32_t>(offset));

    // Pass 1: breadth-first order starting at the root (node 0), so level
    // k of the tree occupies a contiguous run of the flat arrays.
    order.clear();
    order.reserve(tree.num_nodes());
    new_index.assign(tree.num_nodes(), -1);
    order.push_back(0);
    new_index[0] = static_cast<int32_t>(offset);
    for (size_t head = 0; head < order.size(); ++head) {
      const DecisionTree::NodeView view = tree.node_view(order[head]);
      if (view.feature < 0) continue;
      new_index[static_cast<size_t>(view.left)] =
          static_cast<int32_t>(offset + order.size());
      order.push_back(static_cast<size_t>(view.left));
      new_index[static_cast<size_t>(view.right)] =
          static_cast<int32_t>(offset + order.size());
      order.push_back(static_cast<size_t>(view.right));
    }

    // Pass 2: emit nodes in the new order, remapping child offsets.
    for (size_t old : order) {
      const DecisionTree::NodeView view = tree.node_view(old);
      if (view.feature >= 0) {
        feature_.push_back(view.feature);
        threshold_.push_back(view.threshold);
        left_.push_back(new_index[static_cast<size_t>(view.left)]);
        right_.push_back(new_index[static_cast<size_t>(view.right)]);
        continue;
      }
      // Leaf: intern the zero-padded distribution. Padding appends 0.0
      // entries, which accumulate as exact no-ops, preserving bit parity
      // with the pointer path's min(p.size(), num_classes) loop.
      std::vector<double> padded(nc, 0.0);
      const size_t n = std::min(view.proba->size(), nc);
      std::copy(view.proba->begin(), view.proba->begin() + n, padded.begin());
      auto it = leaf_ids.find(padded);
      if (it == leaf_ids.end()) {
        it = leaf_ids.emplace(std::move(padded),
                              static_cast<int32_t>(leaf_ids.size()))
                 .first;
        leaf_proba_.insert(leaf_proba_.end(), it->first.begin(),
                           it->first.end());
      }
      feature_.push_back(-1);
      threshold_.push_back(0.0);
      left_.push_back(it->second);
      right_.push_back(-1);
    }
  }
}

namespace {

/// Descends one row from `node` to its leaf, returning the leaf's flat
/// offset. The arrays are passed as raw pointers so the compiler keeps
/// them in registers across the loop.
inline int32_t Descend(const double* x, int32_t node, const int32_t* feature,
                       const double* threshold, const int32_t* left,
                       const int32_t* right) {
  int32_t f = feature[node];
  while (f >= 0) {
    node = x[f] <= threshold[node] ? left[node] : right[node];
    f = feature[node];
  }
  return node;
}

}  // namespace

void FlatForest::PredictProba(const double* x, double* out) const {
  PredictProbaBatch(x, 1, static_cast<size_t>(num_features_), out);
}

double FlatForest::PredictPositiveProba(const double* x) const {
  double out = 0.0;
  PredictPositiveProbaBatch(x, 1, static_cast<size_t>(num_features_), &out);
  return out;
}

void FlatForest::PredictProbaBatch(const double* rows, size_t num_rows,
                                   size_t stride, double* out) const {
  BRIQ_CHECK(compiled()) << "flat forest not compiled";
  const size_t nc = static_cast<size_t>(num_classes_);
  std::fill(out, out + num_rows * nc, 0.0);
  const int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  const double* leaves = leaf_proba_.data();
  const size_t num_trees = tree_roots_.size();

  for (size_t base = 0; base < num_rows; base += kTileRows) {
    const size_t tile = std::min(kTileRows, num_rows - base);
    // Tree-major over the tile: per row, trees still accumulate in tree
    // order (identical fp sum order to the pointer path); across rows,
    // each tree's top levels are touched tile-many times back to back.
    for (size_t t = 0; t < num_trees; ++t) {
      const int32_t root = tree_roots_[t];
      for (size_t r = 0; r < tile; ++r) {
        const int32_t leaf = Descend(rows + (base + r) * stride, root,
                                     feature, threshold, left, right);
        const double* p = leaves + static_cast<size_t>(left[leaf]) * nc;
        double* o = out + (base + r) * nc;
        for (size_t c = 0; c < nc; ++c) o[c] += p[c];
      }
    }
  }
  // Same final op as RandomForest::PredictProba: multiply by 1/T.
  const double inv = 1.0 / static_cast<double>(num_trees);
  for (size_t i = 0; i < num_rows * nc; ++i) out[i] *= inv;
}

void FlatForest::PredictPositiveProbaBatch(const double* rows, size_t num_rows,
                                           size_t stride, double* out) const {
  BRIQ_CHECK(compiled()) << "flat forest not compiled";
  if (num_classes_ < 2) {
    std::fill(out, out + num_rows, 0.0);
    return;
  }
  std::fill(out, out + num_rows, 0.0);
  const int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  const double* leaves = leaf_proba_.data();
  const size_t nc = static_cast<size_t>(num_classes_);
  const size_t num_trees = tree_roots_.size();

  for (size_t base = 0; base < num_rows; base += kTileRows) {
    const size_t tile = std::min(kTileRows, num_rows - base);
    for (size_t t = 0; t < num_trees; ++t) {
      const int32_t root = tree_roots_[t];
      for (size_t r = 0; r < tile; ++r) {
        const int32_t leaf = Descend(rows + (base + r) * stride, root,
                                     feature, threshold, left, right);
        out[base + r] += leaves[static_cast<size_t>(left[leaf]) * nc + 1];
      }
    }
  }
  // Same final op as RandomForest::PredictPositiveProba: divide by T.
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] /= static_cast<double>(num_trees);
  }
}

}  // namespace briq::ml
