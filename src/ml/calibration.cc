#include "ml/calibration.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace briq::ml {

std::vector<CalibrationBin> ReliabilityDiagram(
    const std::vector<double>& scores, const std::vector<int>& labels,
    int num_bins) {
  BRIQ_CHECK(scores.size() == labels.size()) << "size mismatch";
  BRIQ_CHECK(num_bins > 0) << "need at least one bin";

  std::vector<CalibrationBin> bins(num_bins);
  std::vector<double> sum_pred(num_bins, 0.0);
  std::vector<size_t> positives(num_bins, 0);
  for (int b = 0; b < num_bins; ++b) {
    bins[b].lo = static_cast<double>(b) / num_bins;
    bins[b].hi = static_cast<double>(b + 1) / num_bins;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    double s = std::clamp(scores[i], 0.0, 1.0);
    int b = std::min(num_bins - 1, static_cast<int>(s * num_bins));
    ++bins[b].count;
    sum_pred[b] += s;
    if (labels[i] == 1) ++positives[b];
  }
  for (int b = 0; b < num_bins; ++b) {
    if (bins[b].count == 0) continue;
    bins[b].mean_predicted = sum_pred[b] / bins[b].count;
    bins[b].fraction_positive =
        static_cast<double>(positives[b]) / bins[b].count;
  }
  return bins;
}

double ExpectedCalibrationError(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                int num_bins) {
  auto bins = ReliabilityDiagram(scores, labels, num_bins);
  double total = 0.0;
  size_t n = 0;
  for (const CalibrationBin& b : bins) {
    if (b.count == 0) continue;
    total += b.count * std::fabs(b.mean_predicted - b.fraction_positive);
    n += b.count;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double BrierScore(const std::vector<double>& scores,
                  const std::vector<int>& labels) {
  BRIQ_CHECK(scores.size() == labels.size()) << "size mismatch";
  if (scores.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    double diff = scores[i] - static_cast<double>(labels[i]);
    total += diff * diff;
  }
  return total / static_cast<double>(scores.size());
}

std::string RenderReliabilityDiagram(
    const std::vector<CalibrationBin>& bins) {
  std::string out;
  out += "bin        n     mean_pred  frac_pos\n";
  for (const CalibrationBin& b : bins) {
    std::string range = "[" + util::FormatDouble(b.lo, 1) + "," +
                        util::FormatDouble(b.hi, 1) + "]";
    range.resize(10, ' ');
    std::string n = std::to_string(b.count);
    n.resize(6, ' ');
    if (b.count == 0) {
      out += range + " " + n + "-          -\n";
      continue;
    }
    std::string mp = util::FormatDouble(b.mean_predicted, 3);
    mp.resize(10, ' ');
    out += range + " " + n + mp + " " +
           util::FormatDouble(b.fraction_positive, 3);
    // A crude bar of the empirical rate.
    out += "  |" +
           std::string(static_cast<size_t>(b.fraction_positive * 20), '#') +
           "\n";
  }
  return out;
}

}  // namespace briq::ml
