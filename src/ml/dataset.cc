#include "ml/dataset.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace briq::ml {

void Dataset::Add(const std::vector<double>& x, int label, double weight) {
  BRIQ_CHECK(static_cast<int>(x.size()) == num_features_)
      << "expected " << num_features_ << " features, got " << x.size();
  BRIQ_CHECK(label >= 0) << "labels must be non-negative";
  x_.insert(x_.end(), x.begin(), x.end());
  labels_.push_back(label);
  weights_.push_back(weight);
}

int Dataset::num_classes() const {
  int m = 0;
  for (int l : labels_) m = std::max(m, l + 1);
  return m;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes(), 0);
  for (int l : labels_) ++counts[l];
  return counts;
}

void Dataset::BalanceClassWeights() {
  std::vector<size_t> counts = ClassCounts();
  const double total = static_cast<double>(size());
  const double k = static_cast<double>(counts.size());
  for (size_t i = 0; i < size(); ++i) {
    size_t c = counts[labels_[i]];
    weights_[i] = c == 0 ? 0.0 : total / (k * static_cast<double>(c));
  }
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out(num_features_);
  for (size_t idx : indices) {
    BRIQ_CHECK(idx < size()) << "subset index out of range";
    std::vector<double> row_copy(row(idx), row(idx) + num_features_);
    out.Add(row_copy, labels_[idx], weights_[idx]);
  }
  return out;
}

std::vector<Dataset> Dataset::RandomSplit(const std::vector<double>& fractions,
                                          util::Rng* rng) const {
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  std::vector<Dataset> parts;
  size_t start = 0;
  for (size_t p = 0; p < fractions.size(); ++p) {
    size_t count =
        p + 1 == fractions.size()
            ? size() - start
            : std::min(size() - start,
                       static_cast<size_t>(fractions[p] * size() + 0.5));
    std::vector<size_t> idx(order.begin() + start,
                            order.begin() + start + count);
    parts.push_back(Subset(idx));
    start += count;
  }
  return parts;
}

}  // namespace briq::ml
