#ifndef BRIQ_ML_METRICS_H_
#define BRIQ_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace briq::ml {

/// Counts underlying binary precision/recall. Aggregate by += over
/// documents or types.
struct BinaryCounts {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  size_t true_negatives = 0;

  BinaryCounts& operator+=(const BinaryCounts& other);

  /// tp / (tp + fp); 0 when undefined.
  double Precision() const;
  /// tp / (tp + fn); 0 when undefined.
  double Recall() const;
  /// Harmonic mean of precision and recall; 0 when undefined.
  double F1() const;
};

/// Precision/recall/F1 for a fixed positive class over label vectors.
BinaryCounts CountBinary(const std::vector<int>& predicted,
                         const std::vector<int>& gold, int positive_class = 1);

/// Area under the ROC curve for binary labels (1 = positive) given scores.
/// Ties are handled by the rank-sum (Mann-Whitney) formulation. Returns 0.5
/// when either class is absent.
double RocAuc(const std::vector<double>& scores, const std::vector<int>& labels);

/// Shannon entropy (nats) of a discrete distribution; `probs` is normalized
/// internally. Zero entries contribute 0; returns 0 for empty input.
double Entropy(const std::vector<double>& probs);

/// Entropy normalized by log(n) into [0, 1]; 0 for n <= 1. The adaptive
/// filter and the resolution ordering both use this scale-free form.
double NormalizedEntropy(const std::vector<double>& probs);

/// Multiclass confusion matrix: counts[gold][pred].
std::vector<std::vector<size_t>> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& gold,
    int num_classes);

/// Per-class one-vs-rest counts extracted from predictions.
BinaryCounts CountForClass(const std::vector<int>& predicted,
                           const std::vector<int>& gold, int cls);

}  // namespace briq::ml

#endif  // BRIQ_ML_METRICS_H_
