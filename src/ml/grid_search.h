#ifndef BRIQ_ML_GRID_SEARCH_H_
#define BRIQ_ML_GRID_SEARCH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace briq::ml {

/// A single hyperparameter assignment, by name.
using ParamMap = std::map<std::string, double>;

/// Axes of the grid: parameter name -> candidate values.
using ParamGrid = std::map<std::string, std::vector<double>>;

/// Expands a grid into the full cross product of assignments, in
/// deterministic (lexicographic by parameter name) order.
std::vector<ParamMap> ExpandGrid(const ParamGrid& grid);

/// Result of a grid search.
struct GridSearchResult {
  ParamMap best_params;
  double best_score = 0.0;
  size_t evaluated = 0;
};

/// Evaluates `score_fn` (higher is better) on every grid point and returns
/// the argmax. Used for all hyperparameter tuning on the withheld
/// validation split (paper §VII-C).
GridSearchResult GridSearch(const ParamGrid& grid,
                            const std::function<double(const ParamMap&)>& score_fn);

}  // namespace briq::ml

#endif  // BRIQ_ML_GRID_SEARCH_H_
