#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace briq::ml {

BinaryCounts& BinaryCounts::operator+=(const BinaryCounts& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  true_negatives += other.true_negatives;
  return *this;
}

double BinaryCounts::Precision() const {
  size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double BinaryCounts::Recall() const {
  size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double BinaryCounts::F1() const {
  double p = Precision();
  double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

BinaryCounts CountBinary(const std::vector<int>& predicted,
                         const std::vector<int>& gold, int positive_class) {
  BRIQ_CHECK(predicted.size() == gold.size()) << "size mismatch";
  BinaryCounts c;
  for (size_t i = 0; i < predicted.size(); ++i) {
    bool p = predicted[i] == positive_class;
    bool g = gold[i] == positive_class;
    if (p && g) ++c.true_positives;
    else if (p && !g) ++c.false_positives;
    else if (!p && g) ++c.false_negatives;
    else ++c.true_negatives;
  }
  return c;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  BRIQ_CHECK(scores.size() == labels.size()) << "size mismatch";
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average ranks over ties, then Mann-Whitney U.
  std::vector<double> rank(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }

  double pos_rank_sum = 0.0;
  size_t num_pos = 0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += rank[k];
      ++num_pos;
    }
  }
  size_t num_neg = labels.size() - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  double u = pos_rank_sum - static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * num_neg);
}

double Entropy(const std::vector<double>& probs) {
  double total = 0.0;
  for (double p : probs) {
    if (p > 0.0) total += p;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : probs) {
    if (p <= 0.0) continue;
    double q = p / total;
    h -= q * std::log(q);
  }
  return h;
}

double NormalizedEntropy(const std::vector<double>& probs) {
  size_t nonzero = 0;
  for (double p : probs) {
    if (p > 0.0) ++nonzero;
  }
  if (probs.size() <= 1) return 0.0;
  if (nonzero <= 1) return 0.0;
  return Entropy(probs) / std::log(static_cast<double>(probs.size()));
}

std::vector<std::vector<size_t>> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& gold,
    int num_classes) {
  BRIQ_CHECK(predicted.size() == gold.size()) << "size mismatch";
  std::vector<std::vector<size_t>> m(
      num_classes, std::vector<size_t>(num_classes, 0));
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (gold[i] >= 0 && gold[i] < num_classes && predicted[i] >= 0 &&
        predicted[i] < num_classes) {
      ++m[gold[i]][predicted[i]];
    }
  }
  return m;
}

BinaryCounts CountForClass(const std::vector<int>& predicted,
                           const std::vector<int>& gold, int cls) {
  BinaryCounts c;
  for (size_t i = 0; i < predicted.size(); ++i) {
    bool p = predicted[i] == cls;
    bool g = gold[i] == cls;
    if (p && g) ++c.true_positives;
    else if (p && !g) ++c.false_positives;
    else if (!p && g) ++c.false_negatives;
    else ++c.true_negatives;
  }
  return c;
}

}  // namespace briq::ml
