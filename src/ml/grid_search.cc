#include "ml/grid_search.h"

#include "util/logging.h"

namespace briq::ml {

std::vector<ParamMap> ExpandGrid(const ParamGrid& grid) {
  std::vector<ParamMap> points = {{}};
  for (const auto& [name, values] : grid) {
    BRIQ_CHECK(!values.empty()) << "empty grid axis: " << name;
    std::vector<ParamMap> next;
    next.reserve(points.size() * values.size());
    for (const ParamMap& p : points) {
      for (double v : values) {
        ParamMap q = p;
        q[name] = v;
        next.push_back(std::move(q));
      }
    }
    points = std::move(next);
  }
  return points;
}

GridSearchResult GridSearch(
    const ParamGrid& grid,
    const std::function<double(const ParamMap&)>& score_fn) {
  GridSearchResult result;
  bool first = true;
  for (const ParamMap& p : ExpandGrid(grid)) {
    double score = score_fn(p);
    ++result.evaluated;
    if (first || score > result.best_score) {
      result.best_score = score;
      result.best_params = p;
      first = false;
    }
  }
  return result;
}

}  // namespace briq::ml
