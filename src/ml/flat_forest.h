#ifndef BRIQ_ML_FLAT_FOREST_H_
#define BRIQ_ML_FLAT_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/random_forest.h"

namespace briq::ml {

/// A compiled, struct-of-arrays inference layout of a fitted RandomForest
/// (DESIGN.md §5g). RandomForest stays the fit/serialize representation;
/// FlatForest is rebuilt from it at train-finish / model-load time and
/// exists purely to make the scoring hot path cheap:
///
///   - All trees live in four contiguous arrays (int32 feature index,
///     double threshold, int32 left/right child offsets), laid out
///     breadth-first per tree, trees back to back. Walking a tree touches
///     a handful of cache lines near the front of each tree's block
///     instead of chasing ~64-byte heap nodes with out-of-line probability
///     vectors.
///   - Leaf class distributions are deduplicated rows of one dense table
///     (`leaf id -> num_classes doubles`); a leaf stores its id in the
///     left-child slot. Distributions shorter than num_classes (trees
///     whose bootstrap missed a class) are zero-padded, which adds exactly
///     0.0 to the accumulator and so cannot change any sum.
///   - PredictProbaBatch evaluates a whole batch of rows tree-major over
///     row tiles: each tree's top levels stay hot in cache while the tile
///     streams through it, there are no virtual calls, and the caller owns
///     every buffer (no per-row allocation).
///
/// Determinism contract: for any row, every entry point accumulates the
/// per-tree leaf distributions in tree order and applies the same final
/// scaling operation as the RandomForest it was compiled from, so results
/// are bit-identical doubles to RandomForest::PredictProba /
/// PredictPositiveProba (enforced by tests/flat_forest_test.cc). Compiled
/// forests are immutable and safe to share read-only across threads.
class FlatForest {
 public:
  FlatForest() = default;

  /// Rebuilds this layout from a fitted forest. Compiling from an unfitted
  /// forest clears the layout (compiled() turns false).
  void Compile(const RandomForest& forest);

  void Clear();

  bool compiled() const { return !tree_roots_.empty(); }
  int num_classes() const { return num_classes_; }
  int num_features() const { return num_features_; }
  size_t num_trees() const { return tree_roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  size_t num_leaf_rows() const {
    return num_classes_ == 0
               ? 0
               : leaf_proba_.size() / static_cast<size_t>(num_classes_);
  }

  /// Rows evaluated per tile of the batch entry points. Small enough that
  /// a tile's state (row pointers + accumulators) stays in L1, large
  /// enough to amortize each tree's cache warm-up across many rows.
  static constexpr size_t kTileRows = 16;

  /// Averaged class probabilities of one row into out[0 .. num_classes).
  /// Bit-identical to RandomForest::PredictProba(x, out).
  void PredictProba(const double* x, double* out) const;

  /// P(class 1) of one row; bit-identical to
  /// RandomForest::PredictPositiveProba.
  double PredictPositiveProba(const double* x) const;

  /// Batch variant: rows[i * stride .. i * stride + num_features) is row i;
  /// out[i * num_classes ..) receives its averaged class distribution.
  /// `stride` is in doubles and must be >= num_features.
  void PredictProbaBatch(const double* rows, size_t num_rows, size_t stride,
                         double* out) const;

  /// Batch P(class 1): out[i] receives row i's positive probability.
  void PredictPositiveProbaBatch(const double* rows, size_t num_rows,
                                 size_t stride, double* out) const;

 private:
  // Struct-of-arrays node storage spanning all trees. feature_[n] < 0
  // marks a leaf, whose left_[n] is its row index into leaf_proba_;
  // internal nodes hold absolute child offsets into these same arrays.
  std::vector<int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  /// Root node offset of each tree (breadth-first layout => the root is
  /// also the first node of the tree's block).
  std::vector<int32_t> tree_roots_;
  /// Dense leaf-distribution table, num_leaf_rows x num_classes,
  /// zero-padded per row and deduplicated across identical leaves.
  std::vector<double> leaf_proba_;
  int num_classes_ = 0;
  int num_features_ = 0;
};

}  // namespace briq::ml

#endif  // BRIQ_ML_FLAT_FOREST_H_
