#ifndef BRIQ_ML_SAMPLE_SINK_H_
#define BRIQ_ML_SAMPLE_SINK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"
#include "util/result.h"
#include "util/sample_file.h"
#include "util/status.h"

namespace briq::ml {

/// Streaming destination for labeled training rows. Training-sample
/// producers (core/streaming_trainer.cc) push rows one at a time; whether
/// those rows accumulate in RAM, stream to a spill file, or pass through a
/// seeded reservoir is the sink's business. Implementations are not
/// thread-safe: the streaming trainer serializes Add calls through its
/// in-order emitter, which is also what makes the row order — and thus
/// everything trained from it — deterministic.
class SampleSink {
 public:
  virtual ~SampleSink() = default;

  /// Appends one row; `x` must have num_features() entries.
  virtual util::Status Add(const double* x, int label, double weight) = 0;
  util::Status Add(const std::vector<double>& x, int label,
                   double weight = 1.0) {
    return Add(x.data(), label, weight);
  }

  virtual int num_features() const = 0;

  /// Rows accepted so far (before any reservoir subsampling).
  virtual size_t samples_seen() const = 0;

  /// Seals the sink; Add must not be called afterwards. Idempotent.
  virtual util::Status Finish() = 0;
};

/// Random-access source of labeled training rows — what RandomForest::Fit
/// consumes for its seeded bootstrap draws. Read() must be thread-safe:
/// parallel tree fits read rows concurrently.
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  virtual int num_features() const = 0;
  virtual size_t size() const = 0;

  /// Copies row `i` into x[0 .. num_features()).
  virtual util::Status Read(size_t i, double* x, int* label,
                            double* weight) const = 0;
};

/// In-memory sink: rows land in an ml::Dataset, the pre-refactor behavior.
class InMemorySampleSink final : public SampleSink {
 public:
  explicit InMemorySampleSink(int num_features)
      : data_(num_features), scratch_(static_cast<size_t>(num_features)) {}

  util::Status Add(const double* x, int label, double weight) override;
  int num_features() const override { return data_.num_features(); }
  size_t samples_seen() const override { return data_.size(); }
  util::Status Finish() override { return util::Status::OK(); }

  const Dataset& dataset() const { return data_; }

 private:
  Dataset data_;
  std::vector<double> scratch_;
};

/// Spill-sink tuning knobs.
struct SpillSinkOptions {
  /// Sample file to write (briq-samples-v1; see util/sample_file.h).
  std::string path;
  /// Reservoir cap: keep at most this many rows, uniformly subsampled via
  /// Algorithm R. 0 streams every row straight to disk (bounded memory:
  /// one row). A capped sink instead holds `max_samples` rows in memory
  /// and writes them at Finish().
  size_t max_samples = 0;
  /// Seeds the reservoir's Rng. Irrelevant when max_samples == 0. The same
  /// seed and row order reproduce the same subsample bit-for-bit.
  uint64_t seed = 0;
};

/// Spill-to-disk sink. Unbounded mode streams rows to the sample file as
/// they arrive; reservoir mode (max_samples > 0) retains a seeded uniform
/// subsample and spills it at Finish(). Either way the result on disk is a
/// checksummed briq-samples-v1 file a SpilledSampleSource can train from.
class SpillSampleSink final : public SampleSink {
 public:
  SpillSampleSink(SpillSinkOptions options, int num_features);

  util::Status Add(const double* x, int label, double weight) override;
  int num_features() const override { return num_features_; }
  size_t samples_seen() const override { return samples_seen_; }
  util::Status Finish() override;

  /// Rows that ended up (or will end up) in the file: min(seen, cap).
  size_t samples_retained() const;
  /// File size after Finish(), header included (spill telemetry).
  uint64_t bytes_written() const { return writer_.bytes_written(); }
  const std::string& path() const { return writer_.path(); }

 private:
  int num_features_;
  size_t max_samples_;
  util::SampleFileWriter writer_;
  util::Rng rng_;
  size_t samples_seen_ = 0;
  bool finished_ = false;
  // Reservoir storage (only used when max_samples_ > 0): flat row-major
  // features plus parallel label/weight arrays.
  std::vector<double> reservoir_x_;
  std::vector<int32_t> reservoir_labels_;
  std::vector<double> reservoir_weights_;
};

/// SampleSource view over an existing Dataset (not owned). Adapts the
/// legacy in-memory path to the source-based RandomForest::Fit.
class DatasetSampleSource final : public SampleSource {
 public:
  explicit DatasetSampleSource(const Dataset* data) : data_(data) {}

  int num_features() const override { return data_->num_features(); }
  size_t size() const override { return data_->size(); }
  util::Status Read(size_t i, double* x, int* label,
                    double* weight) const override;

 private:
  const Dataset* data_;
};

/// SampleSource over a spilled briq-samples-v1 file. Open() verifies the
/// checksum; Read() is a lock-free positional read, safe from concurrent
/// tree-fit workers.
class SpilledSampleSource final : public SampleSource {
 public:
  static util::Result<SpilledSampleSource> Open(const std::string& path);

  int num_features() const override { return reader_->num_features(); }
  size_t size() const override { return reader_->num_rows(); }
  util::Status Read(size_t i, double* x, int* label,
                    double* weight) const override;

 private:
  explicit SpilledSampleSource(util::SampleFileReader reader)
      : reader_(std::make_shared<util::SampleFileReader>(std::move(reader))) {}

  std::shared_ptr<util::SampleFileReader> reader_;
};

}  // namespace briq::ml

#endif  // BRIQ_ML_SAMPLE_SINK_H_
