#include "ml/sample_sink.h"

#include <cstring>
#include <string>
#include <utility>

namespace briq::ml {

// --- InMemorySampleSink -----------------------------------------------------

util::Status InMemorySampleSink::Add(const double* x, int label,
                                     double weight) {
  std::memcpy(scratch_.data(), x, sizeof(double) * scratch_.size());
  data_.Add(scratch_, label, weight);
  return util::Status::OK();
}

// --- SpillSampleSink --------------------------------------------------------

SpillSampleSink::SpillSampleSink(SpillSinkOptions options, int num_features)
    : num_features_(num_features),
      max_samples_(options.max_samples),
      writer_(std::move(options.path), num_features),
      rng_(options.seed) {
  if (max_samples_ > 0) {
    reservoir_x_.reserve(max_samples_ * static_cast<size_t>(num_features_));
    reservoir_labels_.reserve(max_samples_);
    reservoir_weights_.reserve(max_samples_);
  }
}

util::Status SpillSampleSink::Add(const double* x, int label, double weight) {
  if (finished_) {
    return util::Status::FailedPrecondition(
        "SpillSampleSink::Add after Finish: " + writer_.path());
  }
  if (max_samples_ == 0) {
    ++samples_seen_;
    return writer_.Append(x, static_cast<int32_t>(label), weight);
  }
  // Algorithm R: row i (0-based) replaces a uniformly drawn reservoir slot
  // with probability cap / (i + 1). Seeded, so the retained subsample is a
  // pure function of (seed, row order).
  const size_t nf = static_cast<size_t>(num_features_);
  if (reservoir_labels_.size() < max_samples_) {
    reservoir_x_.insert(reservoir_x_.end(), x, x + nf);
    reservoir_labels_.push_back(static_cast<int32_t>(label));
    reservoir_weights_.push_back(weight);
  } else {
    const uint64_t j = rng_.UniformInt(samples_seen_ + 1);
    if (j < max_samples_) {
      std::memcpy(&reservoir_x_[static_cast<size_t>(j) * nf], x,
                  sizeof(double) * nf);
      reservoir_labels_[static_cast<size_t>(j)] = static_cast<int32_t>(label);
      reservoir_weights_[static_cast<size_t>(j)] = weight;
    }
  }
  ++samples_seen_;
  return util::Status::OK();
}

util::Status SpillSampleSink::Finish() {
  if (finished_) return util::Status::OK();
  finished_ = true;
  const size_t nf = static_cast<size_t>(num_features_);
  for (size_t i = 0; i < reservoir_labels_.size(); ++i) {
    BRIQ_RETURN_IF_ERROR(writer_.Append(&reservoir_x_[i * nf],
                                        reservoir_labels_[i],
                                        reservoir_weights_[i]));
  }
  reservoir_x_.clear();
  reservoir_x_.shrink_to_fit();
  reservoir_labels_.clear();
  reservoir_weights_.clear();
  return writer_.Finish();
}

size_t SpillSampleSink::samples_retained() const {
  if (max_samples_ == 0) return samples_seen_;
  return samples_seen_ < max_samples_ ? samples_seen_ : max_samples_;
}

// --- DatasetSampleSource ----------------------------------------------------

util::Status DatasetSampleSource::Read(size_t i, double* x, int* label,
                                       double* weight) const {
  if (i >= data_->size()) {
    return util::Status::OutOfRange("dataset row " + std::to_string(i) +
                                    " out of range (dataset has " +
                                    std::to_string(data_->size()) + ")");
  }
  std::memcpy(x, data_->row(i),
              sizeof(double) * static_cast<size_t>(data_->num_features()));
  *label = data_->label(i);
  *weight = data_->weight(i);
  return util::Status::OK();
}

// --- SpilledSampleSource ----------------------------------------------------

util::Result<SpilledSampleSource> SpilledSampleSource::Open(
    const std::string& path) {
  BRIQ_ASSIGN_OR_RETURN(util::SampleFileReader reader,
                        util::SampleFileReader::Open(path));
  return SpilledSampleSource(std::move(reader));
}

util::Status SpilledSampleSource::Read(size_t i, double* x, int* label,
                                       double* weight) const {
  int32_t raw_label = 0;
  BRIQ_RETURN_IF_ERROR(reader_->Read(i, x, &raw_label, weight));
  *label = static_cast<int>(raw_label);
  return util::Status::OK();
}

}  // namespace briq::ml
