#ifndef BRIQ_ML_DATASET_H_
#define BRIQ_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace briq::ml {

/// A dense labeled dataset with optional per-sample weights, stored
/// row-major. Labels are class ids in [0, num_classes).
class Dataset {
 public:
  explicit Dataset(int num_features) : num_features_(num_features) {}

  int num_features() const { return num_features_; }
  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Appends a sample. `x` must have exactly num_features entries.
  void Add(const std::vector<double>& x, int label, double weight = 1.0);

  /// Pointer to the i-th feature row (num_features doubles).
  const double* row(size_t i) const { return &x_[i * num_features_]; }
  double feature(size_t i, int f) const { return x_[i * num_features_ + f]; }
  int label(size_t i) const { return labels_[i]; }
  double weight(size_t i) const { return weights_[i]; }
  void set_weight(size_t i, double w) { weights_[i] = w; }

  /// Highest label + 1.
  int num_classes() const;

  /// Per-class sample counts.
  std::vector<size_t> ClassCounts() const;

  /// Sets sample weights inversely proportional to class frequency so that
  /// every class carries equal total weight (the paper's counter to the
  /// #pos << #neg imbalance, §VII-B).
  void BalanceClassWeights();

  /// Returns a dataset containing the rows at `indices` (with repetitions).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Splits into `fractions.size()` disjoint random parts with the given
  /// fractions (must sum to <= 1; remainder goes to the last part).
  std::vector<Dataset> RandomSplit(const std::vector<double>& fractions,
                                   util::Rng* rng) const;

 private:
  int num_features_;
  std::vector<double> x_;
  std::vector<int> labels_;
  std::vector<double> weights_;
};

}  // namespace briq::ml

#endif  // BRIQ_ML_DATASET_H_
