#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace briq::graph {

Graph::Graph(int num_nodes) : adjacency_(num_nodes) {}

int Graph::AddNode() {
  adjacency_.emplace_back();
  return num_nodes() - 1;
}

void Graph::CheckNode(int u) const {
  BRIQ_CHECK(u >= 0 && u < num_nodes()) << "node " << u << " out of range";
}

void Graph::AddEdge(int u, int v, double w) {
  CheckNode(u);
  CheckNode(v);
  BRIQ_CHECK(u != v) << "self-loops not supported";
  BRIQ_CHECK(w > 0.0) << "edge weight must be positive";
  for (Edge& e : adjacency_[u]) {
    if (e.to == v) {
      e.weight += w;
      for (Edge& r : adjacency_[v]) {
        if (r.to == u) {
          r.weight += w;
          break;
        }
      }
      return;
    }
  }
  adjacency_[u].push_back(Edge{v, w});
  adjacency_[v].push_back(Edge{u, w});
  ++num_edges_;
}

void Graph::RemoveEdge(int u, int v) {
  CheckNode(u);
  CheckNode(v);
  auto erase_from = [](std::vector<Edge>& edges, int target) {
    auto it = std::find_if(edges.begin(), edges.end(),
                           [target](const Edge& e) { return e.to == target; });
    if (it == edges.end()) return false;
    edges.erase(it);
    return true;
  };
  bool removed = erase_from(adjacency_[u], v);
  bool removed_rev = erase_from(adjacency_[v], u);
  BRIQ_CHECK(removed == removed_rev) << "asymmetric adjacency";
  if (removed) --num_edges_;
}

double Graph::EdgeWeight(int u, int v) const {
  CheckNode(u);
  CheckNode(v);
  for (const Edge& e : adjacency_[u]) {
    if (e.to == v) return e.weight;
  }
  return 0.0;
}

const std::vector<Graph::Edge>& Graph::Neighbors(int u) const {
  CheckNode(u);
  return adjacency_[u];
}

double Graph::WeightedDegree(int u) const {
  CheckNode(u);
  double total = 0.0;
  for (const Edge& e : adjacency_[u]) total += e.weight;
  return total;
}

}  // namespace briq::graph
