#ifndef BRIQ_GRAPH_RANDOM_WALK_H_
#define BRIQ_GRAPH_RANDOM_WALK_H_

#include <vector>

#include "graph/graph.h"

namespace briq::graph {

/// Parameters of Random Walk with Restart (personalized PageRank, paper
/// §VI-B).
struct RwrConfig {
  /// Probability of jumping back to the source at each step.
  double restart_prob = 0.15;
  /// L1 convergence bound on the stationary vector between iterations.
  double tolerance = 1e-9;
  int max_iterations = 200;
};

/// Computes the stationary visiting probabilities pi(.|source) of a random
/// walk that follows edges proportionally to their weights and restarts at
/// `source` with probability restart_prob. Dangling nodes teleport their
/// mass back to the source. Power iteration; `iterations_out` (optional)
/// receives the iteration count.
std::vector<double> RandomWalkWithRestart(const Graph& g, int source,
                                          const RwrConfig& config = {},
                                          int* iterations_out = nullptr);

}  // namespace briq::graph

#endif  // BRIQ_GRAPH_RANDOM_WALK_H_
