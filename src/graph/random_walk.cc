#include "graph/random_walk.h"

#include <cmath>

#include "util/logging.h"

namespace briq::graph {

std::vector<double> RandomWalkWithRestart(const Graph& g, int source,
                                          const RwrConfig& config,
                                          int* iterations_out) {
  const int n = g.num_nodes();
  BRIQ_CHECK(source >= 0 && source < n) << "bad source node";
  BRIQ_CHECK(config.restart_prob > 0.0 && config.restart_prob <= 1.0)
      << "restart_prob must be in (0, 1]";

  // Cache weighted degrees for the transition probabilities.
  std::vector<double> degree(n);
  for (int u = 0; u < n; ++u) degree[u] = g.WeightedDegree(u);

  std::vector<double> pi(n, 0.0);
  pi[source] = 1.0;
  std::vector<double> next(n);

  const double c = config.restart_prob;
  int iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (int u = 0; u < n; ++u) {
      if (pi[u] == 0.0) continue;
      if (degree[u] <= 0.0) {
        dangling_mass += pi[u];
        continue;
      }
      const double share = (1.0 - c) * pi[u] / degree[u];
      for (const Graph::Edge& e : g.Neighbors(u)) {
        next[e.to] += share * e.weight;
      }
    }
    // Restart mass returns to the source (every node contributes c * pi[u]
    // and sum(pi) == 1, hence the single `c` term), as does the mass
    // stranded on dangling nodes.
    next[source] += c + (1.0 - c) * dangling_mass;

    double delta = 0.0;
    for (int u = 0; u < n; ++u) delta += std::fabs(next[u] - pi[u]);
    pi.swap(next);
    if (delta < config.tolerance) {
      ++iter;
      break;
    }
  }
  if (iterations_out) *iterations_out = iter;
  return pi;
}

}  // namespace briq::graph
