#ifndef BRIQ_GRAPH_GRAPH_H_
#define BRIQ_GRAPH_GRAPH_H_

#include <cstddef>
#include <vector>

namespace briq::graph {

/// An undirected edge-weighted graph with mutable edges, tuned for the
/// candidate alignment graphs of the global-resolution stage: a few hundred
/// nodes, edges deleted incrementally as alignment decisions are made
/// (Algorithm 1 of the paper).
class Graph {
 public:
  struct Edge {
    int to = 0;
    double weight = 0.0;
  };

  explicit Graph(int num_nodes = 0);

  /// Adds a node, returning its id.
  int AddNode();

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  size_t num_edges() const { return num_edges_; }

  /// Adds (or increases) the undirected edge {u, v} with weight w > 0.
  /// Self-loops are rejected.
  void AddEdge(int u, int v, double w);

  /// Removes the undirected edge {u, v} if present.
  void RemoveEdge(int u, int v);

  /// Weight of {u, v}; 0 if absent.
  double EdgeWeight(int u, int v) const;

  bool HasEdge(int u, int v) const { return EdgeWeight(u, v) > 0.0; }

  const std::vector<Edge>& Neighbors(int u) const;

  /// Sum of edge weights incident to u.
  double WeightedDegree(int u) const;

 private:
  void CheckNode(int u) const;

  std::vector<std::vector<Edge>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace briq::graph

#endif  // BRIQ_GRAPH_GRAPH_H_
