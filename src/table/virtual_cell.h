#ifndef BRIQ_TABLE_VIRTUAL_CELL_H_
#define BRIQ_TABLE_VIRTUAL_CELL_H_

#include <cstddef>
#include <vector>

#include "table/mention.h"
#include "table/table.h"

namespace briq::table {

/// Controls virtual-cell generation (paper §II-A). Defaults mirror the
/// paper's experimental setting: sums restricted to entire rows/columns;
/// diff/percentage/change-ratio over ordered pairs of cells in the same row
/// or column; avg/min/max disabled (the extended setting).
struct VirtualCellOptions {
  bool enable_sum = true;
  bool enable_diff = true;
  bool enable_percentage = true;
  bool enable_change_ratio = true;
  bool enable_average = false;
  bool enable_min_max = false;

  /// Minimum numeric cells for a row/column aggregate.
  int min_group_size = 2;
  /// Hard cap on pairwise virtual cells per table; the generator counts
  /// (never silently hides) what the cap drops.
  size_t max_pair_mentions = 20000;
};

/// Generation telemetry so callers can report truncation (DESIGN.md: "no
/// silent caps").
struct VirtualCellStats {
  size_t single_cells = 0;
  size_t group_aggregates = 0;    // sum/avg/min/max over rows & columns
  size_t pair_aggregates = 0;     // diff/pct/ratio
  size_t dropped_by_cap = 0;
  size_t skipped_degenerate = 0;  // division by ~0, non-finite results

  size_t virtual_total() const { return group_aggregates + pair_aggregates; }
};

/// Produces every table mention for `t` (which must already be annotated
/// via Table::AnnotateQuantities): one mention per numeric body cell plus
/// virtual cells per `options`. `table_index` is stamped on every mention.
/// `stats` may be null.
std::vector<TableMention> GenerateTableMentions(
    const Table& t, int table_index, const VirtualCellOptions& options = {},
    VirtualCellStats* stats = nullptr);

/// Computes the value a virtual cell of function `func` takes over the
/// given cell values (in order). Degenerate inputs (pct with b == 0, ratio
/// with a == 0, empty input) return NaN. diff(a,b) = a-b; pct(a,b) =
/// a/b*100; ratio(a,b) = (a-b)/a expressed in percent.
double EvaluateAggregate(AggregateFunction func,
                         const std::vector<double>& values);

}  // namespace briq::table

#endif  // BRIQ_TABLE_VIRTUAL_CELL_H_
