#ifndef BRIQ_TABLE_TABLE_H_
#define BRIQ_TABLE_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "quantity/quantity.h"

namespace briq::table {

/// One table cell: raw textual content plus (after AnnotateQuantities) the
/// parsed quantity, if the cell holds one.
struct Cell {
  std::string raw;
  std::optional<quantity::ParsedQuantity> quantity;
  bool is_header = false;

  bool numeric() const { return quantity.has_value(); }
};

/// Zero-based cell coordinate.
struct CellRef {
  int row = 0;
  int col = 0;

  bool operator==(const CellRef& other) const {
    return row == other.row && col == other.col;
  }
  bool operator<(const CellRef& other) const {
    return row != other.row ? row < other.row : col < other.col;
  }
};

/// A rectangular ad-hoc table as found on the Web: string cells, optional
/// caption, heuristically detected header row/column, and parsed quantities
/// per cell. No schema is assumed (paper §I).
class Table {
 public:
  Table() = default;

  /// Builds a table from string rows; ragged rows are padded with empty
  /// cells to the widest row.
  static Table FromRows(std::vector<std::vector<std::string>> rows);

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }
  bool empty() const { return num_rows_ == 0 || num_cols_ == 0; }

  const Cell& cell(int r, int c) const;
  Cell& cell(int r, int c);
  const Cell& cell(CellRef ref) const { return cell(ref.row, ref.col); }

  const std::string& caption() const { return caption_; }
  void set_caption(std::string caption) { caption_ = std::move(caption); }

  bool has_header_row() const { return has_header_row_; }
  bool has_header_col() const { return has_header_col_; }
  void set_header_row(bool v);
  void set_header_col(bool v);

  /// Marks the header row/column using a numeric-density heuristic: a first
  /// row (column) whose cells are mostly non-numeric while the body is
  /// mostly numeric is a header. Handles "rotated" tables (Figure 1b) where
  /// attribute names run down the first column.
  void DetectHeaders();

  /// Parses every non-header cell with quantity::ParseCellQuantity, applying
  /// unit/scale cues found in the caption and in the cell's row/column
  /// headers ("($ Millions)" headers multiply values by 1e6 and set USD).
  void AnnotateQuantities();

  /// Header text of column c (empty if no header row).
  std::string ColumnHeader(int c) const;
  /// Header text of row r (empty if no header column).
  std::string RowHeader(int r) const;

  /// True if (r, c) addresses a body (non-header) cell.
  bool IsBodyCell(int r, int c) const;

  /// All raw cell contents of row r / column c (body and header), used as
  /// the table-side "local context" of features f2/f4.
  std::string RowContent(int r) const;
  std::string ColumnContent(int c) const;

  /// Every token of the table (cells + caption), lowercased words only.
  std::vector<std::string> AllWords() const;

  /// Full concatenated content (cells + caption), for phrase extraction.
  std::string AllContent() const;

 private:
  int num_rows_ = 0;
  int num_cols_ = 0;
  std::vector<Cell> cells_;  // row-major
  std::string caption_;
  bool has_header_row_ = false;
  bool has_header_col_ = false;
};

}  // namespace briq::table

#endif  // BRIQ_TABLE_TABLE_H_
