#include "table/virtual_cell.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/string_util.h"

namespace briq::table {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Precision (decimal digits) to report for an aggregate over cells.
int MaxPrecision(const Table& t, const std::vector<CellRef>& cells) {
  int p = 0;
  for (const CellRef& ref : cells) {
    p = std::max(p, t.cell(ref).quantity->precision);
  }
  return p;
}

// Shared unit over cells, empty when mixed. Cells sharing a canonical
// unit share its base-unit factor, which the aggregate inherits.
void SharedUnit(const Table& t, const std::vector<CellRef>& cells,
                std::string* unit, quantity::UnitCategory* category,
                double* to_base) {
  unit->clear();
  *category = quantity::UnitCategory::kNone;
  *to_base = 1.0;
  bool first = true;
  for (const CellRef& ref : cells) {
    const auto& q = *t.cell(ref).quantity;
    if (first) {
      *unit = q.unit;
      *category = q.unit_category;
      *to_base = q.unit_to_base;
      first = false;
    } else if (*unit != q.unit) {
      unit->clear();
      *category = quantity::UnitCategory::kNone;
      *to_base = 1.0;
      return;
    }
  }
}

std::string Synthesize(const Table& t, AggregateFunction func,
                       const std::vector<CellRef>& cells) {
  std::string s = AggregateFunctionName(func);
  s += "(";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) s += ",";
    s += t.cell(cells[i]).raw;
  }
  s += ")";
  return s;
}

}  // namespace

double EvaluateAggregate(AggregateFunction func,
                         const std::vector<double>& values) {
  if (values.empty()) return kNaN;
  switch (func) {
    case AggregateFunction::kNone:
      return values.size() == 1 ? values[0] : kNaN;
    case AggregateFunction::kSum: {
      double s = 0.0;
      for (double v : values) s += v;
      return s;
    }
    case AggregateFunction::kAverage: {
      double s = 0.0;
      for (double v : values) s += v;
      return s / static_cast<double>(values.size());
    }
    case AggregateFunction::kMax:
      return *std::max_element(values.begin(), values.end());
    case AggregateFunction::kMin:
      return *std::min_element(values.begin(), values.end());
    case AggregateFunction::kDiff:
      if (values.size() != 2) return kNaN;
      return values[0] - values[1];
    case AggregateFunction::kPercentage:
      if (values.size() != 2 || std::fabs(values[1]) < 1e-12) return kNaN;
      return values[0] / values[1] * 100.0;
    case AggregateFunction::kChangeRatio:
      // Change rate of a relative to base b. The paper's formal definition
      // reads (a-b)/a, but its own worked examples — "increased by 33.65%
      // over the 184,611 units" (Fig. 5a) and "increased by 1.5%" ~
      // ratio(890, 876) — are only consistent with the conventional
      // (a-b)/b. Expressed in percent to compare against "%" mentions.
      if (values.size() != 2 || std::fabs(values[1]) < 1e-12) return kNaN;
      return (values[0] - values[1]) / values[1] * 100.0;
  }
  return kNaN;
}

std::vector<TableMention> GenerateTableMentions(
    const Table& t, int table_index, const VirtualCellOptions& options,
    VirtualCellStats* stats) {
  std::vector<TableMention> out;
  VirtualCellStats local;
  VirtualCellStats& st = stats ? *stats : local;
  st = VirtualCellStats();

  // --- Single-cell mentions ---------------------------------------------
  for (int r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_cols(); ++c) {
      const Cell& cl = t.cell(r, c);
      if (cl.is_header || !cl.numeric()) continue;
      TableMention m;
      m.table_index = table_index;
      m.func = AggregateFunction::kNone;
      m.cells = {CellRef{r, c}};
      m.value = cl.quantity->value;
      m.unit = cl.quantity->unit;
      m.unit_category = cl.quantity->unit_category;
      m.unit_to_base = cl.quantity->unit_to_base;
      m.precision = cl.quantity->precision;
      m.surface = cl.raw;
      out.push_back(std::move(m));
      ++st.single_cells;
    }
  }

  // Numeric body cells per row / per column.
  std::vector<std::vector<CellRef>> row_cells(t.num_rows());
  std::vector<std::vector<CellRef>> col_cells(t.num_cols());
  for (int r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_cols(); ++c) {
      const Cell& cl = t.cell(r, c);
      if (cl.is_header || !cl.numeric()) continue;
      row_cells[r].push_back(CellRef{r, c});
      col_cells[c].push_back(CellRef{r, c});
    }
  }

  auto add_group = [&](AggregateFunction func,
                       const std::vector<CellRef>& cells) {
    std::vector<double> values;
    values.reserve(cells.size());
    for (const CellRef& ref : cells) {
      values.push_back(t.cell(ref).quantity->value);
    }
    double value = EvaluateAggregate(func, values);
    if (!std::isfinite(value)) {
      ++st.skipped_degenerate;
      return;
    }
    TableMention m;
    m.table_index = table_index;
    m.func = func;
    m.cells = cells;
    m.value = value;
    if (func == AggregateFunction::kPercentage ||
        func == AggregateFunction::kChangeRatio) {
      m.unit = "percent";
      m.unit_category = quantity::UnitCategory::kPercent;
      m.precision = 2;
    } else {
      SharedUnit(t, cells, &m.unit, &m.unit_category, &m.unit_to_base);
      m.precision = MaxPrecision(t, cells);
    }
    m.surface = Synthesize(t, func, cells);
    out.push_back(std::move(m));
  };

  // --- Whole-row / whole-column aggregates -------------------------------
  auto groups = {&row_cells, &col_cells};
  for (const auto* group_set : groups) {
    for (const auto& cells : *group_set) {
      if (static_cast<int>(cells.size()) < options.min_group_size) continue;
      if (options.enable_sum) {
        add_group(AggregateFunction::kSum, cells);
        ++st.group_aggregates;
      }
      if (options.enable_average) {
        add_group(AggregateFunction::kAverage, cells);
        ++st.group_aggregates;
      }
      if (options.enable_min_max) {
        add_group(AggregateFunction::kMax, cells);
        add_group(AggregateFunction::kMin, cells);
        st.group_aggregates += 2;
      }
    }
  }

  // --- Ordered same-row / same-column pairs ------------------------------
  const bool any_pairs = options.enable_diff || options.enable_percentage ||
                         options.enable_change_ratio;
  if (any_pairs) {
    auto add_pairs = [&](const std::vector<CellRef>& cells) {
      for (size_t i = 0; i < cells.size(); ++i) {
        for (size_t j = 0; j < cells.size(); ++j) {
          if (i == j) continue;
          if (st.pair_aggregates >= options.max_pair_mentions) {
            ++st.dropped_by_cap;
            continue;
          }
          std::vector<CellRef> pair = {cells[i], cells[j]};
          if (options.enable_diff) {
            add_group(AggregateFunction::kDiff, pair);
            ++st.pair_aggregates;
          }
          if (st.pair_aggregates >= options.max_pair_mentions) continue;
          if (options.enable_percentage) {
            add_group(AggregateFunction::kPercentage, pair);
            ++st.pair_aggregates;
          }
          if (st.pair_aggregates >= options.max_pair_mentions) continue;
          if (options.enable_change_ratio) {
            add_group(AggregateFunction::kChangeRatio, pair);
            ++st.pair_aggregates;
          }
        }
      }
    };
    for (const auto& cells : row_cells) {
      if (static_cast<int>(cells.size()) >= 2) add_pairs(cells);
    }
    for (const auto& cells : col_cells) {
      if (static_cast<int>(cells.size()) >= 2) add_pairs(cells);
    }
  }

  return out;
}

}  // namespace briq::table
