#ifndef BRIQ_TABLE_MENTION_H_
#define BRIQ_TABLE_MENTION_H_

#include <string>
#include <vector>

#include "quantity/quantity.h"
#include "table/table.h"

namespace briq::table {

/// Aggregation functions over table cells (paper §II-A). kNone marks a
/// plain single-cell mention; the others are virtual cells. The paper's
/// experiments restrict to {sum, diff, pct, ratio} (the >= 5% frequency
/// rule); avg/min/max implement the extended setting.
enum class AggregateFunction {
  kNone = 0,
  kSum,
  kDiff,        // diff(a, b) = a - b
  kPercentage,  // pct(a, b) = a / b * 100
  kChangeRatio, // ratio(a, b) = (a - b) / a, stored as percent
  kAverage,
  kMax,
  kMin,
};

const char* AggregateFunctionName(AggregateFunction f);

/// A table-side quantity mention: either an explicit single cell or a
/// virtual cell computed from several cells in the same row or column.
struct TableMention {
  int table_index = 0;  ///< index of the table within the document
  AggregateFunction func = AggregateFunction::kNone;
  /// Referenced cells. One entry for single-cell mentions; the ordered
  /// (a, b) pair for diff/pct/ratio; all aggregated cells for sum/avg/etc.
  std::vector<CellRef> cells;
  /// Normalized numeric value. Percentage and change-ratio virtual cells
  /// store percent units (ratio(890, 876) -> 1.573) so they compare
  /// directly against textual "%" mentions.
  double value = 0.0;
  std::string unit;  ///< canonical unit, empty if mixed/unknown
  quantity::UnitCategory unit_category = quantity::UnitCategory::kNone;
  /// Factor converting `value` from `unit` into the category's base unit
  /// (1.0 for every legacy surface form; 1e3 for a "(tonnes)" column).
  double unit_to_base = 1.0;
  int precision = 0;
  /// Cell surface form for single cells; synthesized for virtual cells
  /// ("sum(35,38,34,11,5)").
  std::string surface;

  bool is_virtual() const { return func != AggregateFunction::kNone; }
  bool has_unit() const { return !unit.empty(); }

  /// Stable identity for alignment comparison: same table, function, and
  /// cell set (order-sensitive for the ordered pair functions).
  bool SameTarget(const TableMention& other) const;

  /// Human-readable description, e.g. "t0 sum[(1,3),(2,3)] = 73".
  std::string DebugString() const;
};

/// A text-side quantity mention, located within one paragraph of a
/// document.
struct TextMention {
  quantity::ParsedQuantity q;
  int paragraph = 0;    ///< paragraph index within the document
  int sentence = 0;     ///< sentence index within the paragraph
  size_t token_pos = 0; ///< token index within the paragraph (proximity)

  const std::string& surface() const { return q.surface; }
  double value() const { return q.value; }
};

}  // namespace briq::table

#endif  // BRIQ_TABLE_MENTION_H_
