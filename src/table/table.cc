#include "table/table.h"

#include <algorithm>

#include "quantity/header_cue.h"
#include "quantity/quantity_parser.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace briq::table {

Table Table::FromRows(std::vector<std::vector<std::string>> rows) {
  Table t;
  t.num_rows_ = static_cast<int>(rows.size());
  size_t width = 0;
  for (const auto& r : rows) width = std::max(width, r.size());
  t.num_cols_ = static_cast<int>(width);
  t.cells_.resize(static_cast<size_t>(t.num_rows_) * t.num_cols_);
  for (int r = 0; r < t.num_rows_; ++r) {
    for (int c = 0; c < t.num_cols_; ++c) {
      if (c < static_cast<int>(rows[r].size())) {
        t.cell(r, c).raw = std::string(util::Trim(rows[r][c]));
      }
    }
  }
  return t;
}

const Cell& Table::cell(int r, int c) const {
  BRIQ_CHECK(r >= 0 && r < num_rows_ && c >= 0 && c < num_cols_)
      << "cell (" << r << "," << c << ") out of bounds " << num_rows_ << "x"
      << num_cols_;
  return cells_[static_cast<size_t>(r) * num_cols_ + c];
}

Cell& Table::cell(int r, int c) {
  return const_cast<Cell&>(static_cast<const Table*>(this)->cell(r, c));
}

void Table::set_header_row(bool v) {
  has_header_row_ = v;
  if (num_rows_ == 0) return;
  for (int c = 0; c < num_cols_; ++c) cell(0, c).is_header = v;
}

void Table::set_header_col(bool v) {
  has_header_col_ = v;
  if (num_cols_ == 0) return;
  for (int r = 0; r < num_rows_; ++r) cell(r, 0).is_header = v;
}

namespace {

// Fraction of non-empty cells in the range that parse as quantities.
double NumericFraction(const Table& t, int r0, int r1, int c0, int c1) {
  int numeric = 0;
  int nonempty = 0;
  for (int r = r0; r < r1; ++r) {
    for (int c = c0; c < c1; ++c) {
      const std::string& raw = t.cell(r, c).raw;
      if (raw.empty()) continue;
      ++nonempty;
      if (quantity::ParseCellQuantity(raw).has_value()) ++numeric;
    }
  }
  return nonempty == 0 ? 0.0 : static_cast<double>(numeric) / nonempty;
}

}  // namespace

void Table::DetectHeaders() {
  if (num_rows_ < 2 || num_cols_ < 1) return;

  // Header row: first row mostly textual while the rest is more numeric.
  double first_row_numeric = NumericFraction(*this, 0, 1, 0, num_cols_);
  double body_numeric = NumericFraction(*this, 1, num_rows_, 0, num_cols_);
  if (first_row_numeric <= 0.5 && body_numeric > first_row_numeric) {
    set_header_row(true);
  }

  // Header column (rotated tables): first column mostly textual.
  if (num_cols_ >= 2) {
    int r0 = has_header_row_ ? 1 : 0;
    double first_col_numeric = NumericFraction(*this, r0, num_rows_, 0, 1);
    double rest_numeric = NumericFraction(*this, r0, num_rows_, 1, num_cols_);
    if (first_col_numeric <= 0.5 && rest_numeric > first_col_numeric) {
      set_header_col(true);
    }
  }
}

void Table::AnnotateQuantities() {
  // Caption-level cue applies to every cell lacking its own unit.
  quantity::HeaderCue caption_cue = quantity::ParseHeaderCue(caption_);

  // Per-column and per-row cues from headers.
  std::vector<quantity::HeaderCue> col_cues(num_cols_);
  std::vector<quantity::HeaderCue> row_cues(num_rows_);
  if (has_header_row_) {
    for (int c = 0; c < num_cols_; ++c) {
      col_cues[c] = quantity::ParseHeaderCue(cell(0, c).raw);
    }
  }
  if (has_header_col_) {
    for (int r = 0; r < num_rows_; ++r) {
      row_cues[r] = quantity::ParseHeaderCue(cell(r, 0).raw);
    }
  }

  for (int r = 0; r < num_rows_; ++r) {
    for (int c = 0; c < num_cols_; ++c) {
      Cell& cl = cell(r, c);
      cl.quantity.reset();
      if (cl.is_header || cl.raw.empty()) continue;
      auto q = quantity::ParseCellQuantity(cl.raw);
      if (!q.has_value()) continue;

      // Apply the most specific available cue: column, then row, then
      // caption. Scale cues multiply only unit-bearing contexts the cell
      // itself did not already express.
      auto apply = [&](const quantity::HeaderCue& cue) {
        if (cue.unit.has_value() && !q->has_unit()) {
          q->unit = cue.unit->canonical;
          q->unit_category = cue.unit->category;
          if (cue.unit->category == quantity::UnitCategory::kPercent) {
            q->value *= cue.unit->to_base;
            q->unit = "percent";
          } else {
            // Dimensioned cue ("(tonnes)", "(km)"): the cell's values are
            // expressed in that unit; carry its base-unit factor.
            q->unit_to_base = cue.unit->to_base;
          }
        }
        // A header scale ("$ Millions") applies unless the cell already
        // used its own scale word (value != unnormalized). Percent cells
        // are never rescaled: "5%" in a "($ Millions)" table is still 5%.
        if (cue.scale != 1.0 && q->value == q->unnormalized &&
            q->unit_category != quantity::UnitCategory::kPercent) {
          q->value *= cue.scale;
        }
      };
      apply(col_cues[c]);
      apply(row_cues[r]);
      apply(caption_cue);
      cl.quantity = std::move(q);
    }
  }
}

std::string Table::ColumnHeader(int c) const {
  if (!has_header_row_ || num_rows_ == 0) return "";
  return cell(0, c).raw;
}

std::string Table::RowHeader(int r) const {
  if (!has_header_col_ || num_cols_ == 0) return "";
  return cell(r, 0).raw;
}

bool Table::IsBodyCell(int r, int c) const {
  if (r < 0 || r >= num_rows_ || c < 0 || c >= num_cols_) return false;
  return !cell(r, c).is_header;
}

std::string Table::RowContent(int r) const {
  // "Full row content" (paper §IV-B): every cell the row passes through,
  // which naturally includes the row's header cell in column 0. Column
  // headers are NOT mixed in — they belong to ColumnContent; mixing them
  // would give every row the same header vocabulary and wash out the
  // local-context feature.
  std::vector<std::string> parts;
  for (int c = 0; c < num_cols_; ++c) {
    if (!cell(r, c).raw.empty()) parts.push_back(cell(r, c).raw);
  }
  return util::Join(parts, " ");
}

std::string Table::ColumnContent(int c) const {
  std::vector<std::string> parts;
  for (int r = 0; r < num_rows_; ++r) {
    if (!cell(r, c).raw.empty()) parts.push_back(cell(r, c).raw);
  }
  return util::Join(parts, " ");
}

std::vector<std::string> Table::AllWords() const {
  return text::LowercaseWords(AllContent());
}

std::string Table::AllContent() const {
  std::string all = caption_;
  for (const Cell& cl : cells_) {
    if (cl.raw.empty()) continue;
    all += " ";
    all += cl.raw;
  }
  return all;
}

}  // namespace briq::table
