#include "table/mention.h"

#include "util/string_util.h"

namespace briq::table {

const char* AggregateFunctionName(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kNone:
      return "single";
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kDiff:
      return "diff";
    case AggregateFunction::kPercentage:
      return "percent";
    case AggregateFunction::kChangeRatio:
      return "ratio";
    case AggregateFunction::kAverage:
      return "avg";
    case AggregateFunction::kMax:
      return "max";
    case AggregateFunction::kMin:
      return "min";
  }
  return "?";
}

bool TableMention::SameTarget(const TableMention& other) const {
  return table_index == other.table_index && func == other.func &&
         cells == other.cells;
}

std::string TableMention::DebugString() const {
  std::string s = "t" + std::to_string(table_index) + " ";
  s += AggregateFunctionName(func);
  s += "[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) s += ",";
    s += "(" + std::to_string(cells[i].row) + "," +
         std::to_string(cells[i].col) + ")";
  }
  s += "] = " + util::FormatDouble(value, 4);
  if (!unit.empty()) s += " " + unit;
  return s;
}

}  // namespace briq::table
