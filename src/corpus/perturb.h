#ifndef BRIQ_CORPUS_PERTURB_H_
#define BRIQ_CORPUS_PERTURB_H_

#include <string>

#include "corpus/document.h"

namespace briq::corpus {

/// Text-mention perturbations of the paper's Table II robustness study.
enum class PerturbMode {
  kNone = 0,
  /// Remove the least significant digit: 6746 -> 6740, 2.74 -> 2.7,
  /// 0.19 -> 0.1.
  kTruncate,
  /// Numerically round the least significant digit: 6746 -> 6750,
  /// 2.74 -> 2.7, 0.19 -> 0.2.
  kRound,
};

const char* PerturbModeName(PerturbMode mode);

/// Applies `mode` to the numeric portion of a single surface string.
/// Returns the input unchanged if no digits are found.
std::string PerturbSurface(const std::string& surface, PerturbMode mode);

/// Returns a copy of `doc` with every ground-truth text mention perturbed
/// in place (paragraph text rewritten, all spans re-aligned). Ground-truth
/// targets are unchanged: the perturbed mention still refers to the same
/// cells, it is just harder to align.
Document PerturbDocument(const Document& doc, PerturbMode mode);

/// Applies PerturbDocument to every document.
Corpus PerturbCorpus(const Corpus& corpus, PerturbMode mode);

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_PERTURB_H_
