#include "corpus/paper_examples.h"

#include "util/logging.h"

namespace briq::corpus {

namespace {

using table::AggregateFunction;
using table::CellRef;

/// A paragraph piece: plain text, or a mention with its target.
struct Piece {
  std::string txt;
  bool is_mention = false;
  GroundTruthTarget target;
  Realization realization = Realization::kExact;
};

Piece T(std::string txt) { return Piece{std::move(txt), false, {}, {}}; }

Piece M(std::string txt, int tbl, AggregateFunction func,
        std::vector<CellRef> cells,
        Realization realization = Realization::kExact) {
  Piece p;
  p.txt = std::move(txt);
  p.is_mention = true;
  p.target = GroundTruthTarget{tbl, func, std::move(cells)};
  p.realization = realization;
  return p;
}

/// Assembles pieces into one paragraph, recording mention spans.
void AddParagraph(Document* doc, const std::vector<Piece>& pieces) {
  std::string para;
  int paragraph_index = static_cast<int>(doc->paragraphs.size());
  for (const Piece& p : pieces) {
    if (p.is_mention) {
      GroundTruthAlignment gt;
      gt.paragraph = paragraph_index;
      gt.span = text::Span{para.size(), para.size() + p.txt.size()};
      gt.surface = p.txt;
      gt.target = p.target;
      gt.realization = p.realization;
      doc->ground_truth.push_back(std::move(gt));
    }
    para += p.txt;
  }
  doc->paragraphs.push_back(std::move(para));
}

table::Table MakeTable(std::vector<std::vector<std::string>> rows,
                       std::string caption, bool header_row = true,
                       bool header_col = true) {
  table::Table t = table::Table::FromRows(std::move(rows));
  t.set_caption(std::move(caption));
  t.set_header_row(header_row);
  t.set_header_col(header_col);
  t.AnnotateQuantities();
  return t;
}

constexpr auto kNone = AggregateFunction::kNone;
constexpr auto kSum = AggregateFunction::kSum;
constexpr auto kDiff = AggregateFunction::kDiff;
constexpr auto kPct = AggregateFunction::kPercentage;
constexpr auto kRatio = AggregateFunction::kChangeRatio;

}  // namespace

Document Figure1aHealth() {
  Document doc;
  doc.id = "fig1a-health";
  doc.domain = "health";
  doc.tables.push_back(MakeTable(
      {{"side effects", "male", "female", "total"},
       {"Rash", "15", "20", "35"},
       {"Depression", "13", "25", "38"},
       {"Hypertension", "19", "15", "34"},
       {"Nausea", "5", "6", "11"},
       {"Eye Disorders", "2", "3", "5"}},
      "Reported side effects"));

  std::vector<CellRef> total_col = {{1, 3}, {2, 3}, {3, 3}, {4, 3}, {5, 3}};
  std::vector<CellRef> female_col = {{1, 2}, {2, 2}, {3, 2}, {4, 2}, {5, 2}};
  std::vector<CellRef> male_col = {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}};
  AddParagraph(
      &doc,
      {T("A total of "), M("123", 0, kSum, total_col),
       T(" patients who undergo the drug trials reported side effects, of "
         "which there were "),
       M("69", 0, kSum, female_col), T(" female patients and "),
       M("54", 0, kSum, male_col),
       T(" male patients. The most common side affect is depression, "
         "reported by "),
       M("38", 0, kNone, {{2, 3}}),
       T(" patients; and the least common side affect is eye disorder, "
         "reported by "),
       M("5", 0, kNone, {{5, 3}}), T(" patients.")});
  return doc;
}

Document Figure1bEnvironment() {
  Document doc;
  doc.id = "fig1b-environment";
  doc.domain = "environment";
  doc.tables.push_back(MakeTable(
      {{"Category", "Focus E", "A3 e-tron", "VW Golf"},
       {"German MSRP", "34900", "36900", "33800"},
       {"American MSRP", "29120", "38900", "29915"},
       {"Emission (g/km)", "0", "105", "122"},
       {"Fuel Economy", "105", "70.6", "61.4"},
       {"Final rating", "1.33", "2.67", "2.67"}},
      "Electric vehicle comparison"));

  AddParagraph(
      &doc,
      {T("The final ratings are dominated by the PHEV from Audi ("),
       M("2.67", 0, kNone, {{5, 2}}), T(") and ICE from Volkswagen ("),
       M("2.67", 0, kNone, {{5, 3}}),
       T("). Audi A3 e-tron is the least affordable option with "),
       M("37K EUR", 0, kNone, {{1, 2}}, Realization::kApproximate),
       T(" in Germany and "),
       M("39K USD", 0, kNone, {{2, 2}}, Realization::kApproximate),
       T(" in the US. The Ford Focus Electric, lowest rating ("),
       M("1.33", 0, kNone, {{5, 1}}), T("), is a "),
       M("2K EUR", 0, kDiff, {{1, 2}, {1, 1}}, Realization::kApproximate),
       T(" cheaper alternative with "), M("0", 0, kNone, {{3, 1}}),
       T(" CO2 emission and "), M("105 MPGe", 0, kNone, {{4, 1}}),
       T(" fuel consumption.")});
  return doc;
}

Document Figure1cFinance() {
  Document doc;
  doc.id = "fig1c-finance";
  doc.domain = "finance";
  doc.tables.push_back(MakeTable(
      {{"Income gains", "2013", "2012", "2011"},
       {"Total Revenue", "3,263", "3,193", "2,911"},
       {"Gross income", "1,069", "1,053", "0,877"},
       {"Income taxes", "179", "177", "160"},
       {"Income", "890", "876", "849"}},
      "Income gains (in Mio)"));

  AddParagraph(
      &doc,
      {T("In 2013 revenue of "),
       M("$3.26 billion CDN", 0, kNone, {{1, 1}}, Realization::kApproximate),
       T(" was up "),
       M("$70 million CDN", 0, kDiff, {{1, 1}, {1, 2}},
         Realization::kScaled),
       T(" or "),
       M("2%", 0, kRatio, {{1, 1}, {1, 2}}, Realization::kDisplayRounded),
       T(" from the previous year. The net income of 2013 was "),
       M("$0.9 billion CDN", 0, kNone, {{4, 1}}, Realization::kApproximate),
       T(". Compared to the revenue of 2012, it increased by "),
       M("1.5%", 0, kRatio, {{4, 1}, {4, 2}}, Realization::kDisplayRounded),
       T(".")});
  return doc;
}

Document Figure3CoupledQuantities() {
  Document doc;
  doc.id = "fig3-coupled";
  doc.domain = "finance";
  doc.tables.push_back(MakeTable(
      {{"($ Millions)", "2Q 2012", "2Q 2013", "% Change"},
       {"Sales", "900", "947", "5%"},
       {"Segment Profit", "114", "126", "11%"},
       {"Segment Margin", "12.7%", "13.3%", "60 bps"}},
      "Table 1: Transportation Systems ($ Millions)"));
  doc.tables.push_back(MakeTable(
      {{"($ Millions)", "2Q 2012", "2Q 2013", "% Change"},
       {"Sales", "3,962", "4,065", "3%"},
       {"Segment Profit", "525", "585", "11%"},
       {"Segment Margin", "13.3%", "14.4%", "110 bps"}},
      "Table 2: Automation & Control ($ Millions)"));

  AddParagraph(
      &doc,
      {T("Sales were up "), M("5%", 0, kNone, {{1, 3}}),
       T(" on both a reported and organic basis, compared with the second "
         "quarter of 2012. Segment profit was up "),
       M("11%", 0, kNone, {{2, 3}}), T(" and segment margins increased "),
       M("60 bps", 0, kNone, {{3, 3}}), T(" to "),
       M("13.3%", 0, kNone, {{3, 2}}),
       T(" primarily driven by strong productivity and volume leverage.")});
  return doc;
}

Document Figure5aCarSales() {
  Document doc;
  doc.id = "fig5a-car-sales";
  doc.domain = "others";
  doc.tables.push_back(MakeTable(
      {{"CATEGORY", "OCTOBER 2011", "OCTOBER 2012"},
       {"Passenger Vehicles", "184,611", "246,725"},
       {"Commercial Vehicles", "62,013", "66,722"},
       {"Three-wheelers", "49,069", "55,241"},
       {"Two-wheelers", "1,144,716", "1,285,015"}},
      "Vehicle sales by category"));

  AddParagraph(
      &doc,
      {T("Overall, "), M("246,725", 0, kNone, {{1, 2}}),
       T(" passenger vehicles were sold in the domestic market, which is an "
         "increase of "),
       M("33.65%", 0, kRatio, {{1, 2}, {1, 1}}, Realization::kDisplayRounded),
       T(" over the "), M("184,611", 0, kNone, {{1, 1}}),
       T(" units sold in the corresponding period last year.")});
  return doc;
}

Document Figure5bCensus() {
  Document doc;
  doc.id = "fig5b-census";
  doc.domain = "politics";
  doc.tables.push_back(MakeTable(
      {{"People", "Fulham Gardens", "Australia"},
       {"Total", "5,911", "18,769,249"},
       {"Male", "2,907", "9,270,466"},
       {"Female", "3,004", "9,498,783"},
       {"Aboriginal and Torres Strait Islander people", "23", "410,003"}},
      "Census 2001"));

  AddParagraph(
      &doc,
      {T("On Census Night, "), M("5,911", 0, kNone, {{1, 1}}),
       T(" people were counted in Fulham Gardens: of these "),
       M("49.2%", 0, kPct, {{2, 1}, {1, 1}}, Realization::kDisplayRounded),
       T(" were male and "),
       M("50.8%", 0, kPct, {{3, 1}, {1, 1}}, Realization::kDisplayRounded),
       T(" were female. Of the total population "),
       M("0.4%", 0, kPct, {{4, 1}, {1, 1}}, Realization::kDisplayRounded),
       T(" were Aboriginal and Torres Strait Islander people.")});
  return doc;
}

Document Figure5cEarnings() {
  Document doc;
  doc.id = "fig5c-earnings";
  doc.domain = "finance";
  doc.tables.push_back(MakeTable(
      {{"Company Name", "Q3 EPS Estimate", "Q3 Actual EPS",
        "Q3 FY 2012 Net Earnings", "Q3 FY 2013 Net Earnings"},
       {"Bed Bath & Beyond", "$1.15", "$1.12", "$232.8 Million",
        "$237.2 Million"},
       {"The Container Store Group", "$0.08", "$0.11", "$6.86 Million",
        "$(9.49) Million"}},
      "Quarterly results"));

  AddParagraph(
      &doc,
      {T("However, the Container Store's net income for the third quarter "
         "fell "),
       M("$16.3 million", 0, kDiff, {{2, 3}, {2, 4}},
         Realization::kApproximate),
       T(" from the third quarter in fiscal 2012, earning the company a net "
         "loss of approximately "),
       M("$9.5 million", 0, kNone, {{2, 4}}, Realization::kApproximate),
       T(" on account of the company's recent IPO-related expenses. On the "
         "brighter side, Bed Bath & Beyond gained a profit of "),
       M("$4 million", 0, kDiff, {{1, 4}, {1, 3}}, Realization::kApproximate),
       T(" from the same period one year earlier.")});
  return doc;
}

Document Figure6aBedrooms() {
  Document doc;
  doc.id = "fig6a-bedrooms";
  doc.domain = "others";
  doc.tables.push_back(MakeTable(
      {{"Number of bedrooms", "Scenic Rim", "%", "Queensland", "%q",
        "Australia", "%a"},
       {"None (includes bedsitters)", "42", "0.9", "8,676", "0.6", "42,160",
        "0.5"},
       {"1 bedroom", "204", "4.5", "64,983", "4.2", "363,129", "4.7"},
       {"2 bedrooms", "582", "13.0", "260,607", "16.8", "1,481,577", "19.1"},
       {"3 bedrooms", "1,895", "42.2", "651,208", "42.1", "3,379,930",
        "43.6"},
       {"Average number of bedrooms per dwelling", "3.2", "--", "3.2", "--",
        "3.1", "--"},
       {"Average number of people per household", "2.6", "--", "2.6", "--",
        "2.6", "--"}},
      "Dwelling structure"));

  AddParagraph(
      &doc,
      {T("In Scenic Rim, of occupied private dwellings "),
       M("4.5%", 0, kNone, {{2, 2}}), T(" had 1 bedroom, "),
       M("13.0%", 0, kNone, {{3, 2}}), T(" had 2 bedrooms and "),
       M("42.2%", 0, kNone, {{4, 2}}),
       T(" had 3 bedrooms. The average number of bedrooms per occupied "
         "private dwelling was "),
       M("3.2", 0, kNone, {{5, 1}}),
       T(". The average household size was "),
       M("2.6", 0, kNone, {{6, 1}}), T(" people.")});
  return doc;
}

Document Figure6bPonoko() {
  Document doc;
  doc.id = "fig6b-ponoko";
  doc.domain = "others";
  doc.tables.push_back(MakeTable(
      {{"Item", "Cost"},
       {"Ponoko making cost", "$18"},
       {"Ponoko materials cost", "$7"},
       {"Ponoko shipping cost", "$5"},
       {"Extra parts cost", "$2"},
       {"Self assembly instructions cost", "$1"},
       {"Packaging cost", "$1"},
       {"Misc", "$1"},
       {"Your cost price", "$35"},
       {"Your creative fee (30%)", "$15"},
       {"Your wholesale price", "$50"},
       {"Your retail fee (50%)", "$50"},
       {"Your retail price", "$100"}},
      "Pricing breakdown"));

  AddParagraph(
      &doc,
      {T("So, if your cost for an item is "),
       M("$25", 0, kNone, {{8, 1}}, Realization::kApproximate),
       T(", and you see similar items selling for "),
       M("$100", 0, kNone, {{12, 1}}), T(" retail, then a "),
       M("$50", 0, kNone, {{10, 1}}),
       T(" wholesale cost gives you a nice profit of "),
       M("$25", 0, kDiff, {{10, 1}, {8, 1}}, Realization::kApproximate),
       T(".")});
  return doc;
}

Document Figure6cMutualFunds() {
  Document doc;
  doc.id = "fig6c-mutual-funds";
  doc.domain = "finance";
  // Values are in billions, but the table does not say so (the paper's
  // "missing scale" error case).
  doc.tables.push_back(MakeTable(
      {{"Fund type", "August 2005", "July 2005", "YTD 2005", "YTD 2004"},
       {"Stock Mutual Funds", "6.31", "9.95", "89.77", "128.69"},
       {"Taxable Bond Mutual Funds", "5.82", "5.58", "23.50", "-6.94"},
       {"Municipal Bond Mutual Funds", "1.49", "1.69", "5.72", "-12.83"},
       {"Hybrid Mutual Funds", "1.77", "1.45", "23.49", "30.14"}},
      "Mutual fund inflows"));

  AddParagraph(
      &doc,
      {T("Bond funds remained about the same. ICI said that fixed-income "
         "portfolios had an inflow of $7.32 billion in August, compared "
         "with an inflow of $7.27 billion in July. Taxable bond funds had "
         "an inflow of "),
       M("$5.82 billion", 0, kNone, {{2, 1}}, Realization::kScaled),
       T(" in August, compared with an inflow of "),
       M("$5.58 billion", 0, kNone, {{2, 2}}, Realization::kScaled),
       T(" in July. Municipal bond funds had an inflow of "),
       M("$1.49 billion", 0, kNone, {{3, 1}}, Realization::kScaled),
       T(" in August, compared with an inflow of "),
       M("$1.69 billion", 0, kNone, {{3, 2}}, Realization::kScaled),
       T(" in July.")});
  return doc;
}

std::vector<Document> AllPaperExamples() {
  return {Figure1aHealth(),   Figure1bEnvironment(), Figure1cFinance(),
          Figure3CoupledQuantities(), Figure5aCarSales(), Figure5bCensus(),
          Figure5cEarnings(), Figure6aBedrooms(),    Figure6bPonoko(),
          Figure6cMutualFunds()};
}

}  // namespace briq::corpus
