#ifndef BRIQ_CORPUS_DOCUMENT_H_
#define BRIQ_CORPUS_DOCUMENT_H_

#include <string>
#include <vector>

#include "table/mention.h"
#include "table/table.h"
#include "text/tokenizer.h"

namespace briq::corpus {

/// How the generator surfaced a quantity in text relative to its table
/// value. Drives by-realization evaluation and the mention-type logic of
/// the adaptive filter.
enum class Realization {
  kExact = 0,       // same numeric value (formatting may differ)
  kApproximate,     // rounded to few significant digits, with a cue word
  kScaled,          // exact value expressed with a scale word ("3.26 billion")
  kDisplayRounded,  // derived aggregate shown at display precision ("1.5%")
};

const char* RealizationName(Realization r);

/// What a text mention refers to: a single cell or a virtual cell of some
/// aggregate function over cells of one table.
struct GroundTruthTarget {
  int table_index = 0;
  table::AggregateFunction func = table::AggregateFunction::kNone;
  std::vector<table::CellRef> cells;

  bool Matches(const table::TableMention& m) const {
    return m.table_index == table_index && m.func == func && m.cells == cells;
  }
};

/// One annotated alignment: the mention's location in the text plus its
/// target. Mentions with no target (distractors) are not listed here — the
/// mapping is partial by design (paper §II-A).
struct GroundTruthAlignment {
  int paragraph = 0;
  text::Span span;         // char range of the mention in that paragraph
  std::string surface;     // the mention text, for debugging
  GroundTruthTarget target;
  Realization realization = Realization::kExact;
};

/// A coherent document (paper §III): one or more paragraphs plus the
/// table(s) they discuss, with complete ground-truth alignments (tableS
/// style).
struct Document {
  std::string id;
  std::string domain;
  std::vector<std::string> paragraphs;
  std::vector<table::Table> tables;
  std::vector<GroundTruthAlignment> ground_truth;

  /// Count of ground-truth alignments of the given aggregate function.
  size_t CountByFunc(table::AggregateFunction f) const;
};

/// A corpus: documents plus bookkeeping.
struct Corpus {
  std::vector<Document> documents;

  size_t size() const { return documents.size(); }
};

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_DOCUMENT_H_
