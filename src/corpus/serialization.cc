#include "corpus/serialization.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace briq::corpus {

namespace {

using util::Json;

const char* FuncName(table::AggregateFunction f) {
  return table::AggregateFunctionName(f);
}

util::Result<table::AggregateFunction> FuncFromName(const std::string& name) {
  using table::AggregateFunction;
  static const std::pair<const char*, AggregateFunction> kMap[] = {
      {"single", AggregateFunction::kNone},
      {"sum", AggregateFunction::kSum},
      {"diff", AggregateFunction::kDiff},
      {"percent", AggregateFunction::kPercentage},
      {"ratio", AggregateFunction::kChangeRatio},
      {"avg", AggregateFunction::kAverage},
      {"max", AggregateFunction::kMax},
      {"min", AggregateFunction::kMin},
  };
  for (const auto& [n, f] : kMap) {
    if (name == n) return f;
  }
  return util::Status::ParseError("unknown aggregate function: " + name);
}

Json TableToJson(const table::Table& t) {
  Json rows = Json::Array();
  for (int r = 0; r < t.num_rows(); ++r) {
    Json row = Json::Array();
    for (int c = 0; c < t.num_cols(); ++c) {
      row.Append(t.cell(r, c).raw);
    }
    rows.Append(std::move(row));
  }
  Json out = Json::Object();
  out.Set("rows", std::move(rows));
  out.Set("caption", t.caption());
  out.Set("header_row", t.has_header_row());
  out.Set("header_col", t.has_header_col());
  return out;
}

util::Result<table::Table> TableFromJson(const Json& json) {
  if (!json.is_object() || !json.Has("rows")) {
    return util::Status::ParseError("table: missing rows");
  }
  std::vector<std::vector<std::string>> rows;
  for (const Json& row : json.at("rows").items()) {
    std::vector<std::string> cells;
    for (const Json& cell : row.items()) cells.push_back(cell.AsString());
    rows.push_back(std::move(cells));
  }
  table::Table t = table::Table::FromRows(std::move(rows));
  t.set_caption(json.Get("caption", Json("")).AsString());
  if (json.Get("header_row", Json(false)).AsBool()) t.set_header_row(true);
  if (json.Get("header_col", Json(false)).AsBool()) t.set_header_col(true);
  t.AnnotateQuantities();
  return t;
}

Json GroundTruthToJson(const GroundTruthAlignment& gt) {
  Json cells = Json::Array();
  for (const table::CellRef& ref : gt.target.cells) {
    Json cell = Json::Array();
    cell.Append(ref.row);
    cell.Append(ref.col);
    cells.Append(std::move(cell));
  }
  Json out = Json::Object();
  out.Set("paragraph", gt.paragraph);
  out.Set("begin", gt.span.begin);
  out.Set("end", gt.span.end);
  out.Set("surface", gt.surface);
  out.Set("table", gt.target.table_index);
  out.Set("func", FuncName(gt.target.func));
  out.Set("cells", std::move(cells));
  out.Set("realization", RealizationName(gt.realization));
  return out;
}

util::Result<GroundTruthAlignment> GroundTruthFromJson(const Json& json) {
  GroundTruthAlignment gt;
  gt.paragraph = json.at("paragraph").AsInt();
  gt.span.begin = static_cast<size_t>(json.at("begin").AsInt());
  gt.span.end = static_cast<size_t>(json.at("end").AsInt());
  gt.surface = json.at("surface").AsString();
  gt.target.table_index = json.at("table").AsInt();
  BRIQ_ASSIGN_OR_RETURN(gt.target.func,
                        FuncFromName(json.at("func").AsString()));
  for (const Json& cell : json.at("cells").items()) {
    gt.target.cells.push_back(
        table::CellRef{cell.at(size_t{0}).AsInt(), cell.at(size_t{1}).AsInt()});
  }
  const std::string real = json.Get("realization", Json("exact")).AsString();
  if (real == "approximate") gt.realization = Realization::kApproximate;
  else if (real == "scaled") gt.realization = Realization::kScaled;
  else if (real == "display_rounded") gt.realization = Realization::kDisplayRounded;
  else gt.realization = Realization::kExact;
  return gt;
}

}  // namespace

Json DocumentToJson(const Document& doc) {
  Json paragraphs = Json::Array();
  for (const std::string& p : doc.paragraphs) paragraphs.Append(p);
  Json tables = Json::Array();
  for (const table::Table& t : doc.tables) tables.Append(TableToJson(t));
  Json gts = Json::Array();
  for (const GroundTruthAlignment& gt : doc.ground_truth) {
    gts.Append(GroundTruthToJson(gt));
  }
  Json out = Json::Object();
  out.Set("id", doc.id);
  out.Set("domain", doc.domain);
  out.Set("paragraphs", std::move(paragraphs));
  out.Set("tables", std::move(tables));
  out.Set("ground_truth", std::move(gts));
  return out;
}

util::Result<Document> DocumentFromJson(const Json& json) {
  if (!json.is_object()) {
    return util::Status::ParseError("document: not an object");
  }
  Document doc;
  doc.id = json.Get("id", Json("")).AsString();
  doc.domain = json.Get("domain", Json("")).AsString();
  if (json.Has("paragraphs")) {
    for (const Json& p : json.at("paragraphs").items()) {
      doc.paragraphs.push_back(p.AsString());
    }
  }
  if (json.Has("tables")) {
    for (const Json& t : json.at("tables").items()) {
      BRIQ_ASSIGN_OR_RETURN(table::Table parsed, TableFromJson(t));
      doc.tables.push_back(std::move(parsed));
    }
  }
  if (json.Has("ground_truth")) {
    for (const Json& gt : json.at("ground_truth").items()) {
      BRIQ_ASSIGN_OR_RETURN(GroundTruthAlignment parsed,
                            GroundTruthFromJson(gt));
      doc.ground_truth.push_back(std::move(parsed));
    }
  }
  return doc;
}

Json CorpusToJson(const Corpus& corpus) {
  Json docs = Json::Array();
  for (const Document& d : corpus.documents) docs.Append(DocumentToJson(d));
  Json out = Json::Object();
  out.Set("format", "briq-corpus-v1");
  out.Set("documents", std::move(docs));
  return out;
}

util::Result<Corpus> CorpusFromJson(const Json& json) {
  if (!json.is_object() ||
      json.Get("format", Json("")).AsString() != "briq-corpus-v1") {
    return util::Status::ParseError("not a briq-corpus-v1 document");
  }
  Corpus corpus;
  for (const Json& d : json.at("documents").items()) {
    BRIQ_ASSIGN_OR_RETURN(Document doc, DocumentFromJson(d));
    corpus.documents.push_back(std::move(doc));
  }
  return corpus;
}

util::Status SaveCorpus(const Corpus& corpus, const std::string& path,
                        CorpusJsonStyle style) {
  std::ofstream out(path);
  if (!out) {
    return util::Status::NotFound("cannot open for writing: " + path);
  }
  const int indent = style == CorpusJsonStyle::kPretty ? 2 : -1;
  out << CorpusToJson(corpus).Dump(indent) << "\n";
  if (!out.good()) {
    return util::Status::Internal("write failed: " + path);
  }
  return util::Status::OK();
}

util::Result<Corpus> LoadCorpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  BRIQ_ASSIGN_OR_RETURN(Json json, Json::Parse(buffer.str()));
  return CorpusFromJson(json);
}

}  // namespace briq::corpus
