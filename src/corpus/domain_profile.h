#ifndef BRIQ_CORPUS_DOMAIN_PROFILE_H_
#define BRIQ_CORPUS_DOMAIN_PROFILE_H_

#include <string>
#include <vector>

namespace briq::corpus {

/// How values in a domain carry units.
enum class DomainUnitStyle {
  kPlainCounts,   // bare integers (health patients, politics votes)
  kCurrency,      // $ / EUR amounts
  kMixed,         // some columns currency, some percent, some plain
};

/// Per-domain generation parameters, calibrated so the generated corpus
/// reproduces the shape of the paper's Table IX (rows/columns/single
/// cells/virtual cells per domain) and the topical variety of tableL
/// (finance, environment, health, politics, sports, others).
struct DomainProfile {
  std::string name;

  // Table shape (body = non-header). Sampled uniformly in [min, max].
  int min_body_rows = 2;
  int max_body_rows = 6;
  int min_body_cols = 1;
  int max_body_cols = 4;
  /// Probability that a body cell is numeric (vs. textual annotation).
  double numeric_density = 0.95;
  /// Probability a document carries a second table (Figure-3-style
  /// ambiguity for the global-resolution stage).
  double two_table_prob = 0.2;

  // Value generation.
  double value_min = 1.0;
  double value_max = 1e6;
  int max_decimals = 0;  // cell precision in digits after the point
  DomainUnitStyle unit_style = DomainUnitStyle::kPlainCounts;
  /// Probability the table states a "(in millions)"-style caption scale.
  double caption_scale_prob = 0.0;

  // Text generation.
  int min_mentions = 3;
  int max_mentions = 7;
  int distractors_per_doc = 3;

  // Mention-type mix (normalized internally). Defaults follow the paper's
  // Table I positive-sample distribution: single-cell dominates.
  double p_single = 0.868;
  double p_sum = 0.053;
  double p_diff = 0.027;
  double p_pct = 0.023;
  double p_ratio = 0.028;

  // Realization mix for single-cell mentions.
  double p_exact = 0.55;
  double p_approx = 0.28;
  double p_scaled = 0.17;

  // --- Ambiguity / hardness knobs (phenomena of the paper's error
  // analysis, Figures 3 and 6) ---------------------------------------------
  /// Probability a cell value duplicates another value already in the same
  /// table (same-value collisions, Fig. 6a).
  double value_collision_prob = 0.22;
  /// Probability a cell of a second table duplicates a value of the first
  /// (cross-table ambiguity, Fig. 3: "11%" appears in both tables).
  double cross_table_collision_prob = 0.45;
  /// Probability a single-cell mention uses a vague sentence that names no
  /// row/column header, leaving only value + graph context.
  double vague_template_prob = 0.45;
  /// Probability a distractor exactly copies some table value (unrelated
  /// numbers that happen to match a cell).
  double distractor_exact_collision_prob = 0.35;

  // --- Messy numeric surface forms (CQE-grade lexer exercise) --------------
  /// Master switch. When false, none of the knobs below is consulted and no
  /// extra RNG draws happen, so the legacy profiles generate bit-identical
  /// corpora. Documents from messy profiles need
  /// ExtractionOptions::extended_forms to parse fully.
  bool messy_numeric_forms = false;
  double p_scientific = 0.0;    ///< "4.8392e6" / "4.8 × 10^6"
  double p_locale_sep = 0.0;    ///< European "1.234.567" text surfaces
  double p_range = 0.0;         ///< "3–4 million" bracketing the value
  double p_plus_minus = 0.0;    ///< "4.8 million ± 0.1 million"
  double p_fraction = 0.0;      ///< "2 ¾" / "2 3/4" (needs value_quantum)
  double p_unit_convert = 0.0;  ///< "(tonnes)" cell stated as kg; "12 M$"
  /// Snap cell values to multiples of this instead of rounding to
  /// max_decimals (0 keeps the legacy rounding). 0.25 makes fractions
  /// expressible; 1e4 keeps "M$" and scientific mantissas short.
  double value_quantum = 0.0;
  /// Probability a plain-counts column is a mass column: its header gains
  /// a "(<mass_header_unit>)" cue and its mentions carry mass units.
  double mass_column_prob = 0.0;
  /// Unit word for mass column headers and exact text surfaces.
  std::string mass_header_unit = "kg";

  // Vocabulary.
  std::vector<std::string> row_headers;
  std::vector<std::string> col_headers;
  std::vector<std::string> captions;
  std::vector<std::string> row_noun;  // "patients", "vehicles", ...
};

/// The five major tableL topics plus "others" (paper §VII-A).
const std::vector<DomainProfile>& AllDomainProfiles();

/// Profile by name; check-fails on unknown names.
const DomainProfile& GetDomainProfile(const std::string& name);

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_DOMAIN_PROFILE_H_
