#include "corpus/perturb.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>

#include "quantity/numeric_literal.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace briq::corpus {

const char* PerturbModeName(PerturbMode mode) {
  switch (mode) {
    case PerturbMode::kNone:
      return "original";
    case PerturbMode::kTruncate:
      return "truncated";
    case PerturbMode::kRound:
      return "rounded";
  }
  return "?";
}

namespace {

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Perturbs the digit string `digits` (no separators) with an optional
// decimal point, per the mode. Examples (truncate / round):
//   "6746" -> "6740" / "6750";  "2.74" -> "2.7" / "2.7";
//   "0.19" -> "0.1" / "0.2".
std::string PerturbDigits(const std::string& digits, PerturbMode mode) {
  auto dot = digits.find('.');
  if (dot != std::string::npos && dot + 1 < digits.size()) {
    // Decimal: operate on the last fractional digit.
    std::string head = digits.substr(0, digits.size() - 1);
    if (mode == PerturbMode::kTruncate) {
      if (head.back() == '.') head.pop_back();  // "2.7" -> drop to "2"? No:
      // "2.74" head="2.7" fine; "2.7" head="2." -> "2".
      return head;
    }
    // Round: use numeric rounding at one fewer decimal. The digit run goes
    // through the quantity lexer's literal parser rather than raw strtod,
    // so grouping edge cases stay consistent with extraction.
    int decimals = static_cast<int>(digits.size() - dot - 1) - 1;
    double v = quantity::ParseNumericLiteral(digits)
                   .value_or(quantity::NumericLiteral{})
                   .value;
    double mag = std::pow(10.0, decimals);
    double rounded = std::round(v * mag) / mag;
    return util::FormatDouble(rounded, std::max(decimals, 0));
  }
  // Integer: zero out / round the last digit.
  std::string out = digits;
  size_t last = out.size() - 1;
  if (mode == PerturbMode::kTruncate) {
    out[last] = '0';
    return out;
  }
  double v = quantity::ParseNumericLiteral(out)
                 .value_or(quantity::NumericLiteral{})
                 .value;
  double rounded = std::round(v / 10.0) * 10.0;
  return util::FormatDouble(rounded, 0);
}

}  // namespace

std::string PerturbSurface(const std::string& surface, PerturbMode mode) {
  if (mode == PerturbMode::kNone) return surface;

  // Locate the first maximal digit run (with internal separators/decimal
  // point) in the surface.
  size_t start = std::string::npos;
  size_t end = 0;
  for (size_t i = 0; i < surface.size(); ++i) {
    if (IsDigit(surface[i])) {
      start = i;
      size_t j = i + 1;
      while (j < surface.size() &&
             (IsDigit(surface[j]) ||
              ((surface[j] == ',' || surface[j] == '.') && j + 1 < surface.size() &&
               IsDigit(surface[j + 1])))) {
        ++j;
      }
      end = j;
      break;
    }
  }
  if (start == std::string::npos) return surface;

  std::string number = surface.substr(start, end - start);
  // Strip thousands separators but keep one decimal point: assume US style
  // (commas group) since the generator emits US style.
  std::string digits;
  for (char c : number) {
    if (c != ',') digits.push_back(c);
  }
  std::string perturbed = PerturbDigits(digits, mode);

  // Reinstate separators if the original used them and the result is an
  // integer string of length > 3.
  if (number.find(',') != std::string::npos &&
      perturbed.find('.') == std::string::npos) {
    int64_t v = std::strtoll(perturbed.c_str(), nullptr, 10);
    perturbed = util::WithThousandsSeparators(v);
  }
  return surface.substr(0, start) + perturbed + surface.substr(end);
}

Document PerturbDocument(const Document& doc, PerturbMode mode) {
  if (mode == PerturbMode::kNone) return doc;
  Document out = doc;

  // Group ground-truth mentions by paragraph, ordered by position.
  for (size_t p = 0; p < out.paragraphs.size(); ++p) {
    std::vector<GroundTruthAlignment*> mentions;
    for (auto& gt : out.ground_truth) {
      if (static_cast<size_t>(gt.paragraph) == p) mentions.push_back(&gt);
    }
    std::sort(mentions.begin(), mentions.end(),
              [](const auto* a, const auto* b) {
                return a->span.begin < b->span.begin;
              });

    const std::string& old_text = out.paragraphs[p];
    std::string new_text;
    size_t cursor = 0;
    for (GroundTruthAlignment* gt : mentions) {
      BRIQ_CHECK(gt->span.begin >= cursor && gt->span.end <= old_text.size())
          << "overlapping or out-of-range ground-truth spans";
      new_text.append(old_text, cursor, gt->span.begin - cursor);
      std::string perturbed = PerturbSurface(gt->surface, mode);
      text::Span new_span{new_text.size(), new_text.size() + perturbed.size()};
      new_text += perturbed;
      cursor = gt->span.end;
      gt->span = new_span;
      gt->surface = std::move(perturbed);
    }
    new_text.append(old_text, cursor, old_text.size() - cursor);
    out.paragraphs[p] = std::move(new_text);
  }
  return out;
}

Corpus PerturbCorpus(const Corpus& corpus, PerturbMode mode) {
  Corpus out;
  out.documents.reserve(corpus.documents.size());
  for (const Document& d : corpus.documents) {
    out.documents.push_back(PerturbDocument(d, mode));
  }
  return out;
}

}  // namespace briq::corpus
