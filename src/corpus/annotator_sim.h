#ifndef BRIQ_CORPUS_ANNOTATOR_SIM_H_
#define BRIQ_CORPUS_ANNOTATOR_SIM_H_

#include <cstdint>
#include <vector>

#include "corpus/document.h"

namespace briq::corpus {

/// Fleiss' kappa for inter-annotator agreement [Fleiss 1971]. `ratings` is
/// a subjects x categories matrix of assignment counts; every row must sum
/// to the same number of raters (>= 2). Returns 1 for perfect agreement,
/// ~0 for chance-level agreement.
double FleissKappa(const std::vector<std::vector<int>>& ratings);

/// Simulation of the paper's ground-truth construction (§VII-A): 8 hired
/// annotators judge candidate mention pairs and classify them by type;
/// pairs confirmed by at least `min_agreement` annotators are kept.
struct AnnotatorSimOptions {
  int num_annotators = 8;
  /// Probability an annotator mislabels a pair (drawing a random wrong
  /// category). Calibrated so kappa lands near the paper's 0.6854.
  double error_rate = 0.12;
  int min_agreement = 2;
  uint64_t seed = 99;
};

struct AnnotationOutcome {
  double fleiss_kappa = 0.0;
  size_t pairs_judged = 0;
  size_t pairs_kept = 0;
  size_t pairs_dropped = 0;
  /// The corpus with ground truth filtered to kept pairs.
  Corpus annotated;
};

/// Runs the simulated annotation over all ground-truth pairs (plus an
/// equal number of unrelated decoy pairs so the "unrelated" category is
/// populated) and filters the corpus to agreed pairs.
AnnotationOutcome SimulateAnnotation(const Corpus& corpus,
                                     const AnnotatorSimOptions& options = {});

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_ANNOTATOR_SIM_H_
