#ifndef BRIQ_CORPUS_PAPER_EXAMPLES_H_
#define BRIQ_CORPUS_PAPER_EXAMPLES_H_

#include <vector>

#include "corpus/document.h"

namespace briq::corpus {

/// Hand-built replicas of the paper's running examples, with ground-truth
/// alignments as the paper describes them. Used by the figure benches, the
/// integration tests, and the example programs.

/// Figure 1a — health: drug-trial side effects; "total of 123 patients"
/// refers to the sum of the total column.
Document Figure1aHealth();

/// Figure 1b — environment: electric-car comparison (rotated table);
/// "37K EUR" approximately matches cell 36900.
Document Figure1bEnvironment();

/// Figure 1c — finance: income statement "(in Mio)"; "$3.26 billion CDN",
/// "up $70 million", "increased by 1.5%" (change ratio over 890/876).
Document Figure1cFinance();

/// Figure 3 — coupled quantities: two tables where "11%" and "13.3%" are
/// ambiguous in isolation; "60 bps" and "5%" pin everything to Table 1.
Document Figure3CoupledQuantities();

/// Figure 5a — detected change ratio (car sales, +33.65%).
Document Figure5aCarSales();

/// Figure 5b — detected percentages (census, 49.2% male).
Document Figure5bCensus();

/// Figure 5c — detected difference (net earnings fell $16.3 million).
Document Figure5cEarnings();

/// Figure 6a — error case: same-value collision ("3.2" in two cells of a
/// row with near-identical contexts).
Document Figure6aBedrooms();

/// Figure 6b — error case: high ambiguity ("$50" wholesale vs retail).
Document Figure6bPonoko();

/// Figure 6c — error case: scale missing in the table (values in billions
/// shown bare).
Document Figure6cMutualFunds();

/// All ten example documents, in figure order.
std::vector<Document> AllPaperExamples();

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_PAPER_EXAMPLES_H_
