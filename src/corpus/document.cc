#include "corpus/document.h"

namespace briq::corpus {

const char* RealizationName(Realization r) {
  switch (r) {
    case Realization::kExact:
      return "exact";
    case Realization::kApproximate:
      return "approximate";
    case Realization::kScaled:
      return "scaled";
    case Realization::kDisplayRounded:
      return "display_rounded";
  }
  return "?";
}

size_t Document::CountByFunc(table::AggregateFunction f) const {
  size_t n = 0;
  for (const auto& gt : ground_truth) {
    if (gt.target.func == f) ++n;
  }
  return n;
}

}  // namespace briq::corpus
