#include "corpus/domain_profile.h"

#include "util/logging.h"

namespace briq::corpus {

namespace {

DomainProfile MakeFinance() {
  DomainProfile p;
  p.name = "finance";
  p.min_body_rows = 4;
  p.max_body_rows = 8;
  p.min_body_cols = 2;
  p.max_body_cols = 4;
  p.numeric_density = 0.8;
  p.two_table_prob = 0.45;
  p.value_min = 50;
  p.value_max = 9e6;
  p.max_decimals = 0;
  p.unit_style = DomainUnitStyle::kCurrency;
  p.caption_scale_prob = 0.35;
  p.row_headers = {"Total Revenue", "Gross income", "Income taxes",
                   "Net income",    "Operating costs", "Segment Profit",
                   "Sales",         "Segment Margin",  "EBITDA",
                   "Cash flow",     "Dividends",       "Net Earnings",
                   "R&D spending",  "Marketing costs", "Interest expense"};
  p.col_headers = {"2011", "2012", "2013", "2014", "Q1",   "Q2",
                   "Q3",   "Q4",   "2Q 2012", "2Q 2013", "YTD 2004",
                   "YTD 2005", "FY 2012", "FY 2013"};
  p.captions = {"Income gains", "Transportation Systems",
                "Automation & Control", "Quarterly results",
                "Consolidated statement", "Mutual fund inflows"};
  p.row_noun = {"segments", "quarters", "divisions", "funds"};
  return p;
}

DomainProfile MakeEnvironment() {
  DomainProfile p;
  p.name = "environment";
  p.min_body_rows = 5;
  p.max_body_rows = 8;
  p.min_body_cols = 3;
  p.max_body_cols = 5;
  p.numeric_density = 0.92;
  p.two_table_prob = 0.3;
  p.value_min = 0;
  p.value_max = 60000;
  p.max_decimals = 1;
  p.unit_style = DomainUnitStyle::kMixed;
  p.row_headers = {"German MSRP",    "American MSRP",  "Emission",
                   "Fuel Economy",   "Final rating",   "Range",
                   "Battery capacity", "Charge time",  "CO2 footprint",
                   "Energy consumption", "Recycling rate", "Water usage",
                   "Solar output",   "Wind output",    "Waste produced"};
  p.col_headers = {"Focus E", "A3 e-tron", "VW Golf", "Model 3", "Leaf",
                   "i3",      "Prius",     "Bolt",    "Zoe",     "Kona"};
  p.captions = {"Electric vehicle comparison", "Emission statistics",
                "Renewable energy output", "Car efficiency ratings"};
  p.row_noun = {"vehicles", "models", "plants", "regions"};
  return p;
}

DomainProfile MakeHealth() {
  DomainProfile p;
  p.name = "health";
  p.min_body_rows = 2;
  p.max_body_rows = 4;
  p.min_body_cols = 1;
  p.max_body_cols = 3;
  p.numeric_density = 0.97;
  p.two_table_prob = 0.35;
  p.value_min = 1;
  p.value_max = 500;
  p.max_decimals = 0;
  p.unit_style = DomainUnitStyle::kPlainCounts;
  p.row_headers = {"Rash",        "Depression", "Hypertension", "Nausea",
                   "Eye Disorders", "Headache", "Fatigue",      "Insomnia",
                   "Dizziness",   "Fever",      "Anemia",       "Migraine"};
  p.col_headers = {"male", "female", "total", "placebo", "treated",
                   "week 1", "week 4", "cohort A", "cohort B"};
  p.captions = {"Reported side effects", "Drug trial outcomes",
                "Patient statistics", "Clinical observations"};
  p.row_noun = {"patients", "participants", "subjects", "cases"};
  return p;
}

DomainProfile MakePolitics() {
  DomainProfile p;
  p.name = "politics";
  p.min_body_rows = 5;
  p.max_body_rows = 9;
  p.min_body_cols = 1;
  p.max_body_cols = 3;
  p.numeric_density = 0.88;
  p.two_table_prob = 0.3;
  p.value_min = 100;
  p.value_max = 2e7;
  p.max_decimals = 0;
  p.unit_style = DomainUnitStyle::kPlainCounts;
  p.row_headers = {"Labor Party",  "Green Party",  "Liberal Party",
                   "Conservatives", "Independents", "Socialists",
                   "Democrats",    "Republicans",  "National Front",
                   "Centre Party", "Reform Party", "Unity Party"};
  p.col_headers = {"votes", "seats", "2016", "2020", "registered",
                   "turnout", "district A", "district B"};
  p.captions = {"Election results", "Parliamentary seats",
                "Voter registration", "Referendum outcome"};
  p.row_noun = {"votes", "voters", "ballots", "constituencies"};
  return p;
}

DomainProfile MakeSports() {
  DomainProfile p;
  p.name = "sports";
  p.min_body_rows = 6;
  p.max_body_rows = 9;
  p.min_body_cols = 4;
  p.max_body_cols = 6;
  p.numeric_density = 0.95;
  p.two_table_prob = 0.4;
  p.value_min = 0;
  p.value_max = 120;
  p.max_decimals = 0;
  p.unit_style = DomainUnitStyle::kPlainCounts;
  p.row_headers = {"United",   "City",     "Rovers",  "Athletic", "Wanderers",
                   "Rangers",  "Albion",   "County",  "Town",     "Harriers",
                   "Dynamo",   "Olympic",  "Racing",  "Sporting"};
  p.col_headers = {"played", "won", "drawn", "lost", "goals", "points",
                   "home",   "away", "season", "streak"};
  p.captions = {"League standings", "Season statistics",
                "Tournament results", "Player records"};
  p.row_noun = {"matches", "games", "teams", "players"};
  return p;
}

DomainProfile MakeOthers() {
  DomainProfile p;
  p.name = "others";
  p.min_body_rows = 4;
  p.max_body_rows = 8;
  p.min_body_cols = 2;
  p.max_body_cols = 5;
  p.numeric_density = 0.9;
  p.two_table_prob = 0.35;
  p.value_min = 1;
  p.value_max = 1e5;
  p.max_decimals = 1;
  p.unit_style = DomainUnitStyle::kMixed;
  p.row_headers = {"1 bedroom",  "2 bedrooms", "3 bedrooms", "4 bedrooms",
                   "Making cost", "Materials",  "Shipping",  "Packaging",
                   "Downloads",  "Installs",   "Page views", "Sessions",
                   "Enrollment", "Graduates"};
  p.col_headers = {"count", "share", "Queensland", "Australia", "region",
                   "total", "2019",  "2020",       "units"};
  p.captions = {"Household statistics", "Cost breakdown",
                "Usage metrics", "Census summary"};
  p.row_noun = {"dwellings", "items", "users", "households"};
  return p;
}

// Messy-surface profiles: not part of the default corpus weights, so the
// legacy corpus stays bit-identical. They exercise the extended lexer
// (scientific notation, locale separators, ranges, ±, fractions) and the
// dimensioned unit system (tonne cells vs kg text, M$ vs $).

DomainProfile MakeResearch() {
  DomainProfile p;
  p.name = "research";
  p.min_body_rows = 4;
  p.max_body_rows = 7;
  p.min_body_cols = 2;
  p.max_body_cols = 4;
  p.numeric_density = 0.92;
  p.two_table_prob = 0.25;
  p.value_min = 1;
  p.value_max = 400;
  p.max_decimals = 2;
  p.unit_style = DomainUnitStyle::kPlainCounts;
  p.messy_numeric_forms = true;
  p.p_range = 0.12;
  p.p_plus_minus = 0.18;
  p.p_fraction = 0.25;
  p.p_unit_convert = 0.2;
  p.value_quantum = 0.25;
  p.mass_column_prob = 0.5;
  p.mass_header_unit = "tonnes";
  p.row_headers = {"Sample mass",   "Catalyst load", "Feedstock",
                   "Reaction yield", "Residue",      "Throughput",
                   "Solvent used",  "Dry weight",    "Batch output",
                   "Waste stream",  "Recovered material", "Input charge"};
  p.col_headers = {"Run 1", "Run 2", "Run 3", "Batch A", "Batch B",
                   "Pilot", "Scale-up", "Baseline", "Control"};
  p.captions = {"Experimental measurements", "Lab bench results",
                "Pilot plant data", "Assay summary"};
  p.row_noun = {"samples", "runs", "batches", "assays"};
  return p;
}

DomainProfile MakeMarkets() {
  DomainProfile p;
  p.name = "markets";
  p.min_body_rows = 4;
  p.max_body_rows = 8;
  p.min_body_cols = 2;
  p.max_body_cols = 4;
  p.numeric_density = 0.85;
  p.two_table_prob = 0.35;
  p.value_min = 2e6;
  p.value_max = 5e9;
  p.max_decimals = 0;
  p.unit_style = DomainUnitStyle::kCurrency;
  p.messy_numeric_forms = true;
  p.p_scientific = 0.15;
  p.p_locale_sep = 0.3;
  p.p_range = 0.15;
  p.p_plus_minus = 0.08;
  p.p_unit_convert = 0.2;
  // Million-grid values keep "M$", scientific mantissas, and the legacy
  // scale words all exactly expressible.
  p.value_quantum = 1e6;
  p.row_headers = {"Revenue",        "Order intake",  "Backlog",
                   "Exports",        "Net debt",      "Capex",
                   "Free cash flow", "Licensing income", "Services revenue",
                   "Hardware revenue", "Subscriptions", "Operating profit"};
  p.col_headers = {"FY 2016", "FY 2017", "H1",       "H2",
                   "Group",   "Europe",  "Americas", "Asia"};
  p.captions = {"Group results", "Regional breakdown",
                "Annual report figures", "Segment revenue"};
  p.row_noun = {"segments", "regions", "units"};
  return p;
}

}  // namespace

const std::vector<DomainProfile>& AllDomainProfiles() {
  static const auto& kProfiles = *new std::vector<DomainProfile>{
      MakeEnvironment(), MakeFinance(), MakeHealth(),  MakePolitics(),
      MakeSports(),      MakeOthers(),  MakeResearch(), MakeMarkets()};
  return kProfiles;
}

const DomainProfile& GetDomainProfile(const std::string& name) {
  for (const DomainProfile& p : AllDomainProfiles()) {
    if (p.name == name) return p;
  }
  BRIQ_CHECK(false) << "unknown domain: " << name;
  return AllDomainProfiles().front();  // unreachable
}

}  // namespace briq::corpus
