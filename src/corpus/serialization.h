#ifndef BRIQ_CORPUS_SERIALIZATION_H_
#define BRIQ_CORPUS_SERIALIZATION_H_

#include <string>

#include "corpus/document.h"
#include "util/json.h"
#include "util/result.h"

namespace briq::corpus {

/// JSON (de)serialization for documents and corpora, so generated datasets
/// and annotations can be stored, diffed, and exchanged with other tools.
/// The format is stable and human-readable: tables as row-major string
/// arrays with header flags, ground truth as (paragraph, span, target)
/// records.

util::Json DocumentToJson(const Document& doc);
util::Result<Document> DocumentFromJson(const util::Json& json);

util::Json CorpusToJson(const Corpus& corpus);
util::Result<Corpus> CorpusFromJson(const util::Json& json);

/// On-disk flavor of a single-file corpus: pretty-printed for diffable
/// fixtures (the historical default), compact single-line for bulk data.
enum class CorpusJsonStyle { kPretty, kCompact };

/// File round trip. Load accepts either style.
util::Status SaveCorpus(const Corpus& corpus, const std::string& path,
                        CorpusJsonStyle style = CorpusJsonStyle::kPretty);
util::Result<Corpus> LoadCorpus(const std::string& path);

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_SERIALIZATION_H_
