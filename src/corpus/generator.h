#ifndef BRIQ_CORPUS_GENERATOR_H_
#define BRIQ_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/document.h"
#include "corpus/domain_profile.h"
#include "util/random.h"

namespace briq::corpus {

/// Options for synthetic corpus generation (the DWTC/Common-Crawl
/// substitution; see DESIGN.md §2).
struct CorpusOptions {
  size_t num_documents = 200;
  uint64_t seed = 7;
  /// Domains to draw from with relative weights. Defaults follow the
  /// per-domain document proportions of the paper's Table VIII.
  std::vector<std::pair<std::string, double>> domain_weights = {
      {"environment", 0.074}, {"finance", 0.253}, {"health", 0.066},
      {"politics", 0.207},    {"sports", 0.163},  {"others", 0.236}};
};

/// Generates one document of the given domain. Deterministic in `*rng`.
/// The document's tables are header-marked and quantity-annotated; the
/// narrative paragraphs reference cells and aggregates with exact /
/// approximate / scaled surface forms, plus distractor quantities, and
/// `ground_truth` records every alignment with exact character spans.
Document GenerateDocument(const DomainProfile& profile, const std::string& id,
                          util::Rng* rng);

/// Generates a whole corpus.
Corpus GenerateCorpus(const CorpusOptions& options);

/// Renders a document as a self-contained HTML page (paragraphs as <p>,
/// tables as <table> with th headers and caption), for exercising the
/// html module end to end on generator output.
std::string RenderHtml(const Document& doc);

/// DWTC-style tableL selection filter (paper §VII-A): table(s) with
/// numerical cells, numerical mentions in the text, and token overlap
/// between table and text.
bool PassesCorpusFilter(const Document& doc);

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_GENERATOR_H_
