#ifndef BRIQ_CORPUS_SHARD_IO_H_
#define BRIQ_CORPUS_SHARD_IO_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/document.h"
#include "util/result.h"

namespace briq::corpus {

/// Sharded on-disk corpus format ("briq-shard-v1") for out-of-core
/// pipelines. A corpus is split into numbered JSONL files
///
///     <stem>-00000.jsonl, <stem>-00001.jsonl, ...
///
/// whose first line is a compact JSON header
///
///     {"format": "briq-shard-v1", "shard_index": k,
///      "first_document_index": o, "num_documents": n, "checksum": "<hex>"}
///
/// followed by exactly `n` lines, one compact JSON document each (the same
/// document schema as serialization.h). The checksum is FNV-1a 64 over the
/// document lines, so truncation, concatenation mistakes, and byte-level
/// corruption are all detected at read time; `first_document_index` makes
/// every shard self-describing about its position in the corpus, which the
/// streaming aligner uses to key results by global document index.
///
/// Readers stream line by line: peak memory is one document (plus stdio
/// buffers), never the shard, never the corpus.

/// Incremental FNV-1a 64-bit hash; pass the previous return value as
/// `state` to chain calls. Exposed for tests.
uint64_t Fnv1a64(std::string_view data,
                 uint64_t state = 14695981039346656037ull);

/// Parsed shard header.
struct ShardHeader {
  int shard_index = 0;
  size_t first_document_index = 0;
  size_t num_documents = 0;
  uint64_t checksum = 0;
};

/// Splits a corpus into shards of at most `shard_size` documents while it
/// is appended to, writing each shard as soon as it fills. Usage:
///
///     ShardWriter writer(dir, "corpus", /*shard_size=*/128);
///     for (const Document& d : stream) BRIQ_RETURN_IF_ERROR(writer.Add(d));
///     BRIQ_RETURN_IF_ERROR(writer.Finish());
class ShardWriter {
 public:
  /// `shard_size` < 1 is clamped to 1. The directory must exist.
  ShardWriter(std::string directory, std::string stem, size_t shard_size);

  /// Buffers one document, flushing a full shard to disk transparently.
  util::Status Add(const Document& doc);

  /// Flushes the final partial shard. Idempotent; Add must not be called
  /// afterwards.
  util::Status Finish();

  size_t num_documents() const { return num_documents_; }
  const std::vector<std::string>& shard_paths() const { return paths_; }

 private:
  util::Status FlushShard();

  std::string directory_;
  std::string stem_;
  size_t shard_size_;
  std::vector<std::string> pending_lines_;  // current shard, compact JSON
  std::vector<std::string> paths_;
  size_t num_documents_ = 0;
  bool finished_ = false;
};

/// Path of shard `index` under `directory`/`stem` (the writer's naming
/// scheme, exposed so tools and tests can address individual shards).
std::string ShardPath(const std::string& directory, const std::string& stem,
                      int index);

/// Lists the shard files of a sharded corpus in index order and verifies
/// the numbering is contiguous from 0. A missing directory, no matching
/// shard, or a gap in the numbering is an error.
util::Result<std::vector<std::string>> ListShards(
    const std::string& directory, const std::string& stem);

/// Reads and parses only the header line of shard file `path`, without
/// touching the document lines.
util::Result<ShardHeader> ReadShardHeader(const std::string& path);

/// Total number of documents a sharded corpus declares, summed from the
/// shard headers alone (no document parsing, no checksum scan — O(shards)
/// I/O). Verifies that `first_document_index` chains contiguously across
/// shards. `briq_tool train` uses this to compute its train split without
/// a full corpus pass.
util::Result<size_t> CountShardedDocuments(const std::string& directory,
                                           const std::string& stem);

/// Streams the documents of a single shard file, verifying the header on
/// open and count + checksum at end-of-shard.
class ShardReader {
 public:
  static util::Result<ShardReader> Open(const std::string& path);

  /// Next document, or std::nullopt at (verified) end-of-shard. Truncated
  /// input, trailing garbage, and checksum mismatches surface here as
  /// descriptive errors.
  util::Result<std::optional<Document>> Next();

  const ShardHeader& header() const { return header_; }
  const std::string& path() const { return path_; }

 private:
  ShardReader() = default;

  std::string path_;
  std::ifstream in_;
  ShardHeader header_;
  size_t docs_read_ = 0;
  uint64_t running_checksum_ = 0;
  bool done_ = false;
};

/// Streams a whole sharded corpus in document order, opening one shard at
/// a time and verifying that shard metadata (indices, document offsets)
/// is mutually consistent.
class ShardedCorpusReader {
 public:
  static util::Result<ShardedCorpusReader> Open(const std::string& directory,
                                                const std::string& stem);

  /// Opens the contiguous shard range [shard_begin, shard_end). Document
  /// indices stay GLOBAL (seeded from the begin shard's
  /// first_document_index), so a fleet of range readers partitions the
  /// corpus without renumbering — worker K's results key by the same
  /// document indices a single-process run would use. shard_end past the
  /// last shard clamps; an empty or inverted range is an error.
  static util::Result<ShardedCorpusReader> Open(const std::string& directory,
                                                const std::string& stem,
                                                size_t shard_begin,
                                                size_t shard_end);

  /// Next document, or std::nullopt after the last shard of the range is
  /// exhausted.
  util::Result<std::optional<Document>> Next();

  /// Global index of the next document Next() would return.
  size_t next_document_index() const { return next_document_index_; }
  /// Shards in the opened range (the whole corpus for the 2-arg Open).
  size_t num_shards() const { return end_shard_ - begin_shard_; }

 private:
  ShardedCorpusReader() = default;

  std::vector<std::string> shard_paths_;
  size_t begin_shard_ = 0;
  size_t next_shard_ = 0;
  size_t end_shard_ = 0;
  std::optional<ShardReader> current_;
  size_t next_document_index_ = 0;
};

/// Writes `corpus` as shards of at most `shard_size` documents; returns
/// the shard paths.
util::Result<std::vector<std::string>> WriteCorpusShards(
    const Corpus& corpus, const std::string& directory,
    const std::string& stem, size_t shard_size);

/// Reads a sharded corpus fully into memory (convenience for tools and
/// tests; the streaming paths never need the whole corpus at once).
util::Result<Corpus> LoadShardedCorpus(const std::string& directory,
                                       const std::string& stem);

}  // namespace briq::corpus

#endif  // BRIQ_CORPUS_SHARD_IO_H_
