#include "corpus/shard_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "corpus/serialization.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/json.h"

namespace briq::corpus {

namespace {

namespace fs = std::filesystem;

/// Shard-layer instruments (DESIGN.md §5d): read/parse latency per
/// document line, plus lifetime totals for opened shards, documents, and
/// checksum failures.
obs::Histogram* ShardParseSeconds() {
  static obs::Histogram* histogram =
      obs::MetricRegistry::Global().GetHistogram(
          "briq.shard.parse_seconds", obs::DefaultLatencyBuckets());
  return histogram;
}

obs::Counter* ShardsOpenedCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.shard.shards_opened");
  return counter;
}

obs::Counter* DocsReadCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.shard.docs_read");
  return counter;
}

obs::Counter* ChecksumFailuresCounter() {
  static obs::Counter* counter = obs::MetricRegistry::Global().GetCounter(
      "briq.shard.checksum_failures");
  return counter;
}

obs::Counter* ShardsWrittenCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.shard.shards_written");
  return counter;
}

obs::Counter* DocsWrittenCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.shard.docs_written");
  return counter;
}

constexpr char kShardFormat[] = "briq-shard-v1";

std::string ChecksumHex(uint64_t checksum) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

/// Folds one document line (plus a terminating newline, so line boundaries
/// are part of the hash) into the running shard checksum.
uint64_t FoldLine(uint64_t state, std::string_view line) {
  state = Fnv1a64(line, state);
  return Fnv1a64("\n", state);
}

util::Result<ShardHeader> ParseShardHeader(const std::string& line,
                                           const std::string& path) {
  auto json = util::Json::Parse(line);
  if (!json.ok()) {
    return util::Status::ParseError("shard header is not valid JSON: " + path +
                                    " (" + json.status().message() + ")");
  }
  if (!json->is_object() ||
      json->Get("format", util::Json("")).AsString() != kShardFormat) {
    return util::Status::ParseError("not a " + std::string(kShardFormat) +
                                    " header: " + path);
  }
  for (const char* key :
       {"shard_index", "first_document_index", "num_documents", "checksum"}) {
    if (!json->Has(key)) {
      return util::Status::ParseError("shard header is missing '" +
                                      std::string(key) + "': " + path);
    }
  }
  ShardHeader header;
  header.shard_index = json->at("shard_index").AsInt();
  header.first_document_index =
      static_cast<size_t>(json->at("first_document_index").AsInt());
  header.num_documents = static_cast<size_t>(json->at("num_documents").AsInt());
  const std::string& hex = json->at("checksum").AsString();
  char* end = nullptr;
  header.checksum = std::strtoull(hex.c_str(), &end, 16);
  if (hex.empty() || end != hex.c_str() + hex.size()) {
    return util::Status::ParseError("shard header checksum is not a hex " +
                                    std::string("string: ") + path);
  }
  return header;
}

}  // namespace

uint64_t Fnv1a64(std::string_view data, uint64_t state) {
  // Delegates to the shared util implementation so the shard format and the
  // binary sample file (util/sample_file.h) provably use the same hash.
  return util::Fnv1a64(data, state);
}

// --- ShardWriter ------------------------------------------------------------

ShardWriter::ShardWriter(std::string directory, std::string stem,
                         size_t shard_size)
    : directory_(std::move(directory)),
      stem_(std::move(stem)),
      shard_size_(shard_size < 1 ? 1 : shard_size) {}

util::Status ShardWriter::Add(const Document& doc) {
  if (finished_) {
    return util::Status::FailedPrecondition(
        "ShardWriter::Add after Finish: " + directory_ + "/" + stem_);
  }
  pending_lines_.push_back(DocumentToJson(doc).Dump(/*indent=*/-1));
  ++num_documents_;
  if (pending_lines_.size() >= shard_size_) return FlushShard();
  return util::Status::OK();
}

util::Status ShardWriter::Finish() {
  if (finished_) return util::Status::OK();
  finished_ = true;
  if (!pending_lines_.empty()) return FlushShard();
  return util::Status::OK();
}

util::Status ShardWriter::FlushShard() {
  const std::string path =
      ShardPath(directory_, stem_, static_cast<int>(paths_.size()));
  std::ofstream out(path);
  if (!out) {
    return util::Status::NotFound("cannot open shard for writing: " + path);
  }

  uint64_t checksum = Fnv1a64("");  // FNV offset basis
  for (const std::string& line : pending_lines_) {
    checksum = FoldLine(checksum, line);
  }

  util::Json header = util::Json::Object();
  header.Set("format", kShardFormat);
  header.Set("shard_index", static_cast<int>(paths_.size()));
  header.Set("first_document_index", num_documents_ - pending_lines_.size());
  header.Set("num_documents", pending_lines_.size());
  header.Set("checksum", ChecksumHex(checksum));
  out << header.Dump(/*indent=*/-1) << "\n";
  for (const std::string& line : pending_lines_) out << line << "\n";
  if (!out.good()) {
    return util::Status::Internal("shard write failed: " + path);
  }
  ShardsWrittenCounter()->Add();
  DocsWrittenCounter()->Add(pending_lines_.size());
  paths_.push_back(path);
  pending_lines_.clear();
  return util::Status::OK();
}

// --- Shard discovery --------------------------------------------------------

std::string ShardPath(const std::string& directory, const std::string& stem,
                      int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%05d", index);
  return (fs::path(directory) / (stem + "-" + buf + ".jsonl")).string();
}

util::Result<std::vector<std::string>> ListShards(const std::string& directory,
                                                  const std::string& stem) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return util::Status::NotFound("shard directory not found: " + directory);
  }
  const std::string prefix = stem + "-";
  const std::string suffix = ".jsonl";
  std::vector<std::pair<int, std::string>> found;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    found.emplace_back(std::atoi(digits.c_str()), entry.path().string());
  }
  if (found.empty()) {
    return util::Status::NotFound("no " + prefix + "*.jsonl shards in: " +
                                  directory);
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (size_t i = 0; i < found.size(); ++i) {
    if (found[i].first != static_cast<int>(i)) {
      return util::Status::NotFound(
          "missing shard file: expected " +
          ShardPath(directory, stem, static_cast<int>(i)) + " but found " +
          found[i].second);
    }
    paths.push_back(found[i].second);
  }
  return paths;
}

util::Result<ShardHeader> ReadShardHeader(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open shard: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::ParseError("empty shard file (missing header): " +
                                    path);
  }
  return ParseShardHeader(line, path);
}

util::Result<size_t> CountShardedDocuments(const std::string& directory,
                                           const std::string& stem) {
  BRIQ_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                        ListShards(directory, stem));
  size_t total = 0;
  for (size_t i = 0; i < paths.size(); ++i) {
    BRIQ_ASSIGN_OR_RETURN(ShardHeader header, ReadShardHeader(paths[i]));
    if (header.first_document_index != total) {
      return util::Status::ParseError(
          "shard declares first_document_index " +
          std::to_string(header.first_document_index) +
          " but the corpus has " + std::to_string(total) +
          " documents before it: " + paths[i]);
    }
    total += header.num_documents;
  }
  return total;
}

// --- ShardReader ------------------------------------------------------------

util::Result<ShardReader> ShardReader::Open(const std::string& path) {
  ShardReader reader;
  reader.path_ = path;
  reader.in_.open(path);
  if (!reader.in_) {
    return util::Status::NotFound("cannot open shard: " + path);
  }
  std::string line;
  if (!std::getline(reader.in_, line)) {
    return util::Status::ParseError("empty shard file (missing header): " +
                                    path);
  }
  BRIQ_ASSIGN_OR_RETURN(reader.header_, ParseShardHeader(line, path));
  reader.running_checksum_ = Fnv1a64("");
  ShardsOpenedCounter()->Add();
  // Touch the failure counter so snapshots report an explicit zero; a
  // dashboard must see "0 failures", not a missing series.
  ChecksumFailuresCounter();
  return reader;
}

util::Result<std::optional<Document>> ShardReader::Next() {
  if (done_) return std::optional<Document>();
  obs::ScopedTimer timer(ShardParseSeconds());
  std::string line;
  if (!std::getline(in_, line)) {
    done_ = true;
    if (docs_read_ < header_.num_documents) {
      return util::Status::ParseError(
          "shard truncated: header declares " +
          std::to_string(header_.num_documents) + " documents, found " +
          std::to_string(docs_read_) + ": " + path_);
    }
    if (running_checksum_ != header_.checksum) {
      ChecksumFailuresCounter()->Add();
      return util::Status::ParseError(
          "shard checksum mismatch: header says " +
          ChecksumHex(header_.checksum) + ", content hashes to " +
          ChecksumHex(running_checksum_) + ": " + path_);
    }
    return std::optional<Document>();
  }
  if (docs_read_ >= header_.num_documents) {
    done_ = true;
    return util::Status::ParseError(
        "shard has trailing data beyond the " +
        std::to_string(header_.num_documents) +
        " documents its header declares: " + path_);
  }
  running_checksum_ = FoldLine(running_checksum_, line);
  auto json = util::Json::Parse(line);
  if (!json.ok()) {
    done_ = true;
    return util::Status::ParseError(
        "shard document " + std::to_string(docs_read_) +
        " is not valid JSON: " + path_ + " (" + json.status().message() + ")");
  }
  auto doc = DocumentFromJson(*json);
  if (!doc.ok()) {
    done_ = true;
    return util::Status(doc.status().code(),
                        "shard document " + std::to_string(docs_read_) +
                            ": " + doc.status().message() + ": " + path_);
  }
  ++docs_read_;
  DocsReadCounter()->Add();
  return std::optional<Document>(std::move(doc).value());
}

// --- ShardedCorpusReader ----------------------------------------------------

util::Result<ShardedCorpusReader> ShardedCorpusReader::Open(
    const std::string& directory, const std::string& stem) {
  ShardedCorpusReader reader;
  BRIQ_ASSIGN_OR_RETURN(reader.shard_paths_, ListShards(directory, stem));
  reader.end_shard_ = reader.shard_paths_.size();
  return reader;
}

util::Result<ShardedCorpusReader> ShardedCorpusReader::Open(
    const std::string& directory, const std::string& stem, size_t shard_begin,
    size_t shard_end) {
  ShardedCorpusReader reader;
  BRIQ_ASSIGN_OR_RETURN(reader.shard_paths_, ListShards(directory, stem));
  shard_end = std::min(shard_end, reader.shard_paths_.size());
  if (shard_begin >= shard_end) {
    return util::Status::InvalidArgument(
        "empty shard range [" + std::to_string(shard_begin) + ", " +
        std::to_string(shard_end) + ") over " +
        std::to_string(reader.shard_paths_.size()) + " shards: " + directory);
  }
  reader.begin_shard_ = shard_begin;
  reader.next_shard_ = shard_begin;
  reader.end_shard_ = shard_end;
  // Seed the global document index from the begin shard's header so range
  // readers report corpus-wide indices, not range-local ones.
  BRIQ_ASSIGN_OR_RETURN(ShardHeader header,
                        ReadShardHeader(reader.shard_paths_[shard_begin]));
  reader.next_document_index_ = header.first_document_index;
  return reader;
}

util::Result<std::optional<Document>> ShardedCorpusReader::Next() {
  while (true) {
    if (!current_.has_value()) {
      if (next_shard_ >= end_shard_) {
        return std::optional<Document>();
      }
      const std::string& path = shard_paths_[next_shard_];
      BRIQ_ASSIGN_OR_RETURN(ShardReader opened, ShardReader::Open(path));
      if (opened.header().shard_index != static_cast<int>(next_shard_)) {
        return util::Status::ParseError(
            "shard header index " +
            std::to_string(opened.header().shard_index) +
            " does not match file position " + std::to_string(next_shard_) +
            ": " + path);
      }
      if (opened.header().first_document_index != next_document_index_) {
        return util::Status::ParseError(
            "shard declares first_document_index " +
            std::to_string(opened.header().first_document_index) +
            " but the corpus has " + std::to_string(next_document_index_) +
            " documents before it: " + path);
      }
      current_.emplace(std::move(opened));
      ++next_shard_;
    }
    BRIQ_ASSIGN_OR_RETURN(std::optional<Document> doc, current_->Next());
    if (doc.has_value()) {
      ++next_document_index_;
      return doc;
    }
    current_.reset();  // clean end-of-shard; advance to the next file
  }
}

// --- Whole-corpus conveniences ----------------------------------------------

util::Result<std::vector<std::string>> WriteCorpusShards(
    const Corpus& corpus, const std::string& directory,
    const std::string& stem, size_t shard_size) {
  ShardWriter writer(directory, stem, shard_size);
  for (const Document& doc : corpus.documents) {
    BRIQ_RETURN_IF_ERROR(writer.Add(doc));
  }
  BRIQ_RETURN_IF_ERROR(writer.Finish());
  return writer.shard_paths();
}

util::Result<Corpus> LoadShardedCorpus(const std::string& directory,
                                       const std::string& stem) {
  BRIQ_ASSIGN_OR_RETURN(ShardedCorpusReader reader,
                        ShardedCorpusReader::Open(directory, stem));
  Corpus corpus;
  while (true) {
    BRIQ_ASSIGN_OR_RETURN(std::optional<Document> doc, reader.Next());
    if (!doc.has_value()) break;
    corpus.documents.push_back(std::move(*doc));
  }
  return corpus;
}

}  // namespace briq::corpus
