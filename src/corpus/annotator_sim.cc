#include "corpus/annotator_sim.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace briq::corpus {

double FleissKappa(const std::vector<std::vector<int>>& ratings) {
  const size_t n_subjects = ratings.size();
  BRIQ_CHECK(n_subjects > 0) << "no subjects";
  const size_t n_categories = ratings[0].size();

  int raters = 0;
  for (int c : ratings[0]) raters += c;
  BRIQ_CHECK(raters >= 2) << "need at least two raters";

  // Per-category assignment proportions p_j.
  std::vector<double> p(n_categories, 0.0);
  double mean_agreement = 0.0;
  for (const auto& row : ratings) {
    BRIQ_CHECK(row.size() == n_categories) << "ragged ratings matrix";
    int total = 0;
    double agree = 0.0;
    for (size_t j = 0; j < n_categories; ++j) {
      total += row[j];
      p[j] += row[j];
      agree += static_cast<double>(row[j]) * (row[j] - 1);
    }
    BRIQ_CHECK(total == raters) << "inconsistent rater counts per subject";
    mean_agreement += agree / (static_cast<double>(raters) * (raters - 1));
  }
  mean_agreement /= static_cast<double>(n_subjects);

  double pe = 0.0;
  for (size_t j = 0; j < n_categories; ++j) {
    double pj = p[j] / (static_cast<double>(n_subjects) * raters);
    pe += pj * pj;
  }
  if (pe >= 1.0) return 1.0;
  return (mean_agreement - pe) / (1.0 - pe);
}

namespace {

// Category ids for the simulated judgment task: the five mention types
// plus "unrelated".
constexpr int kNumCategories = 6;
constexpr int kUnrelated = 5;

int CategoryOf(table::AggregateFunction f) {
  switch (f) {
    case table::AggregateFunction::kNone:
      return 0;
    case table::AggregateFunction::kSum:
      return 1;
    case table::AggregateFunction::kDiff:
      return 2;
    case table::AggregateFunction::kPercentage:
      return 3;
    case table::AggregateFunction::kChangeRatio:
      return 4;
    default:
      return kUnrelated;
  }
}

}  // namespace

AnnotationOutcome SimulateAnnotation(const Corpus& corpus,
                                     const AnnotatorSimOptions& options) {
  util::Rng rng(options.seed);
  AnnotationOutcome outcome;
  outcome.annotated.documents.reserve(corpus.documents.size());

  std::vector<std::vector<int>> ratings;

  auto judge = [&](int true_category) {
    std::vector<int> row(kNumCategories, 0);
    for (int a = 0; a < options.num_annotators; ++a) {
      int assigned = true_category;
      if (rng.Bernoulli(options.error_rate)) {
        // A wrong category, uniformly among the others.
        assigned = static_cast<int>(rng.UniformInt(kNumCategories - 1));
        if (assigned >= true_category) ++assigned;
      }
      ++row[assigned];
    }
    ratings.push_back(row);
    // Kept if >= min_agreement annotators confirmed the pair as related
    // with its true type.
    return ratings.back()[true_category] >= options.min_agreement;
  };

  for (const Document& doc : corpus.documents) {
    Document kept = doc;
    kept.ground_truth.clear();
    for (const GroundTruthAlignment& gt : doc.ground_truth) {
      ++outcome.pairs_judged;
      if (judge(CategoryOf(gt.target.func))) {
        kept.ground_truth.push_back(gt);
        ++outcome.pairs_kept;
      } else {
        ++outcome.pairs_dropped;
      }
      // One unrelated decoy per real pair keeps the category space honest.
      ++outcome.pairs_judged;
      judge(kUnrelated);
    }
    outcome.annotated.documents.push_back(std::move(kept));
  }

  if (!ratings.empty()) {
    outcome.fleiss_kappa = FleissKappa(ratings);
  }
  return outcome;
}

}  // namespace briq::corpus
