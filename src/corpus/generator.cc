#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "quantity/quantity_parser.h"
#include "table/virtual_cell.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace briq::corpus {

namespace {

using table::AggregateFunction;
using table::CellRef;

// ---------------------------------------------------------------------------
// Value formatting
// ---------------------------------------------------------------------------

double RoundSignificant(double v, int digits) {
  if (v == 0.0) return 0.0;
  double mag = std::pow(10.0, digits - 1 - static_cast<int>(std::floor(
                                               std::log10(std::fabs(v)))));
  return std::round(v * mag) / mag;
}

double RoundDecimals(double v, int decimals) {
  double mag = std::pow(10.0, decimals);
  return std::round(v * mag) / mag;
}

// Formats with `decimals` digits and optional thousands separators.
std::string FormatValue(double v, int decimals, bool separators) {
  double rounded = RoundDecimals(v, decimals);
  if (decimals == 0) {
    int64_t iv = static_cast<int64_t>(std::llround(rounded));
    return separators ? util::WithThousandsSeparators(iv) : std::to_string(iv);
  }
  std::string s = util::FormatDouble(rounded, decimals);
  if (separators) {
    // Separate the integer part only.
    auto dot = s.find('.');
    std::string int_part = dot == std::string::npos ? s : s.substr(0, dot);
    std::string frac = dot == std::string::npos ? "" : s.substr(dot);
    bool neg = !int_part.empty() && int_part[0] == '-';
    int64_t iv = std::strtoll(int_part.c_str(), nullptr, 10);
    (void)neg;
    return util::WithThousandsSeparators(iv) + frac;
  }
  return s;
}

// Expresses v exactly with a scale word ("3.263 billion") when v/scale has
// at most 3 decimals; returns "" otherwise.
std::string ScaledForm(double v) {
  struct Scale {
    double factor;
    const char* word;
  };
  static constexpr Scale kScales[] = {
      {1e9, "billion"}, {1e6, "million"}, {1e3, "thousand"}};
  for (const Scale& s : kScales) {
    if (std::fabs(v) < s.factor) continue;
    double x = v / s.factor;
    double x3 = RoundDecimals(x, 3);
    if (std::fabs(x3 * s.factor - v) < 1e-6 * std::fabs(v)) {
      return util::FormatDouble(x3, 3) + " " + s.word;
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Paragraph builder with span tracking
// ---------------------------------------------------------------------------

class ParagraphBuilder {
 public:
  void Append(std::string_view s) { text_ += s; }

  /// Appends mention text and returns its span.
  text::Span AppendMention(std::string_view s) {
    text::Span span{text_.size(), text_.size() + s.size()};
    text_ += s;
    return span;
  }

  const std::string& str() const { return text_; }
  std::string Take() { return std::move(text_); }
  bool empty() const { return text_.empty(); }

 private:
  std::string text_;
};

// ---------------------------------------------------------------------------
// Table construction
// ---------------------------------------------------------------------------

enum class ColStyle { kPlain, kCurrency, kPercent, kMass };

struct BuiltTable {
  table::Table t;
  std::vector<ColStyle> styles;  // per body column (index 1..)
  bool caption_scaled = false;
};

std::vector<std::string> SampleDistinct(const std::vector<std::string>& pool,
                                        size_t n, util::Rng* rng) {
  std::vector<std::string> copy = pool;
  rng->Shuffle(&copy);
  if (copy.size() > n) copy.resize(n);
  return copy;
}

// `donor` (optional) is a previously built table whose values may be
// duplicated into this one, creating Fig.-3-style cross-table ambiguity.
BuiltTable BuildTable(const DomainProfile& p, const std::string& caption,
                      const std::vector<std::string>& col_headers,
                      const std::vector<std::string>& row_headers,
                      util::Rng* rng, const BuiltTable* donor = nullptr) {
  const int body_rows = static_cast<int>(row_headers.size());
  const int body_cols = static_cast<int>(col_headers.size());

  BuiltTable built;
  built.styles.resize(body_cols, ColStyle::kPlain);
  bool caption_scaled = false;
  switch (p.unit_style) {
    case DomainUnitStyle::kPlainCounts:
      // Mass columns (messy profiles only — the guard keeps legacy
      // profiles from consuming RNG draws): the header carries the unit
      // cue, e.g. "Run 1 (tonnes)".
      if (p.mass_column_prob > 0.0) {
        for (auto& s : built.styles) {
          if (rng->Bernoulli(p.mass_column_prob)) s = ColStyle::kMass;
        }
      }
      break;
    case DomainUnitStyle::kCurrency:
      for (auto& s : built.styles) s = ColStyle::kCurrency;
      caption_scaled = rng->Bernoulli(p.caption_scale_prob);
      break;
    case DomainUnitStyle::kMixed:
      for (auto& s : built.styles) {
        double r = rng->UniformDouble();
        s = r < 0.40 ? ColStyle::kPlain
                     : (r < 0.75 ? ColStyle::kCurrency : ColStyle::kPercent);
      }
      break;
  }
  built.caption_scaled = caption_scaled;

  std::vector<std::vector<std::string>> rows(body_rows + 1);
  rows[0].push_back("Category");
  for (int c = 0; c < body_cols; ++c) {
    std::string h = col_headers[c];
    if (built.styles[c] == ColStyle::kMass) {
      h += " (" + p.mass_header_unit + ")";
    }
    rows[0].push_back(std::move(h));
  }

  const bool use_separators = rng->Bernoulli(0.6);
  // Previously emitted raw values per style, for same-table collisions.
  std::vector<std::vector<std::string>> emitted(4);
  // Donor raw values per style, for cross-table collisions.
  std::vector<std::vector<std::string>> donor_values(4);
  if (donor != nullptr) {
    for (int r = 1; r < donor->t.num_rows(); ++r) {
      for (int c = 1; c < donor->t.num_cols(); ++c) {
        const table::Cell& cell = donor->t.cell(r, c);
        if (!cell.numeric()) continue;
        donor_values[static_cast<int>(donor->styles[c - 1])].push_back(
            cell.raw);
      }
    }
  }

  for (int r = 0; r < body_rows; ++r) {
    rows[r + 1].push_back(row_headers[r]);
    for (int c = 0; c < body_cols; ++c) {
      if (!rng->Bernoulli(p.numeric_density)) {
        rows[r + 1].push_back(rng->Bernoulli(0.5) ? "--" : "n/a");
        continue;
      }
      ColStyle style = built.styles[c];
      const int style_idx = static_cast<int>(style);
      std::string raw;
      // Same-value collisions: duplicate an existing value of the same
      // style, from this table or (for second tables) from the donor.
      if (!donor_values[style_idx].empty() &&
          rng->Bernoulli(p.cross_table_collision_prob)) {
        raw = rng->Choice(donor_values[style_idx]);
      } else if (!emitted[style_idx].empty() &&
                 rng->Bernoulli(p.value_collision_prob)) {
        raw = rng->Choice(emitted[style_idx]);
      } else if (style == ColStyle::kPercent) {
        double v = RoundDecimals(rng->UniformDouble(0.5, 99.5),
                                 rng->Bernoulli(0.5) ? 1 : 2);
        raw = util::FormatDouble(v, 2) + "%";
      } else if (caption_scaled) {
        // Caption announces "($ Millions)": cells are display-scaled.
        double v = RoundDecimals(rng->UniformDouble(10, 9000), 0);
        raw = FormatValue(v, 0, use_separators);
      } else {
        double v = rng->UniformDouble(p.value_min, p.value_max);
        // value_quantum (messy profiles) snaps values to a grid that keeps
        // fractions / scaled forms exactly expressible.
        v = p.value_quantum > 0.0
                ? std::round(v / p.value_quantum) * p.value_quantum
                : RoundDecimals(v, p.max_decimals);
        raw = FormatValue(v, p.max_decimals, use_separators);
        if (style == ColStyle::kCurrency) raw = "$" + raw;
      }
      emitted[style_idx].push_back(raw);
      rows[r + 1].push_back(std::move(raw));
    }
  }

  built.t = table::Table::FromRows(std::move(rows));
  std::string full_caption = caption;
  if (caption_scaled) full_caption += " ($ Millions)";
  built.t.set_caption(full_caption);
  built.t.set_header_row(true);
  built.t.set_header_col(true);
  built.t.AnnotateQuantities();
  return built;
}

// ---------------------------------------------------------------------------
// Mention candidates
// ---------------------------------------------------------------------------

struct Candidate {
  GroundTruthTarget target;
  double value = 0.0;       // normalized value of the target (cell units)
  double to_base = 1.0;     // factor into the unit category's base unit
  ColStyle style = ColStyle::kPlain;
  // Context labels used by the sentence templates.
  std::string row_label;
  std::string col_label;
  std::string other_label;  // second row/col for pair aggregates
};

struct CandidatePools {
  std::vector<Candidate> singles;
  std::vector<Candidate> sums;
  std::vector<Candidate> diffs;
  std::vector<Candidate> pcts;
  std::vector<Candidate> ratios;
};

void CollectCandidates(const BuiltTable& bt, int table_index,
                       CandidatePools* pools) {
  const table::Table& t = bt.t;
  const int rows = t.num_rows();
  const int cols = t.num_cols();

  auto style_of = [&](int c) { return bt.styles[c - 1]; };

  // Singles.
  for (int r = 1; r < rows; ++r) {
    for (int c = 1; c < cols; ++c) {
      const table::Cell& cell = t.cell(r, c);
      if (!cell.numeric()) continue;
      Candidate cand;
      cand.target = {table_index, AggregateFunction::kNone, {CellRef{r, c}}};
      cand.value = cell.quantity->value;
      cand.to_base = cell.quantity->unit_to_base;
      cand.style = style_of(c);
      cand.row_label = t.cell(r, 0).raw;
      cand.col_label = t.cell(0, c).raw;
      pools->singles.push_back(std::move(cand));
    }
  }

  // Column sums (skip percent columns: summing shares reads oddly).
  for (int c = 1; c < cols; ++c) {
    if (style_of(c) == ColStyle::kPercent) continue;
    std::vector<CellRef> cells;
    double sum = 0.0;
    double col_to_base = 1.0;
    for (int r = 1; r < rows; ++r) {
      if (!t.cell(r, c).numeric()) continue;
      cells.push_back(CellRef{r, c});
      sum += t.cell(r, c).quantity->value;
      col_to_base = t.cell(r, c).quantity->unit_to_base;
    }
    if (cells.size() < 2) continue;
    Candidate cand;
    cand.target = {table_index, AggregateFunction::kSum, cells};
    cand.value = sum;
    cand.to_base = col_to_base;
    cand.style = style_of(c);
    cand.col_label = t.cell(0, c).raw;
    pools->sums.push_back(std::move(cand));
  }
  // Row sums (only when all numeric cells in the row share one style).
  for (int r = 1; r < rows; ++r) {
    std::vector<CellRef> cells;
    double sum = 0.0;
    bool uniform = true;
    ColStyle first = ColStyle::kPlain;
    bool any = false;
    for (int c = 1; c < cols; ++c) {
      if (!t.cell(r, c).numeric()) continue;
      if (!any) {
        first = style_of(c);
        any = true;
      } else if (style_of(c) != first) {
        uniform = false;
      }
      cells.push_back(CellRef{r, c});
      sum += t.cell(r, c).quantity->value;
    }
    if (!uniform || first == ColStyle::kPercent || cells.size() < 2) continue;
    Candidate cand;
    cand.target = {table_index, AggregateFunction::kSum, cells};
    cand.value = sum;
    cand.to_base = t.cell(cells[0].row, cells[0].col).quantity->unit_to_base;
    cand.style = first;
    cand.row_label = t.cell(r, 0).raw;
    pools->sums.push_back(std::move(cand));
  }

  // Same-row pairs across columns: diff and ratio.
  for (int r = 1; r < rows; ++r) {
    for (int ca = 1; ca < cols; ++ca) {
      for (int cb = 1; cb < cols; ++cb) {
        if (ca == cb) continue;
        const table::Cell& a = t.cell(r, ca);
        const table::Cell& b = t.cell(r, cb);
        if (!a.numeric() || !b.numeric()) continue;
        if (style_of(ca) != style_of(cb)) continue;
        double va = a.quantity->value;
        double vb = b.quantity->value;
        if (va <= vb) continue;  // positive-direction phrasing only
        Candidate diff;
        diff.target = {table_index,
                       AggregateFunction::kDiff,
                       {CellRef{r, ca}, CellRef{r, cb}}};
        diff.value = va - vb;
        diff.to_base = a.quantity->unit_to_base;
        diff.style = style_of(ca);
        diff.row_label = t.cell(r, 0).raw;
        diff.col_label = t.cell(0, ca).raw;
        diff.other_label = t.cell(0, cb).raw;
        pools->diffs.push_back(diff);

        if (style_of(ca) != ColStyle::kPercent && vb > 1e-9) {
          double ratio = (va - vb) / vb * 100.0;
          if (ratio >= 0.5 && ratio <= 60.0) {
            Candidate cand = diff;
            cand.target.func = AggregateFunction::kChangeRatio;
            cand.value = ratio;
            cand.to_base = 1.0;  // ratios are percent, not the column unit
            cand.style = ColStyle::kPercent;
            pools->ratios.push_back(std::move(cand));
          }
        }
      }
    }
  }

  // Same-column pairs across rows: percentage (a of b, a < b).
  for (int c = 1; c < cols; ++c) {
    if (style_of(c) == ColStyle::kPercent) continue;
    for (int ra = 1; ra < rows; ++ra) {
      for (int rb = 1; rb < rows; ++rb) {
        if (ra == rb) continue;
        const table::Cell& a = t.cell(ra, c);
        const table::Cell& b = t.cell(rb, c);
        if (!a.numeric() || !b.numeric()) continue;
        double va = a.quantity->value;
        double vb = b.quantity->value;
        if (vb <= 0 || va <= 0 || va >= vb) continue;
        double pct = va / vb * 100.0;
        if (pct < 1.0 || pct > 99.0) continue;
        Candidate cand;
        cand.target = {table_index,
                       AggregateFunction::kPercentage,
                       {CellRef{ra, c}, CellRef{rb, c}}};
        cand.value = pct;
        cand.style = ColStyle::kPercent;
        cand.row_label = t.cell(ra, 0).raw;
        cand.other_label = t.cell(rb, 0).raw;
        cand.col_label = t.cell(0, c).raw;
        pools->pcts.push_back(std::move(cand));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mention surface rendering
// ---------------------------------------------------------------------------

struct RenderedMention {
  std::string txt;
  Realization realization = Realization::kExact;
};

std::string RenderNumber(double v, ColStyle style, util::Rng* rng,
                         bool allow_scaled, Realization* realization) {
  if (style == ColStyle::kPercent) {
    int decimals = std::fabs(v - std::round(v)) < 1e-9 ? 0 : 2;
    return util::FormatDouble(RoundDecimals(v, 2), decimals) + "%";
  }
  // Scaled exact form ("3.263 billion") when clean and allowed.
  if (allow_scaled && std::fabs(v) >= 1e4 && rng->Bernoulli(0.5)) {
    std::string scaled = ScaledForm(v);
    if (!scaled.empty()) {
      if (realization) *realization = Realization::kScaled;
      if (style == ColStyle::kCurrency) return "$" + scaled;
      return scaled;
    }
  }
  int decimals = std::fabs(v - std::round(v)) < 1e-9
                     ? 0
                     : (std::fabs(v * 10 - std::round(v * 10)) < 1e-9 ? 1 : 2);
  std::string s = FormatValue(v, decimals, rng->Bernoulli(0.7));
  if (style == ColStyle::kCurrency) {
    return rng->Bernoulli(0.8) ? "$" + s : s + " USD";
  }
  return s;
}

const char* kApproxCues[] = {"about", "around", "nearly", "roughly",
                             "approximately", "almost"};

RenderedMention RenderMention(const Candidate& cand, Realization requested,
                              util::Rng* rng) {
  RenderedMention out;
  out.realization = requested;
  switch (requested) {
    case Realization::kApproximate: {
      double v = RoundSignificant(cand.value, 2);
      std::string cue = kApproxCues[rng->UniformInt(6)];
      Realization unused = Realization::kExact;
      out.txt = cue + " " + RenderNumber(v, cand.style, rng,
                                         /*allow_scaled=*/true, &unused);
      return out;
    }
    case Realization::kScaled:
    case Realization::kExact: {
      Realization actual = Realization::kExact;
      out.txt = RenderNumber(cand.value, cand.style, rng,
                             /*allow_scaled=*/true, &actual);
      out.realization = actual;
      return out;
    }
    case Realization::kDisplayRounded: {
      // Derived aggregates are shown at display precision (the paper's
      // "increased by 1.5%" vs the exact 1.573).
      double v = cand.style == ColStyle::kPercent
                     ? RoundDecimals(cand.value, rng->Bernoulli(0.5) ? 1 : 2)
                     : RoundSignificant(cand.value, 3);
      Realization unused = Realization::kExact;
      out.txt = RenderNumber(v, cand.style, rng, /*allow_scaled=*/true,
                             &unused);
      return out;
    }
  }
  return out;
}

// Percent-unit diffs surface as basis points ("up 60 bps"), like Fig. 3.
std::string RenderBps(double percent_diff) {
  double bps = RoundDecimals(percent_diff * 100.0, 0);
  return util::FormatDouble(bps, 0) + " bps";
}

// ---------------------------------------------------------------------------
// Messy surface forms (extended-lexer profiles)
// ---------------------------------------------------------------------------

struct MessyMention {
  std::string txt;
  Realization realization = Realization::kExact;
  bool ok = false;
};

// Decimal digits (0..2) needed to print v exactly; -1 if more are needed.
int CleanDecimals(double v) {
  if (std::fabs(v - std::round(v)) < 1e-9) return 0;
  if (std::fabs(v * 10 - std::round(v * 10)) < 1e-9) return 1;
  if (std::fabs(v * 100 - std::round(v * 100)) < 1e-9) return 2;
  return -1;
}

// "48392100" rendered as "4.83921e7" or "4.83921 × 10^7". Exact: the
// mantissa keeps every significant digit, so reparsing recovers the same
// decimal and strtod rounds it to the identical double.
MessyMention ScientificForm(const Candidate& cand, util::Rng* rng) {
  MessyMention out;
  const double v = cand.value;
  const int dec = CleanDecimals(v);
  if (v < 1e4 || dec < 0 || cand.style == ColStyle::kPercent) return out;
  std::string s = FormatValue(v, dec, /*separators=*/false);
  const auto dot = s.find('.');
  std::string digits =
      dot == std::string::npos ? s : s.substr(0, dot) + s.substr(dot + 1);
  const int exp =
      static_cast<int>(dot == std::string::npos ? s.size() : dot) - 1;
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::string mantissa = digits.substr(0, 1);
  if (digits.size() > 1) mantissa += "." + digits.substr(1);
  out.txt = rng->Bernoulli(0.5)
                ? mantissa + "e" + std::to_string(exp)
                : mantissa + " × 10^" + std::to_string(exp);
  if (cand.style == ColStyle::kCurrency) out.txt = "$" + out.txt;
  out.realization = Realization::kExact;
  out.ok = true;
  return out;
}

// European grouping for large integers: "1.234.567". Restricted to >= 1e6
// (two dot-groups) so the locale auto-disambiguation is unambiguous.
MessyMention LocaleSepForm(const Candidate& cand) {
  MessyMention out;
  const double v = cand.value;
  if (v < 1e6 || CleanDecimals(v) != 0 || cand.style == ColStyle::kPercent) {
    return out;
  }
  std::string txt = FormatValue(v, 0, /*separators=*/true);
  for (char& ch : txt) {
    if (ch == ',') ch = '.';
  }
  out.txt = cand.style == ColStyle::kCurrency ? "$" + txt : txt;
  out.realization = Realization::kExact;
  out.ok = true;
  return out;
}

// Both endpoints expressible as integer multiples of one scale word?
bool SharedScale(double lo, double hi, double* factor, const char** word) {
  if (hi >= 1e9 && std::fmod(lo, 1e9) == 0.0 && std::fmod(hi, 1e9) == 0.0) {
    *factor = 1e9;
    *word = " billion";
    return true;
  }
  if (hi >= 1e6 && std::fmod(lo, 1e6) == 0.0 && std::fmod(hi, 1e6) == 0.0) {
    *factor = 1e6;
    *word = " million";
    return true;
  }
  return false;
}

// One-significant-step bracket containing the value: "3–4 million",
// "480000-490000", "2–3 tonnes".
MessyMention RangeForm(const Candidate& cand, const DomainProfile& p,
                       util::Rng* rng) {
  MessyMention out;
  const double v = cand.value;
  if (!(v >= 1.0) || !std::isfinite(v) || cand.style == ColStyle::kPercent) {
    return out;
  }
  const double g =
      std::pow(10.0, std::max(0.0, std::floor(std::log10(v)) - 1.0));
  const double lo = std::floor(v / g) * g;
  const double hi = lo + g;
  double f = 1.0;
  const char* word = "";
  std::string ltxt, htxt;
  if (SharedScale(lo, hi, &f, &word)) {
    ltxt = util::FormatDouble(lo / f, 0);
    htxt = util::FormatDouble(hi / f, 0);
  } else if (CleanDecimals(lo) == 0 && CleanDecimals(hi) == 0) {
    ltxt = FormatValue(lo, 0, false);
    htxt = FormatValue(hi, 0, false);
  } else {
    return out;
  }
  out.txt = ltxt + (rng->Bernoulli(0.7) ? "–" : "-") + htxt + word;
  if (cand.style == ColStyle::kCurrency) out.txt = "$" + out.txt;
  if (cand.style == ColStyle::kMass) out.txt += " " + p.mass_header_unit;
  out.realization = Realization::kApproximate;
  out.ok = true;
  return out;
}

// "480 ± 10 million": center rounded to one significant step, error one
// full step, so the interval always contains the exact value.
MessyMention PlusMinusForm(const Candidate& cand, const DomainProfile& p) {
  MessyMention out;
  const double v = cand.value;
  if (!(v >= 1.0) || !std::isfinite(v) || cand.style == ColStyle::kPercent) {
    return out;
  }
  const double g =
      std::pow(10.0, std::max(0.0, std::floor(std::log10(v)) - 1.0));
  const double center = std::round(v / g) * g;
  const double err = g;
  double f = 1.0;
  const char* word = "";
  std::string ctxt, etxt;
  if (SharedScale(err, center, &f, &word)) {
    ctxt = util::FormatDouble(center / f, 0);
    etxt = util::FormatDouble(err / f, 0);
  } else if (CleanDecimals(center) == 0 && CleanDecimals(err) == 0) {
    ctxt = FormatValue(center, 0, false);
    etxt = FormatValue(err, 0, false);
  } else {
    return out;
  }
  out.txt = ctxt + " ± " + etxt + word;
  if (cand.style == ColStyle::kCurrency) out.txt = "$" + out.txt;
  if (cand.style == ColStyle::kMass) out.txt += " " + p.mass_header_unit;
  out.realization = Realization::kApproximate;
  out.ok = true;
  return out;
}

// Vulgar / ASCII fractions for quarter-grid values: "2¾", "2 3/4", "½".
MessyMention FractionForm(const Candidate& cand, const DomainProfile& p,
                          util::Rng* rng) {
  MessyMention out;
  if (cand.style != ColStyle::kPlain && cand.style != ColStyle::kMass) {
    return out;
  }
  const double v = cand.value;
  const double whole = std::floor(v);
  const double frac = v - whole;
  struct F {
    double val;
    const char* vulgar;
    const char* ascii;
  };
  static constexpr F kFractions[] = {
      {0.25, "¼", "1/4"}, {0.5, "½", "1/2"}, {0.75, "¾", "3/4"}};
  const F* match = nullptr;
  for (const F& f : kFractions) {
    if (std::fabs(frac - f.val) < 1e-9) {
      match = &f;
      break;
    }
  }
  if (match == nullptr || whole >= 1000.0) return out;
  const bool vulgar = rng->Bernoulli(0.6);
  if (whole == 0.0) {
    out.txt = vulgar ? match->vulgar : match->ascii;
  } else {
    std::string w = FormatValue(whole, 0, false);
    out.txt = vulgar ? w + (rng->Bernoulli(0.5) ? "" : " ") + match->vulgar
                     : w + " " + match->ascii;
  }
  if (cand.style == ColStyle::kMass) out.txt += " " + p.mass_header_unit;
  out.realization = Realization::kExact;
  out.ok = true;
  return out;
}

// Unit-converted surfaces: tonne cells stated in kg ("2750 kg" for a 2.75
// cell under a "(tonnes)" header), currency as scaled symbols ("483 M$").
MessyMention UnitConvertForm(const Candidate& cand, util::Rng* rng) {
  MessyMention out;
  if (cand.style == ColStyle::kMass) {
    if (cand.to_base != 1e3) return out;  // only tonne columns convert
    const double kg = cand.value * cand.to_base;
    const int dec = CleanDecimals(kg);
    if (dec < 0) return out;
    out.txt = FormatValue(kg, dec, rng->Bernoulli(0.5)) + " kg";
    out.realization = Realization::kScaled;
    out.ok = true;
  } else if (cand.style == ColStyle::kCurrency) {
    double f = 1e6;
    std::string sym = "M$";
    if (cand.value >= 1e9 && CleanDecimals(cand.value / 1e9) >= 0) {
      f = 1e9;
      sym = rng->Bernoulli(0.5) ? "bn$" : "B$";
    }
    const int dec = CleanDecimals(cand.value / f);
    if (dec < 0) return out;
    out.txt = util::FormatDouble(cand.value / f, dec) + " " + sym;
    out.realization = Realization::kScaled;
    out.ok = true;
  }
  return out;
}

// A messy surface is emitted only if it lexes back to exactly the
// candidate's base-unit value (intervals must contain it); otherwise the
// caller falls back to a legacy rendering, so ground truth stays exact by
// construction (tests/quantity_lexer_test.cc fuzzes this property).
bool LexesBackTo(const std::string& txt, double base_value) {
  quantity::ExtractionOptions opts;
  opts.extended_forms = true;
  std::vector<quantity::ParsedQuantity> qs =
      quantity::ExtractQuantities(txt, opts);
  if (qs.size() != 1) return false;
  const quantity::ParsedQuantity& q = qs[0];
  if (q.is_interval()) {
    double lo = q.value_lo * q.unit_to_base;
    double hi = q.value_hi * q.unit_to_base;
    if (lo > hi) std::swap(lo, hi);
    return lo <= base_value && base_value <= hi;
  }
  return q.value * q.unit_to_base == base_value;
}

MessyMention TryMessySurface(const Candidate& cand, const DomainProfile& p,
                             util::Rng* rng) {
  MessyMention out;
  if (cand.target.func != AggregateFunction::kNone) return out;
  std::vector<double> w = {p.p_scientific, p.p_locale_sep, p.p_range,
                           p.p_plus_minus, p.p_fraction,   p.p_unit_convert};
  double total = 0.0;
  for (double x : w) total += x;
  w.push_back(std::max(0.0, 1.0 - total));  // residual: legacy rendering
  switch (rng->Discrete(w)) {
    case 0: out = ScientificForm(cand, rng); break;
    case 1: out = LocaleSepForm(cand); break;
    case 2: out = RangeForm(cand, p, rng); break;
    case 3: out = PlusMinusForm(cand, p); break;
    case 4: out = FractionForm(cand, p, rng); break;
    case 5: out = UnitConvertForm(cand, rng); break;
    default: break;
  }
  if (out.ok && !LexesBackTo(out.txt, cand.value * cand.to_base)) {
    out.ok = false;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sentence templates
// ---------------------------------------------------------------------------

struct Sentence {
  std::string pre;   // text before the mention
  std::string post;  // text after the mention (includes trailing period)
};

Sentence SingleTemplate(const Candidate& c, const DomainProfile& p,
                        util::Rng* rng) {
  // Vague realizations name no header: the reader (and the system) must
  // rely on the value and on neighbouring mentions (Fig. 6 error cases).
  if (rng->Bernoulli(p.vague_template_prob)) {
    switch (rng->UniformInt(3)) {
      case 0:
        return {"The latest figure came to ", "."};
      case 1:
        return {"That number reached ", " over the period."};
      default:
        return {"By the end, the count stood at ", "."};
    }
  }
  switch (rng->UniformInt(4)) {
    case 0:
      return {"The " + c.row_label + " for " + c.col_label + " was ", "."};
    case 1:
      return {c.row_label + " reached ", " in " + c.col_label + "."};
    case 2:
      return {"In " + c.col_label + ", the " + c.row_label + " stood at ",
              "."};
    default:
      return {"The reported " + c.row_label + " came to ",
              " for " + c.col_label + "."};
  }
}

Sentence SumTemplate(const Candidate& c, const DomainProfile& p,
                     util::Rng* rng) {
  std::string noun = p.row_noun.empty() ? "entries" : rng->Choice(p.row_noun);
  if (!c.col_label.empty()) {
    switch (rng->UniformInt(3)) {
      case 0:
        return {"A total of ",
                " was recorded for " + c.col_label + " across all " + noun +
                    "."};
      case 1:
        return {"Overall, " + c.col_label + " summed to ",
                " for the listed " + noun + "."};
      default:
        return {"Combined, the " + noun + " account for ",
                " in " + c.col_label + "."};
    }
  }
  return {"Altogether, " + c.row_label + " amounted to a total of ",
          " across all periods."};
}

Sentence DiffTemplate(const Candidate& c, util::Rng* rng) {
  switch (rng->UniformInt(3)) {
    case 0:
      return {"The " + c.row_label + " was up ",
              " from " + c.other_label + " to " + c.col_label + "."};
    case 1:
      return {c.row_label + " rose by ",
              " compared with " + c.other_label + "."};
    default:
      return {"The difference in " + c.row_label + " between " + c.col_label +
                  " and " + c.other_label + " was ",
              "."};
  }
}

Sentence PctTemplate(const Candidate& c, util::Rng* rng) {
  switch (rng->UniformInt(3)) {
    case 0:
      return {"Of the " + c.other_label + ", ",
              " were " + c.row_label + " in " + c.col_label + "."};
    case 1:
      return {c.row_label + " accounted for ",
              " of " + c.other_label + " in " + c.col_label + "."};
    default:
      return {"In " + c.col_label + ", the share of " + c.row_label +
                  " among " + c.other_label + " was ",
              "."};
  }
}

Sentence RatioTemplate(const Candidate& c, util::Rng* rng) {
  switch (rng->UniformInt(3)) {
    case 0:
      return {"Compared to " + c.other_label + ", " + c.row_label +
                  " increased by ",
              "."};
    case 1:
      return {c.row_label + " grew by ",
              " relative to " + c.other_label + "."};
    default:
      return {"The change in " + c.row_label + " from " + c.other_label +
                  " to " + c.col_label + " came to ",
              "."};
  }
}

const char* kDistractorPre[] = {
    "The report cites ",      "The article was reviewed by ",
    "The study surveyed ",    "Analysts expect coverage by ",
    "The panel interviewed ",
};
const char* kDistractorPost[] = {
    " independent sources.", " external reviewers.", " correspondents.",
    " industry analysts.",   " local observers.",
};

}  // namespace

// ---------------------------------------------------------------------------
// Document generation
// ---------------------------------------------------------------------------

Document GenerateDocument(const DomainProfile& profile, const std::string& id,
                          util::Rng* rng) {
  Document doc;
  doc.id = id;
  doc.domain = profile.name;

  // --- Tables -------------------------------------------------------------
  const int body_rows = static_cast<int>(
      rng->UniformInt(profile.min_body_rows, profile.max_body_rows));
  const int body_cols = static_cast<int>(
      rng->UniformInt(profile.min_body_cols, profile.max_body_cols));
  std::vector<std::string> captions = SampleDistinct(profile.captions, 2, rng);
  std::vector<std::string> col_headers =
      SampleDistinct(profile.col_headers, body_cols, rng);
  std::vector<std::string> row_pool = profile.row_headers;
  rng->Shuffle(&row_pool);

  const bool two_tables =
      rng->Bernoulli(profile.two_table_prob) &&
      static_cast<int>(row_pool.size()) >= 2 * body_rows && captions.size() >= 2;

  std::vector<BuiltTable> built;
  {
    std::vector<std::string> rows_a(row_pool.begin(),
                                    row_pool.begin() + body_rows);
    built.push_back(
        BuildTable(profile, captions[0], col_headers, rows_a, rng));
    if (two_tables) {
      std::vector<std::string> rows_b(row_pool.begin() + body_rows,
                                      row_pool.begin() + 2 * body_rows);
      built.push_back(BuildTable(profile, captions[1], col_headers, rows_b,
                                 rng, &built[0]));
    }
  }

  // --- Candidates ----------------------------------------------------------
  CandidatePools pools;
  for (size_t i = 0; i < built.size(); ++i) {
    CollectCandidates(built[i], static_cast<int>(i), &pools);
  }

  // --- Mentions ------------------------------------------------------------
  const int num_mentions = static_cast<int>(
      rng->UniformInt(profile.min_mentions, profile.max_mentions));

  struct PlannedSentence {
    std::string pre, post;
    std::string mention_txt;  // empty for pure-distractor sentences
    GroundTruthTarget target;
    Realization realization = Realization::kExact;
    bool has_target = false;
  };
  std::vector<PlannedSentence> sentences;
  std::set<std::string> used_targets;

  auto target_key = [](const GroundTruthTarget& t) {
    std::string k = std::to_string(t.table_index) + ":" +
                    std::to_string(static_cast<int>(t.func));
    for (const auto& c : t.cells) {
      k += "," + std::to_string(c.row) + "." + std::to_string(c.col);
    }
    return k;
  };

  for (int m = 0; m < num_mentions; ++m) {
    // Pick a mention type per the profile mix; fall back to single when the
    // pool for the drawn type is empty.
    std::vector<double> weights = {profile.p_single, profile.p_sum,
                                   profile.p_diff, profile.p_pct,
                                   profile.p_ratio};
    size_t type = rng->Discrete(weights);
    const std::vector<Candidate>* pool = nullptr;
    switch (type) {
      case 0: pool = &pools.singles; break;
      case 1: pool = &pools.sums; break;
      case 2: pool = &pools.diffs; break;
      case 3: pool = &pools.pcts; break;
      default: pool = &pools.ratios; break;
    }
    if (pool->empty()) {
      pool = &pools.singles;
      type = 0;
    }
    if (pool->empty()) break;

    // Draw an unused candidate (bounded retries).
    const Candidate* cand = nullptr;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Candidate& c = rng->Choice(*pool);
      if (!used_targets.count(target_key(c.target))) {
        cand = &c;
        break;
      }
    }
    if (cand == nullptr) continue;
    used_targets.insert(target_key(cand->target));

    // Realization.
    Realization realization;
    if (cand->target.func == AggregateFunction::kNone) {
      std::vector<double> rw = {profile.p_exact, profile.p_approx,
                                profile.p_scaled};
      size_t r = rng->Discrete(rw);
      realization = r == 0 ? Realization::kExact
                           : (r == 1 ? Realization::kApproximate
                                     : Realization::kScaled);
    } else if (cand->target.func == AggregateFunction::kSum) {
      realization = rng->Bernoulli(profile.p_approx)
                        ? Realization::kApproximate
                        : Realization::kExact;
    } else {
      realization = Realization::kDisplayRounded;
    }

    PlannedSentence ps;
    // Percent-style diffs render as basis points (Figure 3 fidelity).
    if (cand->target.func == AggregateFunction::kDiff &&
        cand->style == ColStyle::kPercent) {
      ps.mention_txt = RenderBps(cand->value);
      ps.realization = Realization::kDisplayRounded;
    } else {
      MessyMention mm;
      if (profile.messy_numeric_forms) {
        mm = TryMessySurface(*cand, profile, rng);
      }
      if (mm.ok) {
        ps.mention_txt = mm.txt;
        ps.realization = mm.realization;
      } else {
        RenderedMention rm = RenderMention(*cand, realization, rng);
        ps.mention_txt = rm.txt;
        ps.realization = rm.realization;
        // Mass candidates carry their unit word in text; their cells rely
        // on the header cue instead.
        if (cand->style == ColStyle::kMass) {
          ps.mention_txt += " " + profile.mass_header_unit;
        }
      }
    }

    Sentence tmpl;
    switch (cand->target.func) {
      case AggregateFunction::kNone:
        tmpl = SingleTemplate(*cand, profile, rng);
        break;
      case AggregateFunction::kSum:
        tmpl = SumTemplate(*cand, profile, rng);
        break;
      case AggregateFunction::kDiff:
        tmpl = DiffTemplate(*cand, rng);
        break;
      case AggregateFunction::kPercentage:
        tmpl = PctTemplate(*cand, rng);
        break;
      case AggregateFunction::kChangeRatio:
        tmpl = RatioTemplate(*cand, rng);
        break;
      default:
        tmpl = SingleTemplate(*cand, profile, rng);
        break;
    }
    ps.pre = tmpl.pre;
    ps.post = tmpl.post;
    ps.target = cand->target;
    ps.has_target = true;

    // Two-table documents disambiguate most mentions by naming the table.
    if (built.size() > 1 && rng->Bernoulli(0.7)) {
      const std::string& cap = captions[cand->target.table_index];
      ps.pre = "In the " + cap + " figures, " + ps.pre;
      // Lowercase the original sentence start for readability; optional.
    }
    sentences.push_back(std::move(ps));
  }

  // --- Distractors ----------------------------------------------------------
  auto collides = [&](double v) {
    for (const Candidate& c : pools.singles) {
      if (quantity::RelativeDifference(v, c.value) < 0.05) return true;
    }
    for (const Candidate& c : pools.sums) {
      if (quantity::RelativeDifference(v, c.value) < 0.05) return true;
    }
    return false;
  };
  for (int d = 0; d < profile.distractors_per_doc; ++d) {
    PlannedSentence ps;
    if (!pools.singles.empty() &&
        rng->Bernoulli(profile.distractor_exact_collision_prob)) {
      // An unrelated number that exactly matches some cell value — the
      // hardest kind of distractor (only context can reject it).
      const Candidate& c = rng->Choice(pools.singles);
      int decimals = std::fabs(c.value - std::round(c.value)) < 1e-9 ? 0 : 2;
      ps.mention_txt = FormatValue(c.value, decimals, std::fabs(c.value) >= 1e4);
    } else {
      double v = 0;
      bool ok = false;
      for (int attempt = 0; attempt < 12; ++attempt) {
        v = std::round(rng->UniformDouble(20, 900));
        if (!collides(v)) {
          ok = true;
          break;
        }
      }
      if (!ok) continue;
      ps.mention_txt = util::FormatDouble(v, 0);
    }
    ps.pre = kDistractorPre[rng->UniformInt(5)];
    ps.post = kDistractorPost[rng->UniformInt(5)];
    ps.has_target = false;
    sentences.push_back(std::move(ps));
  }

  rng->Shuffle(&sentences);

  // --- Paragraph assembly ---------------------------------------------------
  const int num_paragraphs =
      1 + static_cast<int>(sentences.size()) / 5;
  std::vector<ParagraphBuilder> builders(num_paragraphs);
  int para = 0;
  for (const PlannedSentence& ps : sentences) {
    ParagraphBuilder& b = builders[para];
    if (!b.empty()) b.Append(" ");
    b.Append(ps.pre);
    text::Span span = b.AppendMention(ps.mention_txt);
    b.Append(ps.post);
    if (ps.has_target) {
      GroundTruthAlignment gt;
      gt.paragraph = para;
      gt.span = span;
      gt.surface = ps.mention_txt;
      gt.target = ps.target;
      gt.realization = ps.realization;
      doc.ground_truth.push_back(std::move(gt));
    }
    para = (para + 1) % num_paragraphs;
  }

  for (auto& b : builders) {
    if (!b.empty()) doc.paragraphs.push_back(b.Take());
  }
  // Paragraph indices in ground truth assume no empty paragraphs were
  // skipped; with round-robin filling, builders fill front to back, so an
  // empty builder implies all later ones are empty too.
  for (auto& t : built) doc.tables.push_back(std::move(t.t));
  return doc;
}

Corpus GenerateCorpus(const CorpusOptions& options) {
  util::Rng rng(options.seed);
  Corpus corpus;
  corpus.documents.reserve(options.num_documents);

  std::vector<double> weights;
  std::vector<const DomainProfile*> profiles;
  for (const auto& [name, w] : options.domain_weights) {
    profiles.push_back(&GetDomainProfile(name));
    weights.push_back(w);
  }
  BRIQ_CHECK(!profiles.empty()) << "no domains configured";

  for (size_t i = 0; i < options.num_documents; ++i) {
    const DomainProfile& p = *profiles[rng.Discrete(weights)];
    corpus.documents.push_back(
        GenerateDocument(p, "doc-" + std::to_string(i), &rng));
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// HTML rendering & corpus filter
// ---------------------------------------------------------------------------

namespace {

std::string EscapeHtml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string RenderHtml(const Document& doc) {
  std::string html = "<html><head><title>" + EscapeHtml(doc.id) +
                     "</title></head><body>\n";
  for (const auto& p : doc.paragraphs) {
    html += "<p>" + EscapeHtml(p) + "</p>\n";
  }
  for (const auto& t : doc.tables) {
    html += "<table>\n";
    if (!t.caption().empty()) {
      html += "  <caption>" + EscapeHtml(t.caption()) + "</caption>\n";
    }
    for (int r = 0; r < t.num_rows(); ++r) {
      html += "  <tr>";
      for (int c = 0; c < t.num_cols(); ++c) {
        const char* tag = t.cell(r, c).is_header ? "th" : "td";
        html += "<" + std::string(tag) + ">" + EscapeHtml(t.cell(r, c).raw) +
                "</" + tag + ">";
      }
      html += "</tr>\n";
    }
    html += "</table>\n";
  }
  html += "</body></html>\n";
  return html;
}

bool PassesCorpusFilter(const Document& doc) {
  // (1) At least one table with numeric cells.
  bool numeric_table = false;
  for (const auto& t : doc.tables) {
    for (int r = 0; r < t.num_rows() && !numeric_table; ++r) {
      for (int c = 0; c < t.num_cols(); ++c) {
        if (t.cell(r, c).numeric()) {
          numeric_table = true;
          break;
        }
      }
    }
  }
  if (!numeric_table) return false;

  // (2) Numeric mentions in the text.
  bool numeric_text = false;
  for (const auto& p : doc.paragraphs) {
    if (!quantity::ExtractQuantities(p).empty()) {
      numeric_text = true;
      break;
    }
  }
  if (!numeric_text) return false;

  // (3) Token overlap between table and text.
  std::unordered_set<std::string> table_words;
  for (const auto& t : doc.tables) {
    for (const auto& w : t.AllWords()) table_words.insert(w);
  }
  size_t overlap = 0;
  for (const auto& p : doc.paragraphs) {
    for (const auto& w : text::LowercaseWords(p)) {
      if (table_words.count(w)) ++overlap;
    }
  }
  return overlap >= 2;
}

}  // namespace briq::corpus
