#include "core/extraction.h"

#include <algorithm>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "quantity/quantity_parser.h"
#include "text/noun_phrase.h"
#include "util/similarity.h"
#include "util/string_util.h"

namespace briq::core {

std::vector<std::string> ContextTokens(std::string_view s) {
  std::vector<std::string> out;
  for (const text::Token& t : text::Tokenize(s)) {
    if (t.kind == text::TokenKind::kWord) {
      // Light stemming bridges singular/plural between text and headers
      // ("eye disorder" in text vs "Eye Disorders" in the table).
      out.push_back(util::StemLight(util::ToLower(t.textual)));
    } else if (t.kind == text::TokenKind::kNumber) {
      out.push_back(t.textual);
    }
  }
  return out;
}

namespace {

// Noun phrases with per-word light stemming, for the phrase-overlap
// features.
std::vector<std::string> StemmedPhrases(std::string_view s) {
  std::vector<std::string> out;
  for (const text::NounPhrase& np : text::ExtractNounPhrases(s)) {
    std::vector<std::string> words;
    words.reserve(np.words.size());
    for (const std::string& w : np.words) words.push_back(util::StemLight(w));
    out.push_back(util::Join(words, " "));
  }
  return out;
}

// Index of the first token whose span overlaps `span`; tokens.size() if none.
size_t TokenIndexOf(const std::vector<text::Token>& tokens, text::Span span) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].span.Overlaps(span)) return i;
  }
  return tokens.size();
}

// Index of the sentence containing position `pos`; 0 if none matches.
int SentenceIndexOf(const std::vector<text::Span>& sentences, size_t pos) {
  for (size_t i = 0; i < sentences.size(); ++i) {
    if (sentences[i].Contains(pos)) return static_cast<int>(i);
  }
  return sentences.empty() ? 0 : static_cast<int>(sentences.size()) - 1;
}

}  // namespace

PreparedDocument PrepareDocument(const corpus::Document& doc,
                                 const BriqConfig& config) {
  static obs::Histogram* prepare_seconds =
      obs::MetricRegistry::Global().GetHistogram(
          "briq.align.prepare_seconds", obs::DefaultLatencyBuckets());
  obs::ScopedSpan span("prepare");
  obs::ScopedTimer timer(prepare_seconds);

  PreparedDocument out;
  out.source = &doc;

  // --- Text side -------------------------------------------------------------
  const size_t num_paragraphs = doc.paragraphs.size();
  out.paragraph_tokens.resize(num_paragraphs);
  out.sentence_spans.resize(num_paragraphs);
  out.paragraph_words.resize(num_paragraphs);
  out.paragraph_phrases.resize(num_paragraphs);
  out.sentence_phrases.resize(num_paragraphs);
  out.paragraph_token_offset.resize(num_paragraphs, 0);

  size_t token_offset = 0;
  // Stage span "parse": the text side (tokenization, sentence splitting,
  // quantity parsing) of the per-request stage breakdown; re-emplaced as
  // "extract" for the table side below (LIFO on this thread, so the
  // ScopedSpan stack contract holds).
  std::optional<obs::ScopedSpan> stage_span;
  stage_span.emplace("parse");
  for (size_t p = 0; p < num_paragraphs; ++p) {
    const std::string& para = doc.paragraphs[p];
    out.paragraph_tokens[p] = text::Tokenize(para);
    out.sentence_spans[p] = text::SplitSentences(para);
    out.paragraph_words[p] = ContextTokens(para);
    out.paragraph_phrases[p] = StemmedPhrases(para);
    for (const text::Span& s : out.sentence_spans[p]) {
      out.sentence_phrases[p].push_back(StemmedPhrases(
          std::string_view(para).substr(s.begin, s.length())));
    }
    out.paragraph_token_offset[p] = token_offset;
    token_offset += out.paragraph_tokens[p].size();

    for (quantity::ParsedQuantity& q :
         quantity::ExtractQuantities(para, config.extraction)) {
      table::TextMention m;
      m.paragraph = static_cast<int>(p);
      m.sentence = SentenceIndexOf(out.sentence_spans[p], q.span.begin);
      m.token_pos = TokenIndexOf(out.paragraph_tokens[p], q.span);
      m.q = std::move(q);
      out.text_mentions.push_back(std::move(m));
    }
  }
  out.total_tokens = token_offset;

  // --- Table side ---------------------------------------------------------------
  // Stage span "extract": virtual-cell generation + table context bags.
  stage_span.emplace("extract");
  out.table_contexts.resize(doc.tables.size());
  for (size_t t = 0; t < doc.tables.size(); ++t) {
    const table::Table& tbl = doc.tables[t];
    table::VirtualCellStats stats;
    auto mentions = table::GenerateTableMentions(
        tbl, static_cast<int>(t), config.virtual_cells, &stats);
    out.vc_stats.single_cells += stats.single_cells;
    out.vc_stats.group_aggregates += stats.group_aggregates;
    out.vc_stats.pair_aggregates += stats.pair_aggregates;
    out.vc_stats.dropped_by_cap += stats.dropped_by_cap;
    out.vc_stats.skipped_degenerate += stats.skipped_degenerate;
    out.table_mentions.insert(out.table_mentions.end(),
                              std::make_move_iterator(mentions.begin()),
                              std::make_move_iterator(mentions.end()));

    PreparedDocument::TableContext& ctx = out.table_contexts[t];
    ctx.row_words.resize(tbl.num_rows());
    ctx.col_words.resize(tbl.num_cols());
    ctx.row_phrases.resize(tbl.num_rows());
    ctx.col_phrases.resize(tbl.num_cols());
    for (int r = 0; r < tbl.num_rows(); ++r) {
      std::string content = tbl.RowContent(r);
      ctx.row_words[r] = ContextTokens(content);
      ctx.row_phrases[r] = StemmedPhrases(content);
    }
    for (int c = 0; c < tbl.num_cols(); ++c) {
      std::string content = tbl.ColumnContent(c);
      ctx.col_words[c] = ContextTokens(content);
      ctx.col_phrases[c] = StemmedPhrases(content);
    }
    std::string all = tbl.AllContent();
    ctx.all_words = ContextTokens(all);
    ctx.all_phrases = StemmedPhrases(all);
  }
  stage_span.reset();

  return out;
}

std::vector<corpus::Document> BuildDocumentsFromPage(
    const html::Page& page, double similarity_threshold) {
  // Gather the tables with their token bags.
  std::vector<const table::Table*> tables;
  std::vector<std::vector<std::string>> table_tokens;
  for (const html::PageBlock& b : page.blocks) {
    if (b.kind == html::PageBlock::Kind::kTable) {
      tables.push_back(&b.table);
      table_tokens.push_back(ContextTokens(b.table.AllContent()));
    }
  }

  std::vector<corpus::Document> docs;
  int paragraph_index = 0;
  for (const html::PageBlock& b : page.blocks) {
    if (b.kind != html::PageBlock::Kind::kParagraph) continue;
    std::vector<std::string> para_tokens = ContextTokens(b.textual);
    corpus::Document doc;
    doc.id = page.title + "#p" + std::to_string(paragraph_index++);
    doc.paragraphs.push_back(b.textual);
    for (size_t t = 0; t < tables.size(); ++t) {
      double sim = util::JaccardSimilarity(para_tokens, table_tokens[t]);
      if (sim >= similarity_threshold) {
        doc.tables.push_back(*tables[t]);
      }
    }
    if (!doc.tables.empty()) docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace briq::core
