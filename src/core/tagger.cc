#include "core/tagger.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/cues.h"
#include "core/gt_matching.h"
#include "ml/dataset.h"
#include "util/logging.h"

namespace briq::core {

namespace {

using table::AggregateFunction;

// Unit feature encoding (paper §V-A lists dollar, euro, percent, pound,
// unknown; we add a bucket for other known units).
double UnitFeature(const quantity::ParsedQuantity& q) {
  if (!q.has_unit()) return 0.0;
  if (q.unit == "USD") return 1.0;
  if (q.unit == "EUR") return 2.0;
  if (q.unit == "percent") return 3.0;
  if (q.unit == "GBP") return 4.0;
  return 5.0;
}

}  // namespace

TextMentionTagger::Label TextMentionTagger::LabelOf(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kSum:
      return kSum;
    case AggregateFunction::kDiff:
      return kDiff;
    case AggregateFunction::kPercentage:
      return kPct;
    case AggregateFunction::kChangeRatio:
      return kRatio;
    default:
      return kSingle;
  }
}

AggregateFunction TextMentionTagger::FunctionOf(Label label) {
  switch (label) {
    case kSum:
      return AggregateFunction::kSum;
    case kDiff:
      return AggregateFunction::kDiff;
    case kPct:
      return AggregateFunction::kPercentage;
    case kRatio:
      return AggregateFunction::kChangeRatio;
    default:
      return AggregateFunction::kNone;
  }
}

std::vector<double> TextMentionTagger::Features(const PreparedDocument& doc,
                                                size_t text_idx,
                                                const BriqConfig& config) {
  const table::TextMention& x = doc.text_mentions[text_idx];
  const auto& tokens = doc.paragraph_tokens[x.paragraph];
  std::vector<double> f;
  f.reserve(kNumFeatures);

  // 1) approximation indicator.
  f.push_back(static_cast<double>(x.q.approx));

  // 2-13) cue counts per aggregation function in three scopes.
  const size_t pos = x.token_pos;
  // Immediate: window of 10 words around the mention.
  const size_t kImmediate = 10;
  size_t ib = pos >= kImmediate ? pos - kImmediate : 0;
  size_t ie = std::min(tokens.size(), pos + kImmediate + 1);
  std::vector<int> immediate = CountCues(tokens, ib, ie);
  // Local: the sentence.
  size_t sb = 0;
  size_t se = tokens.size();
  if (x.sentence < static_cast<int>(doc.sentence_spans[x.paragraph].size())) {
    const text::Span& sent = doc.sentence_spans[x.paragraph][x.sentence];
    sb = se = 0;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].span.end <= sent.begin) sb = i + 1;
      if (tokens[i].span.begin < sent.end) se = i + 1;
    }
  }
  std::vector<int> local = CountCues(tokens, sb, se);
  // Global: the paragraph.
  std::vector<int> global = CountCues(tokens, 0, tokens.size());
  for (int i = 0; i < kNumCueFunctions; ++i) f.push_back(immediate[i]);
  for (int i = 0; i < kNumCueFunctions; ++i) f.push_back(local[i]);
  for (int i = 0; i < kNumCueFunctions; ++i) f.push_back(global[i]);

  // 14) scale, 15) precision.
  f.push_back(static_cast<double>(x.q.Scale()));
  f.push_back(static_cast<double>(x.q.precision));

  // 16) unit.
  f.push_back(UnitFeature(x.q));

  // 17) exact-match count among single-cell table mentions.
  int exact = 0;
  for (const table::TableMention& t : doc.table_mentions) {
    if (t.is_virtual()) continue;
    if (quantity::RelativeDifference(x.q.value, t.value) < 1e-9) ++exact;
  }
  f.push_back(static_cast<double>(exact));

  (void)config;
  BRIQ_CHECK(static_cast<int>(f.size()) == kNumFeatures)
      << "tagger feature count drifted";
  return f;
}

util::Status TextMentionTagger::EmitTrainingSamples(
    const PreparedDocument& doc, ml::SampleSink* sink) const {
  // Label extracted mentions from ground truth; unmatched mentions are
  // single-cell by default (distractors carry no aggregation cues).
  std::vector<int> label(doc.text_mentions.size(), kSingle);
  for (const MatchedGroundTruth& m : MatchGroundTruth(doc)) {
    if (m.text_idx >= 0) {
      label[m.text_idx] = LabelOf(m.gt->target.func);
    }
  }
  for (size_t i = 0; i < doc.text_mentions.size(); ++i) {
    BRIQ_RETURN_IF_ERROR(sink->Add(Features(doc, i, *config_), label[i]));
  }
  return util::Status::OK();
}

void TextMentionTagger::Train(
    const std::vector<const PreparedDocument*>& docs) {
  ml::InMemorySampleSink sink(kNumFeatures);
  for (const PreparedDocument* doc : docs) {
    const util::Status status = EmitTrainingSamples(*doc, &sink);
    BRIQ_CHECK(status.ok()) << "in-memory sample emission cannot fail: "
                            << status.ToString();
  }
  const util::Status status =
      TrainFromSource(ml::DatasetSampleSource(&sink.dataset()));
  BRIQ_CHECK(status.ok()) << "in-memory training cannot fail: "
                          << status.ToString();
}

util::Status TextMentionTagger::TrainFromSource(
    const ml::SampleSource& source) {
  forest_ = ml::RandomForest();
  flat_.Clear();
  if (source.size() == 0) return util::Status::OK();
  forest_.Fit(source, config_->tagger_forest);
  flat_.Compile(forest_);
  return util::Status::OK();
}

util::Status TextMentionTagger::Save(std::ostream& out) const {
  return forest_.Save(out);
}

util::Status TextMentionTagger::Load(std::istream& in) {
  ml::RandomForest forest;
  BRIQ_RETURN_IF_ERROR(forest.Load(in));
  if (forest.fitted() && forest.num_features() != kNumFeatures) {
    return util::Status::FailedPrecondition(
        "tagger model was trained with " +
        std::to_string(forest.num_features()) + " features, expected " +
        std::to_string(kNumFeatures));
  }
  forest_ = std::move(forest);
  flat_.Compile(forest_);
  return util::Status::OK();
}

TextMentionTagger::Tag TextMentionTagger::Predict(const PreparedDocument& doc,
                                                  size_t text_idx) const {
  Tag tag;
  if (!trained()) {
    // Cue-word fallback for untrained use.
    const table::TextMention& x = doc.text_mentions[text_idx];
    tag.func = InferAggregateFunction(doc.paragraph_tokens[x.paragraph],
                                      x.token_pos, config_->agg_cue_window);
    tag.confidence = 0.5;
    return tag;
  }
  std::vector<double> f = Features(doc, text_idx, *config_);
  double proba[kNumLabels];
  if (config_->flat_forest && flat_.compiled()) {
    flat_.PredictProba(f.data(), proba);
  } else {
    forest_.PredictProba(f.data(), proba);
  }
  int best = static_cast<int>(
      std::max_element(proba, proba + forest_.num_classes()) - proba);
  tag.confidence = proba[best];
  // Precision-first: aggregate predictions need to clear the confidence
  // floor, otherwise fall back to single-cell (which prunes nothing).
  if (best != kSingle && tag.confidence < config_->tagger_min_confidence) {
    best = kSingle;
    tag.confidence = proba[kSingle];
  }
  tag.func = FunctionOf(static_cast<Label>(best));
  return tag;
}

}  // namespace briq::core
