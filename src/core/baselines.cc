#include "core/baselines.h"

#include "core/features.h"
#include "core/resolution.h"

namespace briq::core {

DocumentAlignment RfOnlyAligner::Align(const PreparedDocument& doc) const {
  DocumentAlignment alignment;
  FeatureComputer features(doc, system_->config());
  const auto& classifier = system_->classifier();

  for (size_t x = 0; x < doc.text_mentions.size(); ++x) {
    int best = -1;
    double best_score = 0.0;
    for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
      double s = classifier.Score(features, x, t);
      if (best < 0 || s > best_score) {
        best = static_cast<int>(t);
        best_score = s;
      }
    }
    if (best >= 0) {
      alignment.decisions.push_back(
          AlignmentDecision{static_cast<int>(x), best, best_score});
    }
  }
  return alignment;
}

DocumentAlignment RwrOnlyAligner::Align(const PreparedDocument& doc) const {
  // Every mention pair is a candidate, scored by the uniform feature
  // combination (no trained prior, no pruning).
  FeatureComputer features(doc, *config_);
  std::vector<std::vector<Candidate>> candidates(doc.text_mentions.size());
  for (size_t x = 0; x < doc.text_mentions.size(); ++x) {
    candidates[x].reserve(doc.table_mentions.size());
    for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
      double s = features.UniformSimilarity(x, t);
      if (s > 0.0) {
        candidates[x].push_back(Candidate{x, t, s});
      }
    }
  }
  GlobalResolver resolver(config_);
  return resolver.Resolve(doc, candidates);
}

}  // namespace briq::core
