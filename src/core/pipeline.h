#ifndef BRIQ_CORE_PIPELINE_H_
#define BRIQ_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/classifier.h"
#include "core/config.h"
#include "core/extraction.h"
#include "core/filtering.h"
#include "core/resolution.h"
#include "core/tagger.h"
#include "util/status.h"

namespace briq::core {

/// The full BriQ system (paper Fig. 2): mention-pair classifier + text
/// mention tagger + adaptive filtering + random-walk global resolution.
///
/// Usage:
///   BriqSystem briq(config);
///   briq.Train(train_docs);                   // prepared training docs
///   DocumentAlignment a = briq.Align(doc);    // inference
class BriqSystem : public Aligner {
 public:
  explicit BriqSystem(BriqConfig config);

  /// Trains the tagger and the mention-pair classifier on prepared
  /// documents carrying ground truth.
  util::Status Train(const std::vector<const PreparedDocument*>& docs);

  DocumentAlignment Align(const PreparedDocument& doc) const override;

  /// Align and additionally expose the adaptive-filter telemetry
  /// (Table VI).
  DocumentAlignment AlignWithTrace(const PreparedDocument& doc,
                                   FilterTrace* trace) const;

  std::string name() const override { return "BriQ"; }

  bool trained() const { return classifier_.trained(); }
  const BriqConfig& config() const { return config_; }
  BriqConfig* mutable_config() { return &config_; }
  const MentionPairClassifier& classifier() const { return classifier_; }
  const TextMentionTagger& tagger() const { return tagger_; }

 private:
  BriqConfig config_;
  TextMentionTagger tagger_;
  MentionPairClassifier classifier_;
  AdaptiveFilter filter_;
  GlobalResolver resolver_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_PIPELINE_H_
