#ifndef BRIQ_CORE_PIPELINE_H_
#define BRIQ_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/classifier.h"
#include "core/config.h"
#include "core/extraction.h"
#include "core/filtering.h"
#include "core/resolution.h"
#include "core/tagger.h"
#include "util/status.h"

namespace briq::core {

class StreamingTrainer;

/// The full BriQ system (paper Fig. 2): mention-pair classifier + text
/// mention tagger + adaptive filtering + random-walk global resolution.
///
/// Usage:
///   BriqSystem briq(config);
///   briq.Train(train_docs);                   // prepared training docs
///   DocumentAlignment a = briq.Align(doc);    // inference
///
/// Train() holds every prepared document in memory; for corpora that do
/// not fit, core/streaming_trainer.h trains the same components shard by
/// shard in bounded memory (bit-identical result), and SaveModel /
/// LoadModel separate training from serving entirely.
class BriqSystem : public Aligner {
 public:
  explicit BriqSystem(BriqConfig config);

  /// Trains the tagger and the mention-pair classifier on prepared
  /// documents carrying ground truth. A thin adapter over the streaming
  /// emission path (classifier/tagger EmitTrainingSamples +
  /// TrainFromSource); produces a forest bit-identical to a
  /// StreamingTrainer run over the same documents.
  util::Status Train(const std::vector<const PreparedDocument*>& docs);

  /// Writes the trained tagger + classifier to `path` in the checksummed
  /// "briq-model-v1" binary container. Requires a trained classifier.
  util::Status SaveModel(const std::string& path) const;

  /// Restores a model written by SaveModel, replacing any trained state.
  /// Validates that the stored forests match this config's feature
  /// counts (a model trained under a different ablation mask is rejected).
  util::Status LoadModel(const std::string& path);

  DocumentAlignment Align(const PreparedDocument& doc) const override;

  /// Align and additionally expose the adaptive-filter telemetry
  /// (Table VI).
  DocumentAlignment AlignWithTrace(const PreparedDocument& doc,
                                   FilterTrace* trace) const;

  std::string name() const override { return "BriQ"; }

  bool trained() const { return classifier_.trained(); }
  const BriqConfig& config() const { return config_; }
  BriqConfig* mutable_config() { return &config_; }
  const MentionPairClassifier& classifier() const { return classifier_; }
  const TextMentionTagger& tagger() const { return tagger_; }

 private:
  // The streaming trainer feeds the tagger and classifier incrementally —
  // it is the out-of-core implementation of Train(), not an outside user.
  friend class StreamingTrainer;

  BriqConfig config_;
  TextMentionTagger tagger_;
  MentionPairClassifier classifier_;
  AdaptiveFilter filter_;
  GlobalResolver resolver_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_PIPELINE_H_
