#include "core/resolution.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "graph/graph.h"
#include "graph/random_walk.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/similarity.h"
#include "util/string_util.h"

namespace briq::core {

DocumentAlignment GlobalResolver::Resolve(
    const PreparedDocument& doc,
    const std::vector<std::vector<Candidate>>& candidates) const {
  DocumentAlignment alignment;
  const size_t num_text = doc.text_mentions.size();
  BRIQ_CHECK(candidates.size() == num_text)
      << "candidate list / mention count mismatch";

  // ---------------------------------------------------------------------
  // Graph construction (§VI-A).
  // ---------------------------------------------------------------------
  // Nodes: all text mentions, all single-cell table mentions, plus every
  // virtual cell that survived filtering for some mention.
  std::vector<bool> table_in_graph(doc.table_mentions.size(), false);
  for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
    if (!doc.table_mentions[t].is_virtual()) table_in_graph[t] = true;
  }
  for (const auto& list : candidates) {
    for (const Candidate& c : list) table_in_graph[c.table_idx] = true;
  }

  graph::Graph g;
  std::vector<int> text_node(num_text, -1);
  std::vector<int> table_node(doc.table_mentions.size(), -1);
  for (size_t x = 0; x < num_text; ++x) text_node[x] = g.AddNode();
  for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
    if (table_in_graph[t]) table_node[t] = g.AddNode();
  }

  // Text-text edges: proximity and/or surface similarity.
  for (size_t i = 0; i < num_text; ++i) {
    for (size_t j = i + 1; j < num_text; ++j) {
      const size_t pi = doc.GlobalTokenPos(doc.text_mentions[i]);
      const size_t pj = doc.GlobalTokenPos(doc.text_mentions[j]);
      const size_t dist = pi > pj ? pi - pj : pj - pi;
      const double strsim = util::JaroWinklerSimilarity(
          util::ToLower(doc.text_mentions[i].surface()),
          util::ToLower(doc.text_mentions[j].surface()));
      if (static_cast<int>(dist) > config_->text_edge_max_distance &&
          strsim < config_->text_edge_min_strsim) {
        continue;
      }
      const double fprox =
          doc.total_tokens == 0
              ? 0.0
              : 1.0 - std::min(1.0, static_cast<double>(dist) /
                                        static_cast<double>(doc.total_tokens));
      const double w = config_->lambda_proximity * fprox +
                       config_->lambda_strsim * strsim;
      if (w > 0.0) g.AddEdge(text_node[i], text_node[j], w);
    }
  }

  // Table-table edges: single cells sharing a row or column (uniform
  // weight), and virtual cells linked to their constituent cells.
  {
    // Index single-cell mentions by (table, row) and (table, col).
    std::unordered_map<int64_t, std::vector<size_t>> by_row;
    std::unordered_map<int64_t, std::vector<size_t>> by_col;
    auto key = [](int tbl, int rc) {
      return (static_cast<int64_t>(tbl) << 32) | static_cast<uint32_t>(rc);
    };
    std::unordered_map<int64_t, size_t> single_at;  // (tbl, row, col) packed
    auto cell_key = [](int tbl, int r, int c) {
      return (static_cast<int64_t>(tbl) << 40) |
             (static_cast<int64_t>(r) << 20) | c;
    };
    for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
      const table::TableMention& m = doc.table_mentions[t];
      if (m.is_virtual()) continue;
      by_row[key(m.table_index, m.cells[0].row)].push_back(t);
      by_col[key(m.table_index, m.cells[0].col)].push_back(t);
      single_at[cell_key(m.table_index, m.cells[0].row, m.cells[0].col)] = t;
    }
    const double w = config_->table_edge_weight;
    auto connect_group = [&](const std::vector<size_t>& group) {
      for (size_t a = 0; a < group.size(); ++a) {
        for (size_t b = a + 1; b < group.size(); ++b) {
          if (!g.HasEdge(table_node[group[a]], table_node[group[b]])) {
            g.AddEdge(table_node[group[a]], table_node[group[b]], w);
          }
        }
      }
    };
    for (const auto& [k, group] : by_row) connect_group(group);
    for (const auto& [k, group] : by_col) connect_group(group);

    for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
      const table::TableMention& m = doc.table_mentions[t];
      if (!m.is_virtual() || table_node[t] < 0) continue;
      for (const table::CellRef& ref : m.cells) {
        auto it = single_at.find(cell_key(m.table_index, ref.row, ref.col));
        if (it == single_at.end()) continue;
        if (!g.HasEdge(table_node[t], table_node[it->second])) {
          g.AddEdge(table_node[t], table_node[it->second], w);
        }
      }
    }
  }

  // Text-table edges: the surviving candidates, weighted by the classifier
  // prior sigma.
  for (size_t x = 0; x < num_text; ++x) {
    for (const Candidate& c : candidates[x]) {
      if (c.score <= 0.0) continue;
      g.AddEdge(text_node[x], table_node[c.table_idx], c.score);
    }
  }

  // ---------------------------------------------------------------------
  // Entropy-based ordering (§VI-B).
  // ---------------------------------------------------------------------
  std::vector<size_t> order;
  std::vector<double> entropy(num_text, 0.0);
  for (size_t x = 0; x < num_text; ++x) {
    if (candidates[x].empty()) continue;
    std::vector<double> scores;
    scores.reserve(candidates[x].size());
    for (const Candidate& c : candidates[x]) scores.push_back(c.score);
    entropy[x] = ml::NormalizedEntropy(scores);
    order.push_back(x);
  }
  if (config_->entropy_ordering) {
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return entropy[a] < entropy[b]; });
  }

  // ---------------------------------------------------------------------
  // Algorithm 1: RWR per mention, best-first decisions, graph updates.
  // ---------------------------------------------------------------------
  // Walk/iteration/convergence tallies accumulate locally and reach the
  // shared counters once per document.
  static obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  static obs::Counter* walks_counter = registry.GetCounter("briq.rwr.walks");
  static obs::Counter* iterations_counter =
      registry.GetCounter("briq.rwr.iterations");
  static obs::Counter* converged_counter =
      registry.GetCounter("briq.rwr.converged");
  static obs::Counter* decisions_counter =
      registry.GetCounter("briq.rwr.decisions");
  uint64_t walks = 0;
  uint64_t iterations_total = 0;
  uint64_t converged = 0;

  for (size_t x : order) {
    int iterations = 0;
    std::vector<double> pi = graph::RandomWalkWithRestart(
        g, text_node[x], config_->rwr, &iterations);
    ++walks;
    iterations_total += static_cast<uint64_t>(iterations);
    if (iterations < config_->rwr.max_iterations) ++converged;

    const Candidate* best = nullptr;
    double best_score = 0.0;
    for (const Candidate& c : candidates[x]) {
      // Edges of already-decided mentions were deleted; a candidate whose
      // text-table edge is gone can still win on its prior (the candidate
      // list is per-mention, only x's own edges matter here).
      const double overall = config_->alpha * pi[table_node[c.table_idx]] +
                             config_->beta * c.score;
      if (best == nullptr || overall > best_score) {
        best = &c;
        best_score = overall;
      }
    }

    if (best != nullptr && best_score > config_->epsilon) {
      alignment.decisions.push_back(AlignmentDecision{
          static_cast<int>(x), static_cast<int>(best->table_idx), best_score});
      // Keep only the accepted edge.
      if (config_->edge_deletion) {
        for (const Candidate& c : candidates[x]) {
          if (c.table_idx != best->table_idx &&
              g.HasEdge(text_node[x], table_node[c.table_idx])) {
            g.RemoveEdge(text_node[x], table_node[c.table_idx]);
          }
        }
      }
    } else if (config_->edge_deletion) {
      // No alignment: drop all of x's text-table edges.
      for (const Candidate& c : candidates[x]) {
        if (g.HasEdge(text_node[x], table_node[c.table_idx])) {
          g.RemoveEdge(text_node[x], table_node[c.table_idx]);
        }
      }
    }
  }

  walks_counter->Add(walks);
  iterations_counter->Add(iterations_total);
  converged_counter->Add(converged);
  decisions_counter->Add(alignment.decisions.size());
  return alignment;
}

}  // namespace briq::core
