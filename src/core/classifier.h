#ifndef BRIQ_CORE_CLASSIFIER_H_
#define BRIQ_CORE_CLASSIFIER_H_

#include <iosfwd>
#include <map>
#include <vector>

#include "core/config.h"
#include "core/extraction.h"
#include "core/features.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "ml/sample_sink.h"
#include "util/status.h"

namespace briq::core {

/// Stage-2 mention-pair classifier (paper §IV): a Random Forest over the
/// 12 pair features that scores each (text mention, table mention)
/// candidate in isolation. Scores serve as pruning signal for the adaptive
/// filter and as the prior sigma for global resolution.
class MentionPairClassifier {
 public:
  /// Per-type positive/negative sample counts of the last Train call
  /// (reproduces the paper's Table I).
  struct TrainingStats {
    std::map<table::AggregateFunction, size_t> positives;
    std::map<table::AggregateFunction, size_t> negatives;
    size_t total_positives = 0;
    size_t total_negatives = 0;
  };

  explicit MentionPairClassifier(const BriqConfig* config)
      : config_(config) {}

  /// Trains on ground-truth pairs of the prepared documents. Each positive
  /// pair is complemented with config.negatives_per_positive hard negatives
  /// — the non-matching table mentions numerically closest to the text
  /// mention (paper §VII-B). Class imbalance is countered by balanced
  /// sample weights inside the forest. A thin adapter over
  /// EmitTrainingSamples + TrainFromSource; sample emission is fully
  /// deterministic in document order, so this needs no Rng.
  void Train(const std::vector<const PreparedDocument*>& docs);

  /// Streams one document's training rows — the ground-truth positive and
  /// its hard negatives per matched pair, in deterministic order — into
  /// `sink`, accumulating the per-type counts into `stats`. The streaming
  /// trainer calls this per document; Train() above is a loop over it.
  /// `features` must be a computer over `doc` with this config.
  util::Status EmitTrainingSamples(const PreparedDocument& doc,
                                   const FeatureComputer& features,
                                   ml::SampleSink* sink,
                                   TrainingStats* stats) const;

  /// Fits the forest from already-emitted rows. `stats` are the emission
  /// counts belonging to the source's rows (kept for Table I reporting).
  /// Empty or single-class sources leave the classifier untrained (with a
  /// warning), mirroring Train().
  util::Status TrainFromSource(const ml::SampleSource& source,
                               TrainingStats stats);

  /// Serializes forest + training stats (versioned payload inside the
  /// briq-model-v1 container, see BriqSystem::SaveModel).
  util::Status Save(std::ostream& out) const;
  util::Status Load(std::istream& in);

  /// P(pair is related) in [0, 1]. Allocation-free in steady state (the
  /// feature vector lives in per-thread scratch) and safe to call from
  /// concurrent AlignBatch workers.
  double Score(const FeatureComputer& features, size_t text_idx,
               size_t table_idx) const;

  /// Batch scoring fast path: out[i] = Score(features, text_idx,
  /// table_idxs[i]) for i in [0, n), bit-identical to the scalar path.
  /// With config.flat_forest the rows are featurized once per text mention
  /// (FeatureComputer::ComputeBatch) and evaluated through the compiled
  /// FlatForest tile loop; otherwise it degrades to a scalar Score loop.
  /// Thread-safe like Score (row matrix is per-thread scratch).
  void ScoreBatch(const FeatureComputer& features, size_t text_idx,
                  const size_t* table_idxs, size_t n, double* out) const;

  bool trained() const { return forest_.fitted(); }
  const TrainingStats& stats() const { return stats_; }
  const ml::RandomForest& forest() const { return forest_; }
  const ml::FlatForest& flat_forest() const { return flat_; }

 private:
  const BriqConfig* config_;
  ml::RandomForest forest_;
  /// Inference layout compiled from forest_ at train-finish / model-load
  /// time (ml::FlatForest); immutable between recompiles, shared read-only
  /// by scoring threads.
  ml::FlatForest flat_;
  TrainingStats stats_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_CLASSIFIER_H_
