#ifndef BRIQ_CORE_CLASSIFIER_H_
#define BRIQ_CORE_CLASSIFIER_H_

#include <map>
#include <vector>

#include "core/config.h"
#include "core/extraction.h"
#include "core/features.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace briq::core {

/// Stage-2 mention-pair classifier (paper §IV): a Random Forest over the
/// 12 pair features that scores each (text mention, table mention)
/// candidate in isolation. Scores serve as pruning signal for the adaptive
/// filter and as the prior sigma for global resolution.
class MentionPairClassifier {
 public:
  /// Per-type positive/negative sample counts of the last Train call
  /// (reproduces the paper's Table I).
  struct TrainingStats {
    std::map<table::AggregateFunction, size_t> positives;
    std::map<table::AggregateFunction, size_t> negatives;
    size_t total_positives = 0;
    size_t total_negatives = 0;
  };

  explicit MentionPairClassifier(const BriqConfig* config)
      : config_(config) {}

  /// Trains on ground-truth pairs of the prepared documents. Each positive
  /// pair is complemented with config.negatives_per_positive hard negatives
  /// — the non-matching table mentions numerically closest to the text
  /// mention (paper §VII-B). Class imbalance is countered by balanced
  /// sample weights inside the forest.
  void Train(const std::vector<const PreparedDocument*>& docs,
             util::Rng* rng);

  /// P(pair is related) in [0, 1]. Allocation-free in steady state (the
  /// feature vector lives in per-thread scratch) and safe to call from
  /// concurrent AlignBatch workers.
  double Score(const FeatureComputer& features, size_t text_idx,
               size_t table_idx) const;

  bool trained() const { return forest_.fitted(); }
  const TrainingStats& stats() const { return stats_; }
  const ml::RandomForest& forest() const { return forest_; }

 private:
  const BriqConfig* config_;
  ml::RandomForest forest_;
  TrainingStats stats_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_CLASSIFIER_H_
