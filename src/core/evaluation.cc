#include "core/evaluation.h"

#include "core/gt_matching.h"

namespace briq::core {

void EvalResult::Merge(const EvalResult& other) {
  overall += other.overall;
  for (const auto& [func, counts] : other.by_type) {
    by_type[func] += counts;
  }
}

EvalResult EvaluateDocument(const PreparedDocument& doc,
                            const DocumentAlignment& alignment) {
  EvalResult result;
  std::vector<MatchedGroundTruth> matched = MatchGroundTruth(doc);

  // Ground truth per extracted text mention.
  std::map<int, const MatchedGroundTruth*> gt_by_text;
  for (const MatchedGroundTruth& m : matched) {
    if (m.text_idx >= 0) gt_by_text[m.text_idx] = &m;
  }

  std::map<int, bool> gt_satisfied;  // text_idx -> correctly aligned

  for (const AlignmentDecision& d : alignment.decisions) {
    auto it = gt_by_text.find(d.text_idx);
    const auto predicted_func = doc.table_mentions[d.table_idx].func;
    if (it != gt_by_text.end() && it->second->table_idx == d.table_idx) {
      ++result.overall.true_positives;
      ++result.by_type[predicted_func].true_positives;
      gt_satisfied[d.text_idx] = true;
    } else {
      ++result.overall.false_positives;
      ++result.by_type[predicted_func].false_positives;
    }
  }

  // Unsatisfied ground truth: false negatives (extraction misses count
  // too — text_idx < 0 can never be satisfied).
  for (const MatchedGroundTruth& m : matched) {
    const bool satisfied =
        m.text_idx >= 0 && gt_satisfied.count(m.text_idx) > 0;
    if (!satisfied) {
      ++result.overall.false_negatives;
      ++result.by_type[m.gt->target.func].false_negatives;
    }
  }
  return result;
}

EvalResult EvaluateCorpus(const Aligner& aligner,
                          const std::vector<PreparedDocument>& docs) {
  EvalResult total;
  for (const PreparedDocument& doc : docs) {
    total.Merge(EvaluateDocument(doc, aligner.Align(doc)));
  }
  return total;
}

BriqConfig ConfigWithoutGroup(const BriqConfig& base, FeatureGroup group) {
  BriqConfig config = base;
  config.active_features.clear();
  for (int f = 0; f < kNumPairFeatures; ++f) {
    if (FeatureGroupOf(f) != group) config.active_features.push_back(f);
  }
  return config;
}

}  // namespace briq::core
