#ifndef BRIQ_CORE_ILP_RESOLUTION_H_
#define BRIQ_CORE_ILP_RESOLUTION_H_

#include <cstddef>

#include "core/aligner.h"
#include "core/filtering.h"

namespace briq::core {

/// Exact joint inference by constraint optimization — the alternative the
/// paper "considered ... and experimented with, but that approach did not
/// scale sufficiently well" (§VI). Implemented as branch-and-bound over
/// the filtered candidate lists.
///
/// Objective: maximize  sum of chosen pair scores
///                      + table_coherence_bonus * (#chosen pairs that land
///                        in a table already chosen by an earlier mention)
/// subject to  (a) at most one target per text mention (possibly none),
///             (b) each single-cell target used by at most one mention.
///
/// The search space is prod_x (|candidates(x)| + 1); the node cap bounds
/// runtime, at the cost of optimality (reported via `SearchStats`). The
/// scaling bench demonstrates the blowup that pushed the paper to random
/// walks.
class IlpResolver {
 public:
  struct Options {
    double table_coherence_bonus = 0.08;
    /// Same acceptance semantics as the RWR resolver.
    double epsilon = 0.05;
    /// Abort cap on explored branch-and-bound nodes.
    size_t max_nodes = 2000000;
  };

  struct SearchStats {
    size_t nodes_explored = 0;
    bool optimal = true;  ///< false when max_nodes was hit
    double objective = 0.0;
  };

  IlpResolver() = default;
  explicit IlpResolver(Options options) : options_(options) {}

  DocumentAlignment Resolve(const PreparedDocument& doc,
                            const std::vector<std::vector<Candidate>>& candidates,
                            SearchStats* stats = nullptr) const;

 private:
  Options options_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_ILP_RESOLUTION_H_
