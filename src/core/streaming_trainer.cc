#include "core/streaming_trainer.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/classifier.h"
#include "core/extraction.h"
#include "core/features.h"
#include "core/tagger.h"
#include "corpus/shard_io.h"
#include "ml/sample_sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace briq::core {

namespace {

/// briq.train.* instruments (DESIGN.md §5f). Counters are cumulative
/// across runs like every other layer's; the queue instruments live under
/// `briq.train.*` via QueueTelemetry.
struct TrainMetrics {
  obs::Counter* documents;
  obs::Counter* samples;
  obs::Counter* tagger_samples;
  obs::Counter* spill_bytes;
  obs::Histogram* fit_seconds;

  static const TrainMetrics& Get() {
    static TrainMetrics m = [] {
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      TrainMetrics metrics;
      metrics.documents = registry.GetCounter("briq.train.documents");
      metrics.samples = registry.GetCounter("briq.train.samples");
      metrics.tagger_samples = registry.GetCounter("briq.train.tagger_samples");
      metrics.spill_bytes = registry.GetCounter("briq.train.spill_bytes");
      metrics.fit_seconds = registry.GetHistogram(
          "briq.train.fit_seconds", obs::DefaultLatencyBuckets());
      return metrics;
    }();
    return m;
  }
};

/// One document's worth of training rows, buffered by a worker and
/// replayed into the shared sinks by the in-order emitter. Buffering whole
/// batches (instead of locking per row) is what makes the global row order
/// equal to the sequential document order at any thread count.
struct DocBatch {
  DocBatch(int num_pair_features, int num_tagger_features)
      : pair_rows(num_pair_features), tagger_rows(num_tagger_features) {}

  ml::InMemorySampleSink pair_rows;
  ml::InMemorySampleSink tagger_rows;
  MentionPairClassifier::TrainingStats stats;
};

struct WorkItem {
  size_t index = 0;
  corpus::Document doc;
};

/// Reordering emitter, same discipline as streaming_aligner.cc: batches
/// park in `ready` until every earlier document has been replayed, and the
/// emit window bounds the buffer at O(queue + threads) documents.
struct EmitState {
  std::mutex mu;
  std::condition_variable advanced;
  std::map<size_t, DocBatch> ready;
  size_t next_emit = 0;
  size_t window = 0;
  bool failed = false;
  /// First sink error (spill I/O); set together with `failed`.
  util::Status sink_status = util::Status::OK();
};

void MergeStats(const MentionPairClassifier::TrainingStats& from,
                MentionPairClassifier::TrainingStats* into) {
  for (const auto& [func, count] : from.positives) {
    into->positives[func] += count;
  }
  for (const auto& [func, count] : from.negatives) {
    into->negatives[func] += count;
  }
  into->total_positives += from.total_positives;
  into->total_negatives += from.total_negatives;
}

/// Replays one batch into the shared sinks + stats. Caller holds no lock;
/// this is only ever invoked from the emitter's critical section or the
/// inline path, so sink Add calls are strictly ordered.
util::Status ReplayBatch(const DocBatch& batch, ml::SampleSink* pair_sink,
                         ml::SampleSink* tagger_sink,
                         MentionPairClassifier::TrainingStats* stats) {
  const ml::Dataset& pairs = batch.pair_rows.dataset();
  for (size_t i = 0; i < pairs.size(); ++i) {
    BRIQ_RETURN_IF_ERROR(
        pair_sink->Add(pairs.row(i), pairs.label(i), pairs.weight(i)));
  }
  const ml::Dataset& tags = batch.tagger_rows.dataset();
  for (size_t i = 0; i < tags.size(); ++i) {
    BRIQ_RETURN_IF_ERROR(
        tagger_sink->Add(tags.row(i), tags.label(i), tags.weight(i)));
  }
  MergeStats(batch.stats, stats);
  const TrainMetrics& metrics = TrainMetrics::Get();
  metrics.documents->Add();
  metrics.samples->Add(pairs.size());
  metrics.tagger_samples->Add(tags.size());
  return util::Status::OK();
}

/// Parks one batch and replays the contiguous prefix. Mirrors
/// streaming_aligner.cc's EmitInOrder, plus error propagation: a sink
/// failure (disk full, say) flips `failed` so the whole pipeline drains.
void EmitInOrder(EmitState* state, size_t index, DocBatch batch,
                 ml::SampleSink* pair_sink, ml::SampleSink* tagger_sink,
                 MentionPairClassifier::TrainingStats* stats) {
  std::unique_lock<std::mutex> lock(state->mu);
  state->advanced.wait(lock, [state, index] {
    return state->failed || index < state->next_emit + state->window;
  });
  if (state->failed) return;
  state->ready.emplace(index, std::move(batch));
  while (!state->ready.empty() &&
         state->ready.begin()->first == state->next_emit) {
    auto node = state->ready.extract(state->ready.begin());
    util::Status status =
        ReplayBatch(node.mapped(), pair_sink, tagger_sink, stats);
    if (!status.ok()) {
      state->failed = true;
      state->sink_status = std::move(status);
      break;
    }
    ++state->next_emit;
  }
  lock.unlock();
  state->advanced.notify_all();
}

/// Per-document work shared by the inline and pooled paths: prepare,
/// compute features, emit both components' rows into a local batch.
/// In-memory emission cannot fail, so errors here are programming bugs.
DocBatch BuildBatch(const corpus::Document& doc, const BriqConfig& config,
                    const TextMentionTagger& tagger,
                    const MentionPairClassifier& classifier,
                    int num_pair_features) {
  obs::ScopedSpan document_span("train_document");
  DocBatch batch(num_pair_features, TextMentionTagger::kNumFeatures);
  PreparedDocument prepared = PrepareDocument(doc, config);
  FeatureComputer features(prepared, config);
  util::Status status = tagger.EmitTrainingSamples(prepared, &batch.tagger_rows);
  BRIQ_CHECK(status.ok()) << "tagger emission failed: " << status.ToString();
  status = classifier.EmitTrainingSamples(prepared, features, &batch.pair_rows,
                                          &batch.stats);
  BRIQ_CHECK(status.ok()) << "classifier emission failed: "
                          << status.ToString();
  return batch;
}

}  // namespace

StreamingTrainer::StreamingTrainer(BriqSystem* system,
                                   StreamingTrainOptions options)
    : system_(system), options_(std::move(options)) {
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
}

util::Status StreamingTrainer::Train(const DocumentSource& source) {
  obs::ScopedSpan train_span("train");
  const BriqConfig& config = system_->config_;
  const int num_pair_features = NumActivePairFeatures(config);
  const bool spill = !options_.spill_dir.empty();

  // The sinks that accumulate the full training streams. Spill mode
  // replaces the O(samples) in-memory datasets with checksummed
  // briq-samples-v1 files; reservoir seeds derive from the config seed so
  // capped runs are reproducible.
  std::unique_ptr<ml::InMemorySampleSink> pair_mem;
  std::unique_ptr<ml::InMemorySampleSink> tagger_mem;
  std::unique_ptr<ml::SpillSampleSink> pair_spill;
  std::unique_ptr<ml::SpillSampleSink> tagger_spill;
  ml::SampleSink* pair_sink = nullptr;
  ml::SampleSink* tagger_sink = nullptr;
  if (spill) {
    pair_spill = std::make_unique<ml::SpillSampleSink>(
        ml::SpillSinkOptions{options_.spill_dir + "/classifier.samples",
                             options_.max_classifier_samples,
                             static_cast<uint64_t>(config.seed) + 1},
        num_pair_features);
    tagger_spill = std::make_unique<ml::SpillSampleSink>(
        ml::SpillSinkOptions{options_.spill_dir + "/tagger.samples",
                             options_.max_tagger_samples,
                             static_cast<uint64_t>(config.seed) + 2},
        TextMentionTagger::kNumFeatures);
    pair_sink = pair_spill.get();
    tagger_sink = tagger_spill.get();
  } else {
    pair_mem = std::make_unique<ml::InMemorySampleSink>(num_pair_features);
    tagger_mem =
        std::make_unique<ml::InMemorySampleSink>(TextMentionTagger::kNumFeatures);
    pair_sink = pair_mem.get();
    tagger_sink = tagger_mem.get();
  }

  MentionPairClassifier::TrainingStats stats;
  size_t documents = 0;
  util::Status status = util::Status::OK();

  int num_threads = options_.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads < 1) num_threads = 1;
  }

  if (num_threads <= 1) {
    // Inline path: one document live at a time, rows flow straight into
    // the sinks in read order.
    while (true) {
      auto next = source();
      if (!next.ok()) {
        status = next.status();
        break;
      }
      if (!next->has_value()) break;
      DocBatch batch = BuildBatch(**next, config, system_->tagger_,
                                  system_->classifier_, num_pair_features);
      status = ReplayBatch(batch, pair_sink, tagger_sink, &stats);
      if (!status.ok()) break;
      ++documents;
    }
  } else {
    static obs::QueueTelemetry queue_telemetry("briq.train");
    util::BoundedQueue<WorkItem> queue(options_.queue_capacity,
                                       queue_telemetry.observer());
    EmitState emit;
    emit.window = options_.queue_capacity + static_cast<size_t>(num_threads);

    util::ThreadPool pool(num_threads);
    std::atomic<bool> failed{false};
    std::vector<std::future<void>> workers;
    workers.reserve(static_cast<size_t>(num_threads));
    for (int w = 0; w < num_threads; ++w) {
      workers.push_back(pool.Submit([this, &queue, &emit, &failed, &config,
                                     &stats, pair_sink, tagger_sink,
                                     num_pair_features] {
        try {
          while (std::optional<WorkItem> item = queue.Pop()) {
            if (failed.load(std::memory_order_relaxed)) continue;
            DocBatch batch =
                BuildBatch(item->doc, config, system_->tagger_,
                           system_->classifier_, num_pair_features);
            EmitInOrder(&emit, item->index, std::move(batch), pair_sink,
                        tagger_sink, &stats);
          }
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lock(emit.mu);
            emit.failed = true;
          }
          emit.advanced.notify_all();
          while (queue.Pop().has_value()) {
          }
          throw;  // resurfaces from the worker future below
        }
      }));
    }

    // The calling thread is the reader; Push blocks on a full queue, the
    // back-pressure that keeps peak memory at O(queue + threads) documents
    // plus the sinks.
    size_t index = 0;
    while (true) {
      auto next = source();
      if (!next.ok()) {
        status = next.status();
        break;
      }
      if (!next->has_value()) break;
      queue.Push(WorkItem{index++, std::move(**next)});
    }
    queue.Close();

    for (auto& worker : workers) {
      try {
        worker.get();
      } catch (const std::exception& e) {
        if (status.ok()) {
          status = util::Status::Internal(
              std::string("streaming train worker failed: ") + e.what());
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(emit.mu);
      if (status.ok() && !emit.sink_status.ok()) {
        status = emit.sink_status;
      }
      documents = emit.next_emit;
    }
  }

  BRIQ_RETURN_IF_ERROR(status);
  if (documents == 0) {
    return util::Status::InvalidArgument("no training documents");
  }
  BRIQ_RETURN_IF_ERROR(pair_sink->Finish());
  BRIQ_RETURN_IF_ERROR(tagger_sink->Finish());
  if (spill) {
    TrainMetrics::Get().spill_bytes->Add(pair_spill->bytes_written() +
                                         tagger_spill->bytes_written());
    BRIQ_LOG(Info) << "streaming trainer spilled "
                   << pair_spill->samples_retained() << " classifier + "
                   << tagger_spill->samples_retained() << " tagger samples ("
                   << (pair_spill->bytes_written() +
                       tagger_spill->bytes_written())
                   << " bytes) to " << options_.spill_dir;
  }

  // Fit tagger first, then classifier — the same component order as
  // BriqSystem::Train (the forests are independent, but keeping the order
  // identical keeps any future coupling honest).
  {
    obs::ScopedSpan fit_span("fit_tagger");
    obs::ScopedTimer timer(TrainMetrics::Get().fit_seconds);
    if (spill) {
      BRIQ_ASSIGN_OR_RETURN(ml::SpilledSampleSource tagger_source,
                            ml::SpilledSampleSource::Open(tagger_spill->path()));
      BRIQ_RETURN_IF_ERROR(system_->tagger_.TrainFromSource(tagger_source));
    } else {
      BRIQ_RETURN_IF_ERROR(system_->tagger_.TrainFromSource(
          ml::DatasetSampleSource(&tagger_mem->dataset())));
    }
  }
  {
    obs::ScopedSpan fit_span("fit_classifier");
    obs::ScopedTimer timer(TrainMetrics::Get().fit_seconds);
    if (spill) {
      BRIQ_ASSIGN_OR_RETURN(ml::SpilledSampleSource pair_source,
                            ml::SpilledSampleSource::Open(pair_spill->path()));
      BRIQ_RETURN_IF_ERROR(system_->classifier_.TrainFromSource(
          pair_source, std::move(stats)));
    } else {
      BRIQ_RETURN_IF_ERROR(system_->classifier_.TrainFromSource(
          ml::DatasetSampleSource(&pair_mem->dataset()), std::move(stats)));
    }
  }
  if (!system_->classifier_.trained()) {
    return util::Status::FailedPrecondition(
        "classifier training produced no usable data (no matched "
        "ground-truth pairs?)");
  }
  return util::Status::OK();
}

util::Status TrainOnShardedCorpus(BriqSystem* system,
                                  const std::string& directory,
                                  const std::string& stem,
                                  const StreamingTrainOptions& options) {
  auto reader = corpus::ShardedCorpusReader::Open(directory, stem);
  if (!reader.ok()) return reader.status();
  StreamingTrainer trainer(system, options);
  return trainer.Train([&reader] { return reader->Next(); });
}

}  // namespace briq::core
