#ifndef BRIQ_CORE_QKB_H_
#define BRIQ_CORE_QKB_H_

#include <optional>
#include <string>

#include "core/aligner.h"

namespace briq::core {

/// The quantity-knowledge-base baseline the paper considers and dismisses
/// (§VII-D, after [Ibrahim et al., CIKM 2016]): both the text mention and
/// the table cell are linked to a small, manually crafted KB of canonical
/// measures and units; a pair aligns iff both link to the same KB entry
/// with *exactly* matching canonical values.
///
/// Its two structural weaknesses are reproduced faithfully:
///  - only units registered in the KB can be linked at all (here: the
///    major currencies, percent, and dimensionless counts), and
///  - approximate or scaled mentions never match exactly, so they are
///    lost — which is why the paper "did not pursue this possible
///    baseline any further". The qkb bench quantifies both gaps.
class QkbAligner : public Aligner {
 public:
  QkbAligner() = default;

  DocumentAlignment Align(const PreparedDocument& doc) const override;
  std::string name() const override { return "QKB"; }

  /// A canonicalized quantity: KB measure id plus value in the measure's
  /// base unit. Returns nullopt when the unit is not registered.
  struct CanonicalQuantity {
    std::string measure;  // "currency:USD", "percent", "count"
    double value = 0.0;
  };
  static std::optional<CanonicalQuantity> Canonicalize(
      const std::string& unit, quantity::UnitCategory category, double value);
};

}  // namespace briq::core

#endif  // BRIQ_CORE_QKB_H_
