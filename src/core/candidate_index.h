#ifndef BRIQ_CORE_CANDIDATE_INDEX_H_
#define BRIQ_CORE_CANDIDATE_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/extraction.h"

namespace briq::core {

/// Per-document candidate pre-index of the classification fast path
/// (DESIGN.md §5g): buckets the table mentions by unit class and
/// value-magnitude log-bucket so the adaptive filter never featurizes
/// pairs it would provably drop. Probe() returns a *superset* of the
/// pairs the unfiltered loop keeps, in ascending table-mention order, so
/// running the filter's inline checks over the probed set yields exactly
/// the legacy candidate lists (enforced by tests/classify_parity_test.cc).
///
/// A pair (x, t) can be skipped without scoring only when one of the two
/// unconditional prunes of AdaptiveFilter::Filter is certain to fire:
///
///   - Strong unit mismatch: both sides carry units and they differ. The
///     index groups mentions by interned unit id; a probe for a mention
///     with unit u returns only unit-less cells and cells with unit u.
///   - Tagger-based aggregate prune: virtual cells whose function differs
///     from the predicted tag survive only when the values match within
///     relative 1e-9 — which forces equal signs and a |log2| gap below 2.
///     Virtual cells are therefore bucketed by (function, sign,
///     floor(log2 |value|)); a probe collects, for every non-predicted
///     function, only buckets {b-1, b, b+1} of the mention's own value
///     (zero and non-finite values use dedicated sentinel classes that
///     match exactly the pairs RelativeDifference treats as equal).
///
/// Everything else — single cells and same-function virtual cells with
/// compatible units — is always returned: their survival depends on the
/// classifier score, which the filter still computes. The index is
/// immutable after Build and safe to share read-only across threads.
class CandidateIndex {
 public:
  CandidateIndex() = default;

  /// Indexes doc.table_mentions. Rebuild per document.
  void Build(const PreparedDocument& doc);

  /// Fills `out` with the candidate table-mention indices of text mention
  /// `x` under predicted tag `tag_func`, sorted ascending. `out` is
  /// cleared first and reused across calls.
  void Probe(const table::TextMention& x, table::AggregateFunction tag_func,
             std::vector<size_t>* out) const;

  size_t num_table_mentions() const { return unit_of_.size(); }

 private:
  /// All virtual cells of one aggregate function.
  struct FuncGroup {
    table::AggregateFunction func = table::AggregateFunction::kNone;
    std::vector<size_t> all;  // ascending
    /// Finite non-zero values by sign and floor(log2 |value|).
    std::map<int64_t, std::vector<size_t>> pos_buckets;
    std::map<int64_t, std::vector<size_t>> neg_buckets;
    /// value == 0.0 (RelativeDifference is 0 only against another zero).
    std::vector<size_t> zero;
  };

  FuncGroup* GroupOf(table::AggregateFunction func);

  /// Interned unit of each table mention; 0 means no unit.
  std::vector<int32_t> unit_of_;
  std::map<std::string, int32_t> unit_ids_;
  /// Non-virtual (single-cell) mentions, ascending.
  std::vector<size_t> singles_;
  /// Virtual-cell groups in first-seen function order.
  std::vector<FuncGroup> groups_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_CANDIDATE_INDEX_H_
