#include "core/gt_matching.h"

namespace briq::core {

std::vector<MatchedGroundTruth> MatchGroundTruth(const PreparedDocument& doc) {
  std::vector<MatchedGroundTruth> out;
  if (doc.source == nullptr) return out;
  for (const corpus::GroundTruthAlignment& gt : doc.source->ground_truth) {
    MatchedGroundTruth m;
    m.gt = &gt;
    for (size_t i = 0; i < doc.text_mentions.size(); ++i) {
      const table::TextMention& x = doc.text_mentions[i];
      if (x.paragraph == gt.paragraph && x.q.span.Overlaps(gt.span)) {
        m.text_idx = static_cast<int>(i);
        break;
      }
    }
    for (size_t j = 0; j < doc.table_mentions.size(); ++j) {
      if (gt.target.Matches(doc.table_mentions[j])) {
        m.table_idx = static_cast<int>(j);
        break;
      }
    }
    out.push_back(m);
  }
  return out;
}

}  // namespace briq::core
