#include "core/ilp_resolution.h"

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "util/logging.h"

namespace briq::core {

namespace {

struct SearchState {
  std::vector<int> choice;          // per mention: candidate index or -1
  std::set<int> used_single_cells;  // table-mention ids taken (constraint b)
  std::vector<int> table_counts;    // decisions per table (coherence)
  double objective = 0.0;
};

}  // namespace

DocumentAlignment IlpResolver::Resolve(
    const PreparedDocument& doc,
    const std::vector<std::vector<Candidate>>& candidates,
    SearchStats* stats) const {
  const size_t m = candidates.size();
  BRIQ_CHECK(m == doc.text_mentions.size()) << "candidate list mismatch";

  // Mentions with candidates, ordered by descending best score so strong
  // decisions come early and the bound prunes aggressively.
  std::vector<size_t> order;
  for (size_t x = 0; x < m; ++x) {
    if (!candidates[x].empty()) order.push_back(x);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return candidates[a].front().score > candidates[b].front().score;
  });

  // Upper bound of the remaining objective from position `pos`.
  std::vector<double> suffix_bound(order.size() + 1, 0.0);
  for (size_t i = order.size(); i-- > 0;) {
    double best = 0.0;
    for (const Candidate& c : candidates[order[i]]) {
      best = std::max(best, c.score);
    }
    suffix_bound[i] = suffix_bound[i + 1] + best +
                      options_.table_coherence_bonus;
  }

  const int num_tables = static_cast<int>(doc.source->tables.size());

  SearchState state;
  state.choice.assign(order.size(), -1);
  state.table_counts.assign(std::max(num_tables, 1), 0);

  std::vector<int> best_choice = state.choice;
  double best_objective = 0.0;
  size_t nodes = 0;
  bool aborted = false;

  // Depth-first branch and bound.
  std::function<void(size_t)> search = [&](size_t pos) {
    if (aborted) return;
    if (++nodes > options_.max_nodes) {
      aborted = true;
      return;
    }
    if (state.objective > best_objective) {
      best_objective = state.objective;
      best_choice = state.choice;
    }
    if (pos >= order.size()) return;
    if (state.objective + suffix_bound[pos] <= best_objective) return;

    const size_t x = order[pos];
    const auto& list = candidates[x];

    // Branch on each admissible candidate, best-score first.
    for (size_t k = 0; k < list.size(); ++k) {
      const Candidate& c = list[k];
      if (c.score <= options_.epsilon) break;  // sorted: the rest is worse
      const auto& tm = doc.table_mentions[c.table_idx];
      const bool is_single = !tm.is_virtual();
      if (is_single &&
          state.used_single_cells.count(static_cast<int>(c.table_idx))) {
        continue;  // constraint (b)
      }
      double gain = c.score;
      if (state.table_counts[tm.table_index] > 0) {
        gain += options_.table_coherence_bonus;
      }
      // Apply.
      state.choice[pos] = static_cast<int>(k);
      if (is_single) state.used_single_cells.insert(c.table_idx);
      ++state.table_counts[tm.table_index];
      state.objective += gain;
      search(pos + 1);
      // Undo.
      state.objective -= gain;
      --state.table_counts[tm.table_index];
      if (is_single) state.used_single_cells.erase(c.table_idx);
      state.choice[pos] = -1;
    }
    // Branch: leave x unaligned.
    search(pos + 1);
  };
  search(0);

  if (stats != nullptr) {
    stats->nodes_explored = nodes;
    stats->optimal = !aborted;
    stats->objective = best_objective;
  }

  DocumentAlignment alignment;
  for (size_t i = 0; i < order.size(); ++i) {
    if (best_choice[i] < 0) continue;
    const Candidate& c = candidates[order[i]][best_choice[i]];
    alignment.decisions.push_back(AlignmentDecision{
        static_cast<int>(order[i]), static_cast<int>(c.table_idx), c.score});
  }
  std::sort(alignment.decisions.begin(), alignment.decisions.end(),
            [](const AlignmentDecision& a, const AlignmentDecision& b) {
              return a.text_idx < b.text_idx;
            });
  return alignment;
}

}  // namespace briq::core
