#ifndef BRIQ_CORE_TAGGER_H_
#define BRIQ_CORE_TAGGER_H_

#include <iosfwd>
#include <vector>

#include "core/config.h"
#include "core/extraction.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "ml/sample_sink.h"
#include "util/status.h"

namespace briq::core {

/// The text-mention tagger of paper §V-A: predicts, from local features
/// only, whether a text mention denotes a single cell or an aggregate
/// (sum / difference / percentage / change ratio). Its prediction drives
/// the first adaptive-filtering prune. Tuned for precision: aggregate
/// predictions below a confidence floor fall back to "single cell", so
/// single-cell pairs are never pruned on weak evidence.
class TextMentionTagger {
 public:
  /// Tag labels (RF class ids).
  enum Label : int {
    kSingle = 0,
    kSum = 1,
    kDiff = 2,
    kPct = 3,
    kRatio = 4,
    kNumLabels = 5,
  };

  static Label LabelOf(table::AggregateFunction f);
  static table::AggregateFunction FunctionOf(Label label);

  explicit TextMentionTagger(const BriqConfig* config) : config_(config) {}

  /// Trains on the prepared documents' ground truth: every ground-truth
  /// mention labeled by its aggregate function, every extracted mention
  /// without ground truth labeled single-cell. A thin adapter over
  /// EmitTrainingSamples + TrainFromSource.
  void Train(const std::vector<const PreparedDocument*>& docs);

  /// Streams one document's tagger rows (one per text mention, in mention
  /// order) into `sink`. The streaming trainer calls this per document.
  util::Status EmitTrainingSamples(const PreparedDocument& doc,
                                   ml::SampleSink* sink) const;

  /// Fits the tagger forest from already-emitted rows. An empty source
  /// leaves the tagger untrained (cue-word fallback), mirroring Train().
  util::Status TrainFromSource(const ml::SampleSource& source);

  /// Serializes / restores the tagger forest (versioned payload inside
  /// the briq-model-v1 container, see BriqSystem::SaveModel).
  util::Status Save(std::ostream& out) const;
  util::Status Load(std::istream& in);

  struct Tag {
    table::AggregateFunction func = table::AggregateFunction::kNone;
    double confidence = 0.0;
  };

  /// Predicts the tag of a text mention. Untrained taggers fall back to
  /// cue-word inference with confidence 0.5.
  Tag Predict(const PreparedDocument& doc, size_t text_idx) const;

  /// The 17 tagger features of §V-A: approximation indicator; cue counts
  /// per aggregation function in immediate/local/global scopes (4 x 3);
  /// scale; precision; unit id; exact-match count in tables.
  static std::vector<double> Features(const PreparedDocument& doc,
                                      size_t text_idx,
                                      const BriqConfig& config);
  static constexpr int kNumFeatures = 17;

  bool trained() const { return forest_.fitted(); }

 private:
  const BriqConfig* config_;
  ml::RandomForest forest_;
  /// Inference layout compiled from forest_ at train-finish / model-load
  /// time; Predict routes through it under config.flat_forest
  /// (bit-identical probabilities, see ml::FlatForest).
  ml::FlatForest flat_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_TAGGER_H_
