#ifndef BRIQ_CORE_BASELINES_H_
#define BRIQ_CORE_BASELINES_H_

#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/classifier.h"
#include "core/config.h"
#include "core/pipeline.h"

namespace briq::core {

/// Classifier-only baseline (paper §VII-D): for each text mention, the
/// table mention of the classifier's top-ranked pair is chosen as output —
/// no filtering, no joint inference.
class RfOnlyAligner : public Aligner {
 public:
  /// Borrows the trained system's classifier and config.
  explicit RfOnlyAligner(const BriqSystem* system) : system_(system) {}

  DocumentAlignment Align(const PreparedDocument& doc) const override;
  std::string name() const override { return "RF"; }

 private:
  const BriqSystem* system_;
};

/// Random-walk-only baseline (paper §VII-D): the same graph algorithm as
/// BriQ's second stage, but with text-table edges weighted by the
/// *untrained* uniform combination of all features instead of classifier
/// priors, and without any candidate pruning (every mention pair is an
/// edge — deliberately expensive, as in the paper).
class RwrOnlyAligner : public Aligner {
 public:
  explicit RwrOnlyAligner(const BriqConfig* config) : config_(config) {}

  DocumentAlignment Align(const PreparedDocument& doc) const override;
  std::string name() const override { return "RWR"; }

 private:
  const BriqConfig* config_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_BASELINES_H_
