#ifndef BRIQ_CORE_STREAMING_TRAINER_H_
#define BRIQ_CORE_STREAMING_TRAINER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/pipeline.h"
#include "core/streaming_aligner.h"
#include "util/status.h"

namespace briq::core {

/// Tuning knobs of the streaming training pipeline.
struct StreamingTrainOptions {
  /// Worker threads for feature emission (0 = hardware concurrency,
  /// <= 1 runs fully inline). Forest fitting afterwards uses the forest
  /// configs' own num_threads.
  int num_threads = 0;
  /// Capacity of the bounded document queue between the reader and the
  /// workers — the same back-pressure valve as StreamingOptions.
  size_t queue_capacity = 64;
  /// When non-empty, classifier and tagger training rows spill to
  /// checksummed briq-samples-v1 files (<spill_dir>/classifier.samples,
  /// <spill_dir>/tagger.samples) instead of accumulating in RAM; the
  /// forests then bootstrap straight off the files. The directory must
  /// exist. Peak memory becomes O(queue + threads + one shard), not
  /// O(samples).
  std::string spill_dir;
  /// Reservoir caps on the spilled sample counts (0 = keep everything).
  /// Only honored when spill_dir is set. Capped runs hold `max_*_samples`
  /// rows in RAM and are seeded from the BriqConfig seed, so the same
  /// corpus + seed reproduce the same subsample bit-for-bit.
  size_t max_classifier_samples = 0;
  size_t max_tagger_samples = 0;
};

/// Out-of-core trainer: streams documents from a source through
/// prepare -> FeatureComputer -> ground-truth sample emission with the
/// same BoundedQueue + ThreadPool fan-out as StreamingAligner, then fits
/// the tagger and the mention-pair classifier from the collected samples.
///
/// Determinism contract (DESIGN.md §5f): workers emit each document's
/// sample batch as a unit through a reordering emitter, so the
/// concatenated sample stream equals the sequential document-order stream
/// at any thread count; sample emission itself is Rng-free; forests seed
/// per tree (`config.seed + tree_index`). A streaming (or spilled) run is
/// therefore bit-identical to `BriqSystem::Train` over the same documents
/// — enforced by tests/train_parity_test.cc. Reservoir-capped runs are
/// deterministic in (seed, document order) but, by construction, not
/// identical to uncapped runs.
///
/// Emits `briq.train.*` metrics: documents, samples/tagger_samples
/// emitted, spill_bytes, and fit_seconds per forest.
class StreamingTrainer {
 public:
  /// `system` is not owned and must outlive the trainer. Its config
  /// governs feature masks, hard-negative counts, and forest seeds.
  explicit StreamingTrainer(BriqSystem* system,
                            StreamingTrainOptions options = {});

  /// Drains `source` (see streaming_aligner.h) and trains `system`'s
  /// tagger and classifier. Mirrors BriqSystem::Train's error contract:
  /// an exhausted source with no usable classifier data is
  /// FailedPrecondition; source errors abort the run and propagate.
  util::Status Train(const DocumentSource& source);

  const StreamingTrainOptions& options() const { return options_; }

 private:
  BriqSystem* system_;
  StreamingTrainOptions options_;
};

/// Convenience wrapper: trains from an entire sharded corpus (see
/// corpus/shard_io.h), the `briq_tool train --shards DIR` path.
util::Status TrainOnShardedCorpus(BriqSystem* system,
                                  const std::string& directory,
                                  const std::string& stem,
                                  const StreamingTrainOptions& options = {});

}  // namespace briq::core

#endif  // BRIQ_CORE_STREAMING_TRAINER_H_
