#include "core/explain.h"

#include "core/features.h"
#include "util/string_util.h"

namespace briq::core {

std::string ExplainDecision(const PreparedDocument& doc,
                            const BriqConfig& config,
                            const AlignmentDecision& decision) {
  const table::TextMention& x = doc.text_mentions[decision.text_idx];
  const table::TableMention& t = doc.table_mentions[decision.table_idx];
  const table::Table& tbl = doc.source->tables[t.table_index];

  std::string out;
  out += "\"" + x.surface() + "\" (paragraph " +
         std::to_string(x.paragraph) + ", sentence " +
         std::to_string(x.sentence) + ")\n";
  out += "  -> " + t.DebugString() + "\n";

  // Locate the target in human terms.
  if (!t.cells.empty()) {
    const table::CellRef& first = t.cells.front();
    std::string row_header = tbl.RowHeader(first.row);
    std::string col_header = tbl.ColumnHeader(first.col);
    out += "  location: ";
    if (t.is_virtual()) {
      out += std::string(table::AggregateFunctionName(t.func)) + " over " +
             std::to_string(t.cells.size()) + " cell(s)";
    } else {
      out += "cell";
    }
    if (!row_header.empty()) out += ", row \"" + row_header + "\"";
    if (!col_header.empty()) out += ", column \"" + col_header + "\"";
    if (!tbl.caption().empty()) out += ", table \"" + tbl.caption() + "\"";
    out += "\n";
  }

  // Feature evidence.
  FeatureComputer features(doc, config);
  std::vector<double> f =
      features.ComputeAll(decision.text_idx, decision.table_idx);
  std::vector<std::string> names = FeatureComputer::FeatureNames();
  out += "  evidence:";
  for (size_t i = 0; i < f.size(); ++i) {
    out += " " + names[i] + "=" + util::FormatDouble(f[i], 3);
  }
  out += "\n  overall score: " + util::FormatDouble(decision.score, 4) + "\n";
  return out;
}

std::vector<SentenceHint> SummarizationHints(
    const PreparedDocument& doc, const DocumentAlignment& alignment) {
  std::vector<SentenceHint> hints;
  // One hint per sentence, in document order.
  for (size_t p = 0; p < doc.sentence_spans.size(); ++p) {
    const std::string& para = doc.source->paragraphs[p];
    for (size_t s = 0; s < doc.sentence_spans[p].size(); ++s) {
      SentenceHint hint;
      hint.paragraph = static_cast<int>(p);
      hint.sentence = static_cast<int>(s);
      const text::Span& span = doc.sentence_spans[p][s];
      hint.text = para.substr(span.begin, span.length());
      hints.push_back(std::move(hint));
    }
  }

  auto hint_for = [&](int paragraph, int sentence) -> SentenceHint* {
    for (SentenceHint& h : hints) {
      if (h.paragraph == paragraph && h.sentence == sentence) return &h;
    }
    return nullptr;
  };

  for (size_t x = 0; x < doc.text_mentions.size(); ++x) {
    const table::TextMention& m = doc.text_mentions[x];
    SentenceHint* hint = hint_for(m.paragraph, m.sentence);
    if (hint == nullptr) continue;
    const AlignmentDecision* d =
        alignment.ForTextMention(static_cast<int>(x));
    if (d == nullptr) {
      ++hint->unaligned_mentions;
    } else if (doc.table_mentions[d->table_idx].is_virtual()) {
      ++hint->aggregate_references;
    } else {
      ++hint->single_cell_references;
    }
  }
  return hints;
}

}  // namespace briq::core
