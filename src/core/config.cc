#include "core/config.h"

#include <algorithm>

#include "util/logging.h"

namespace briq::core {

FeatureGroup FeatureGroupOf(int feature_index) {
  BRIQ_CHECK(feature_index >= 0 && feature_index < kNumPairFeatures)
      << "feature index out of range: " << feature_index;
  switch (feature_index) {
    case 0:  // f1 surface similarity
      return FeatureGroup::kSurface;
    case 1:  // f2 local word overlap
    case 2:  // f3 global word overlap
    case 3:  // f4 local phrase overlap
    case 4:  // f5 global phrase overlap
      return FeatureGroup::kContext;
    case 5:  // f6 relative difference (normalized)
    case 6:  // f7 relative difference (unnormalized)
    case 7:  // f8 unit match
    case 8:  // f9 scale difference
    case 9:  // f10 precision difference
      return FeatureGroup::kQuantity;
    case 10:  // f11 approximation indicator
    case 11:  // f12 aggregate function match
      return FeatureGroup::kContext;
  }
  return FeatureGroup::kSurface;
}

bool BriqConfig::FeatureActive(int f) const {
  if (active_features.empty()) return true;
  return std::find(active_features.begin(), active_features.end(), f) !=
         active_features.end();
}

int NumActivePairFeatures(const BriqConfig& config) {
  if (config.active_features.empty()) return kNumPairFeatures;
  int n = 0;
  for (int i = 0; i < kNumPairFeatures; ++i) {
    if (config.FeatureActive(i)) ++n;
  }
  return n;
}

}  // namespace briq::core
