#ifndef BRIQ_CORE_EXTRACTION_H_
#define BRIQ_CORE_EXTRACTION_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "corpus/document.h"
#include "html/page_segmenter.h"
#include "table/mention.h"
#include "text/tokenizer.h"

namespace briq::core {

/// A document with everything the pipeline stages need precomputed:
/// extracted quantity mentions on both sides, virtual cells, tokenized
/// paragraphs, sentence boundaries, and the word/phrase context bags used
/// by the features.
struct PreparedDocument {
  const corpus::Document* source = nullptr;  // non-owning

  std::vector<table::TextMention> text_mentions;
  std::vector<table::TableMention> table_mentions;
  table::VirtualCellStats vc_stats;

  // --- Text-side caches -----------------------------------------------------
  std::vector<std::vector<text::Token>> paragraph_tokens;
  std::vector<std::vector<text::Span>> sentence_spans;
  /// Lowercased word+number tokens per paragraph (global context bags).
  std::vector<std::vector<std::string>> paragraph_words;
  /// Normalized noun phrases per paragraph / per sentence.
  std::vector<std::vector<std::string>> paragraph_phrases;
  std::vector<std::vector<std::vector<std::string>>> sentence_phrases;
  /// Cumulative token counts of the paragraphs (for cross-paragraph
  /// proximity); paragraph_token_offset[p] is the global index of paragraph
  /// p's first token.
  std::vector<size_t> paragraph_token_offset;
  size_t total_tokens = 0;

  // --- Table-side caches ------------------------------------------------------
  struct TableContext {
    std::vector<std::vector<std::string>> row_words;
    std::vector<std::vector<std::string>> col_words;
    std::vector<std::vector<std::string>> row_phrases;
    std::vector<std::vector<std::string>> col_phrases;
    std::vector<std::string> all_words;
    std::vector<std::string> all_phrases;
  };
  std::vector<TableContext> table_contexts;

  size_t GlobalTokenPos(const table::TextMention& m) const {
    return paragraph_token_offset[m.paragraph] + m.token_pos;
  }
};

/// Lowercased word and number tokens of `s` (context vocabulary; numbers
/// participate so that "2013" in a column header can overlap "in 2013" in
/// text).
std::vector<std::string> ContextTokens(std::string_view s);

/// Prepares a corpus document for alignment: extracts text mentions
/// (quantity parser + filters), generates table mentions (single + virtual
/// cells), and builds all context caches.
PreparedDocument PrepareDocument(const corpus::Document& doc,
                                 const BriqConfig& config);

/// Builds coherent documents from a segmented web page (paper §III): each
/// paragraph becomes a document together with all tables whose content
/// similarity to the paragraph exceeds `similarity_threshold`. A paragraph
/// with no related table yields no document.
std::vector<corpus::Document> BuildDocumentsFromPage(
    const html::Page& page, double similarity_threshold = 0.08);

}  // namespace briq::core

#endif  // BRIQ_CORE_EXTRACTION_H_
