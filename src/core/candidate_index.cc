#include "core/candidate_index.h"

#include <algorithm>
#include <cmath>

namespace briq::core {

namespace {

/// Magnitude bucket of a finite non-zero value. Two values within
/// relative 1e-9 have a |log2| gap of ~2e-9, so their buckets differ by
/// at most 1 — probing {b-1, b, b+1} covers every possible exact match.
int64_t MagnitudeBucket(double v) {
  return static_cast<int64_t>(std::floor(std::log2(std::fabs(v))));
}

/// Unit-compatibility key: the base unit the mention's values convert
/// into ("kg" for tonne columns, the currency itself for money). Falls
/// back to the literal unit string when no base name is defined, which
/// keeps the key byte-identical to the legacy interning for every legacy
/// unit (currency canonical, "percent", hand-built labels).
std::string UnitKey(quantity::UnitCategory category, const std::string& unit) {
  std::string base = quantity::BaseUnitName(category, unit);
  return base.empty() ? unit : base;
}

}  // namespace

CandidateIndex::FuncGroup* CandidateIndex::GroupOf(
    table::AggregateFunction func) {
  for (FuncGroup& g : groups_) {
    if (g.func == func) return &g;
  }
  groups_.emplace_back();
  groups_.back().func = func;
  return &groups_.back();
}

void CandidateIndex::Build(const PreparedDocument& doc) {
  unit_of_.clear();
  unit_ids_.clear();
  singles_.clear();
  groups_.clear();
  unit_of_.reserve(doc.table_mentions.size());

  for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
    const table::TableMention& tm = doc.table_mentions[t];
    int32_t unit_id = 0;
    if (tm.has_unit()) {
      auto [it, inserted] =
          unit_ids_.emplace(UnitKey(tm.unit_category, tm.unit),
                            static_cast<int32_t>(unit_ids_.size()) + 1);
      unit_id = it->second;
    }
    unit_of_.push_back(unit_id);

    if (!tm.is_virtual()) {
      singles_.push_back(t);
      continue;
    }
    FuncGroup* g = GroupOf(tm.func);
    g->all.push_back(t);
    // Bucket on the base-unit value so a probe for "2.5 tonnes" lands in
    // the bucket of a 2500 "(kg)" virtual cell (×1.0 for legacy forms).
    const double base_value = tm.value * tm.unit_to_base;
    if (base_value == 0.0) {
      g->zero.push_back(t);
    } else if (std::isfinite(base_value)) {
      auto& buckets = base_value > 0.0 ? g->pos_buckets : g->neg_buckets;
      buckets[MagnitudeBucket(base_value)].push_back(t);
    }
    // Non-finite values join no bucket: RelativeDifference against them is
    // 1.0, so the exact-value exception can never rescue the pair.
  }
}

void CandidateIndex::Probe(const table::TextMention& x,
                           table::AggregateFunction tag_func,
                           std::vector<size_t>* out) const {
  out->clear();
  const bool x_has_unit = x.q.has_unit();
  int32_t x_unit = 0;
  if (x_has_unit) {
    auto it = unit_ids_.find(UnitKey(x.q.unit_category, x.q.unit));
    // A unit no table cell carries: only unit-less cells are compatible.
    x_unit = it == unit_ids_.end() ? -1 : it->second;
  }
  auto append = [&](const std::vector<size_t>& ts) {
    for (size_t t : ts) {
      if (x_has_unit && unit_of_[t] != 0 && unit_of_[t] != x_unit) continue;
      out->push_back(t);
    }
  };

  append(singles_);
  // Probe on base-unit values, matching Build's bucketing. Interval
  // mentions ("3–5 million") widen the probe to every bucket the interval
  // overlaps (±1 slack at both edges): Stage A's exact-value rescue treats
  // any value inside [lo, hi] as a match, so the superset guarantee needs
  // the whole span covered. Point mentions keep the legacy 3-bucket probe.
  const double v = x.q.value * x.q.unit_to_base;
  double lo = v;
  double hi = v;
  if (x.q.is_interval()) {
    lo = x.q.value_lo * x.q.unit_to_base;
    hi = x.q.value_hi * x.q.unit_to_base;
    if (lo > hi) std::swap(lo, hi);
  }
  const bool interval = lo != hi;
  // Appends every bucket overlapping the magnitude range [mag_lo, mag_hi]
  // (absolute values; mag_lo == 0 means "down to the smallest bucket").
  auto append_mag_range = [&](const std::map<int64_t, std::vector<size_t>>&
                                  buckets,
                              double mag_lo, double mag_hi) {
    const int64_t b_hi = MagnitudeBucket(mag_hi) + 1;
    const bool open_below = mag_lo == 0.0;
    const int64_t b_lo = open_below ? 0 : MagnitudeBucket(mag_lo) - 1;
    for (const auto& [b, ts] : buckets) {
      if (b <= b_hi && (open_below || b >= b_lo)) append(ts);
    }
  };
  for (const FuncGroup& g : groups_) {
    if (g.func == tag_func) {
      // Same function as the tag: never pruned by Stage A, always scored.
      append(g.all);
      continue;
    }
    // Different function: survives Stage A only on an exact value match
    // (for intervals, a value inside the interval).
    if (interval) {
      if (!std::isfinite(lo) || !std::isfinite(hi)) {
        append(g.all);  // conservative: never drop on a non-finite endpoint
        continue;
      }
      if (lo <= 0.0 && 0.0 <= hi) append(g.zero);
      if (hi > 0.0) append_mag_range(g.pos_buckets, std::max(lo, 0.0), hi);
      if (lo < 0.0) append_mag_range(g.neg_buckets, std::max(-hi, 0.0), -lo);
      continue;
    }
    if (!std::isfinite(v)) continue;
    if (v == 0.0) {
      append(g.zero);
      continue;
    }
    const auto& buckets = v > 0.0 ? g.pos_buckets : g.neg_buckets;
    const int64_t b = MagnitudeBucket(v);
    for (int64_t k = b - 1; k <= b + 1; ++k) {
      auto it = buckets.find(k);
      if (it != buckets.end()) append(it->second);
    }
  }
  // The filter's candidate loop must see pairs in the same ascending
  // enumeration order as the unindexed path (its sort is not stable).
  std::sort(out->begin(), out->end());
}

}  // namespace briq::core
