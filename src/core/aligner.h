#ifndef BRIQ_CORE_ALIGNER_H_
#define BRIQ_CORE_ALIGNER_H_

#include <string>
#include <vector>

#include "core/extraction.h"

namespace briq::core {

/// One alignment decision: text mention -> table mention, with the score
/// that justified it.
struct AlignmentDecision {
  int text_idx = -1;
  int table_idx = -1;
  double score = 0.0;
};

/// The (partial) alignment of one document.
struct DocumentAlignment {
  std::vector<AlignmentDecision> decisions;

  /// The decision for a text mention, or nullptr.
  const AlignmentDecision* ForTextMention(int text_idx) const {
    for (const auto& d : decisions) {
      if (d.text_idx == text_idx) return &d;
    }
    return nullptr;
  }
};

/// Common interface of BriQ and the two baselines, so the evaluation
/// harness and the benches treat them uniformly.
class Aligner {
 public:
  virtual ~Aligner() = default;

  /// Computes the alignment of a prepared document.
  virtual DocumentAlignment Align(const PreparedDocument& doc) const = 0;

  /// Aligns a batch of documents across `num_threads` workers (<= 1 runs
  /// sequentially, 0 means hardware concurrency). Documents are
  /// independent and Align is const, so the default implementation simply
  /// fans the batch out; results are positionally matched to `docs` and
  /// identical to per-document Align calls regardless of thread count.
  virtual std::vector<DocumentAlignment> AlignBatch(
      const std::vector<const PreparedDocument*>& docs,
      int num_threads) const;

  virtual std::string name() const = 0;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_ALIGNER_H_
