#include "core/aligner.h"

#include "util/thread_pool.h"

namespace briq::core {

std::vector<DocumentAlignment> Aligner::AlignBatch(
    const std::vector<const PreparedDocument*>& docs, int num_threads) const {
  std::vector<DocumentAlignment> out(docs.size());
  // Grain 1: documents are coarse units (milliseconds each), so per-doc
  // scheduling keeps the slowest-document tail short.
  util::ParallelFor(num_threads, 0, docs.size(), /*grain=*/1,
                    [&](size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) {
                        out[i] = Align(*docs[i]);
                      }
                    });
  return out;
}

}  // namespace briq::core
