#ifndef BRIQ_CORE_RESOLUTION_H_
#define BRIQ_CORE_RESOLUTION_H_

#include <vector>

#include "core/aligner.h"
#include "core/config.h"
#include "core/extraction.h"
#include "core/filtering.h"

namespace briq::core {

/// Stage-4 global resolution (paper §VI, Algorithm 1): builds the
/// candidate alignment graph (text-text, table-table, text-table edges),
/// then resolves text mentions in increasing order of classifier-score
/// entropy; each mention runs a Random Walk with Restart and accepts the
/// argmax of OverallScore = alpha * pi + beta * sigma when it clears
/// epsilon; decided mentions prune the graph for later walks.
class GlobalResolver {
 public:
  explicit GlobalResolver(const BriqConfig* config) : config_(config) {}

  DocumentAlignment Resolve(
      const PreparedDocument& doc,
      const std::vector<std::vector<Candidate>>& candidates) const;

 private:
  const BriqConfig* config_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_RESOLUTION_H_
