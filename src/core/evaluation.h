#ifndef BRIQ_CORE_EVALUATION_H_
#define BRIQ_CORE_EVALUATION_H_

#include <map>
#include <vector>

#include "core/aligner.h"
#include "core/config.h"
#include "core/extraction.h"
#include "ml/metrics.h"

namespace briq::core {

/// Precision/recall/F1 accounting of alignments against ground truth,
/// overall and per mention type (the type of an alignment is the aggregate
/// function of its table-mention side; single-cell for plain cells).
struct EvalResult {
  ml::BinaryCounts overall;
  std::map<table::AggregateFunction, ml::BinaryCounts> by_type;

  void Merge(const EvalResult& other);
  double Precision() const { return overall.Precision(); }
  double Recall() const { return overall.Recall(); }
  double F1() const { return overall.F1(); }
};

/// Scores one document's alignment:
///  - a decision matching its mention's ground-truth target is a true
///    positive (under the target's type);
///  - a decision for a mention with a different (or no) target is a false
///    positive (under the predicted type), plus a false negative for the
///    missed target if one existed;
///  - an unaligned ground-truth mention (including extraction misses) is a
///    false negative.
EvalResult EvaluateDocument(const PreparedDocument& doc,
                            const DocumentAlignment& alignment);

/// Runs `aligner` over all documents and accumulates metrics.
EvalResult EvaluateCorpus(const Aligner& aligner,
                          const std::vector<PreparedDocument>& docs);

/// Config copy with one feature group removed (ablation study, Table VII).
BriqConfig ConfigWithoutGroup(const BriqConfig& base, FeatureGroup group);

}  // namespace briq::core

#endif  // BRIQ_CORE_EVALUATION_H_
