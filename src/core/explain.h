#ifndef BRIQ_CORE_EXPLAIN_H_
#define BRIQ_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/config.h"
#include "core/extraction.h"

namespace briq::core {

/// Human-readable justification for one alignment decision: what the
/// mention is, where the target lives in the table (row/column headers),
/// and the feature evidence. Supports the paper's navigation use case —
/// "going from text to tables, the user can drill down on statements in
/// terms of detailed numbers" (§I).
std::string ExplainDecision(const PreparedDocument& doc,
                            const BriqConfig& config,
                            const AlignmentDecision& decision);

/// Per-sentence summarization hints (§I: "knowing that one sentence
/// references a row sum, while another discusses individual values in the
/// same row, the summarization algorithm could decide to include the
/// former in the summary, but not the latter").
struct SentenceHint {
  int paragraph = 0;
  int sentence = 0;
  std::string text;
  size_t aggregate_references = 0;   // aligned aggregate mentions
  size_t single_cell_references = 0; // aligned single-cell mentions
  size_t unaligned_mentions = 0;

  /// The paper's heuristic: sentences referencing aggregates summarize
  /// table content, sentences enumerating individual cells do not.
  bool PreferForSummary() const {
    return aggregate_references > 0 &&
           aggregate_references >= single_cell_references;
  }
};

/// Classifies every sentence of the document by what its aligned mentions
/// reference.
std::vector<SentenceHint> SummarizationHints(
    const PreparedDocument& doc, const DocumentAlignment& alignment);

}  // namespace briq::core

#endif  // BRIQ_CORE_EXPLAIN_H_
