#ifndef BRIQ_CORE_FEATURES_H_
#define BRIQ_CORE_FEATURES_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "core/extraction.h"
#include "util/similarity.h"

namespace briq::core {

/// Computes the 12 mention-pair features of paper §IV-B over a prepared
/// document. Instances cache nothing beyond references; all heavy context
/// bags live in the PreparedDocument.
///
/// Feature order (0-based index -> paper name):
///   0  f1  surface-form similarity (Jaro-Winkler)
///   1  f2  local context word overlap (distance-weighted)
///   2  f3  global context word overlap
///   3  f4  local context noun-phrase overlap
///   4  f5  global context noun-phrase overlap
///   5  f6  relative difference of normalized values
///   6  f7  relative difference of unnormalized values
///   7  f8  unit match (0 strong mismatch .. 3 strong match)
///   8  f9  scale (order-of-magnitude) difference
///   9  f10 precision difference
///   10 f11 approximation indicator (0 none, 1 exact, 2 approx, 3 upper,
///          4 lower)
///   11 f12 aggregate-function match (0 strong mismatch .. 3 strong match)
class FeatureComputer {
 public:
  FeatureComputer(const PreparedDocument& doc, const BriqConfig& config);

  /// Full 12-feature vector for (text mention i, table mention j).
  std::vector<double> ComputeAll(size_t text_idx, size_t table_idx) const;

  /// Allocation-free variant: writes the 12 features into
  /// out[0 .. kNumPairFeatures). Internal word/phrase bags are per-thread
  /// scratch, so concurrent calls on the same computer are safe and the
  /// steady-state scoring loop performs no result allocations.
  void ComputeAll(size_t text_idx, size_t table_idx, double* out) const;

  /// Feature vector restricted to config.active_features (ablation mask).
  std::vector<double> Compute(size_t text_idx, size_t table_idx) const;

  /// Buffer-reuse variant of Compute: clears and refills *out, keeping its
  /// capacity across calls.
  void Compute(size_t text_idx, size_t table_idx,
               std::vector<double>* out) const;

  /// Active feature count (12 when no mask is set).
  int NumActive() const;

  /// The untrained feature combination used by the RWR-only baseline:
  /// every feature mapped to a [0, 1] similarity and averaged with uniform
  /// weights (paper §VII-D). Respects the ablation mask.
  double UniformSimilarity(size_t text_idx, size_t table_idx) const;

  static std::vector<std::string> FeatureNames();

 private:
  /// Union of the row/column context words (or phrases) of the cells of a
  /// table mention, appended into caller-owned (reusable) buffers.
  void AddLocalTableWords(const table::TableMention& m,
                          util::WeightedBag* bag) const;
  void AppendLocalTablePhrases(const table::TableMention& m,
                               std::vector<std::string>* out) const;

  const PreparedDocument& doc_;
  const BriqConfig& config_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_FEATURES_H_
