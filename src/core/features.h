#ifndef BRIQ_CORE_FEATURES_H_
#define BRIQ_CORE_FEATURES_H_

#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/extraction.h"
#include "util/similarity.h"

namespace briq::core {

/// Computes the 12 mention-pair features of paper §IV-B over a prepared
/// document. The table-mention-side context (local word bag for f2, local
/// phrase list for f4) is cached per table mention on first use — the
/// candidate pre-index skips most virtual cells, so building all caches
/// eagerly would waste the work the index saves. Cache population is
/// guarded per entry (std::call_once), so concurrent calls on one
/// computer remain safe. Everything heavier lives in the
/// PreparedDocument.
///
/// Feature order (0-based index -> paper name):
///   0  f1  surface-form similarity (Jaro-Winkler)
///   1  f2  local context word overlap (distance-weighted)
///   2  f3  global context word overlap
///   3  f4  local context noun-phrase overlap
///   4  f5  global context noun-phrase overlap
///   5  f6  relative difference of normalized values
///   6  f7  relative difference of unnormalized values
///   7  f8  unit match (0 strong mismatch .. 3 strong match)
///   8  f9  scale (order-of-magnitude) difference
///   9  f10 precision difference
///   10 f11 approximation indicator (0 none, 1 exact, 2 approx, 3 upper,
///          4 lower)
///   11 f12 aggregate-function match (0 strong mismatch .. 3 strong match)
class FeatureComputer {
 public:
  FeatureComputer(const PreparedDocument& doc, const BriqConfig& config);

  /// Full 12-feature vector for (text mention i, table mention j).
  std::vector<double> ComputeAll(size_t text_idx, size_t table_idx) const;

  /// Allocation-free variant: writes the 12 features into
  /// out[0 .. kNumPairFeatures). Internal word/phrase bags are per-thread
  /// scratch, so concurrent calls on the same computer are safe and the
  /// steady-state scoring loop performs no result allocations.
  void ComputeAll(size_t text_idx, size_t table_idx, double* out) const;

  /// Feature vector restricted to config.active_features (ablation mask).
  std::vector<double> Compute(size_t text_idx, size_t table_idx) const;

  /// Buffer-reuse variant of Compute: clears and refills *out, keeping its
  /// capacity across calls.
  void Compute(size_t text_idx, size_t table_idx,
               std::vector<double>* out) const;

  /// Batch variant of Compute for the classifier fast path: fills
  /// rows[i * NumActive() .. ) with the active features of pair
  /// (text_idx, table_idxs[i]) for i in [0, n). Per-row output is
  /// bit-identical to Compute; the text-mention-side work (local context
  /// bag, lowered surface form, cue-window scan) is computed once for the
  /// whole batch instead of once per pair. `rows` must hold at least
  /// n * NumActive() doubles. Thread-safe like Compute (all scratch is
  /// per-thread).
  void ComputeBatch(size_t text_idx, const size_t* table_idxs, size_t n,
                    double* rows) const;

  /// Active feature count (12 when no mask is set).
  int NumActive() const;

  /// The untrained feature combination used by the RWR-only baseline:
  /// every feature mapped to a [0, 1] similarity and averaged with uniform
  /// weights (paper §VII-D). Respects the ablation mask.
  double UniformSimilarity(size_t text_idx, size_t table_idx) const;

  static std::vector<std::string> FeatureNames();

 private:
  /// Text-mention-side state that is invariant across the table mentions a
  /// pair loop scores against: the lowered surface (f1), the
  /// distance-weighted local context bag (f2), and the cued aggregate
  /// function (f12). Built once per ComputeBatch call (and per ComputeAll
  /// call, to keep a single feature implementation); lives in per-thread
  /// scratch. Defined in features.cc.
  struct TextContext;

  void BuildTextContext(size_t text_idx, TextContext* ctx) const;

  /// The 12 features of (ctx's text mention, table_idx) into f, reading
  /// the hoisted text-side state from ctx (and memoizing the per-table
  /// global overlaps f3/f5 into it).
  void ComputeAllFromContext(TextContext& ctx, size_t table_idx,
                             double* f) const;

  /// Masks `all` (12 features) down to the active ones at `out`, returning
  /// the number written (== NumActive()).
  size_t MaskActive(const double* all, double* out) const;

  /// Union of the row/column context words (or phrases) of the cells of a
  /// table mention, appended into caller-owned (reusable) buffers.
  void AddLocalTableWords(const table::TableMention& m,
                          util::WeightedBag* bag) const;
  void AppendLocalTablePhrases(const table::TableMention& m,
                               std::vector<std::string>* out) const;

  /// Populate the lazy caches below on first use of an entry.
  void EnsureTableMention(size_t t) const;
  void EnsureTable(size_t tbl) const;
  void EnsureParagraph(size_t p) const;

  const PreparedDocument& doc_;
  const BriqConfig& config_;

  /// Table-mention-side context, cached per table mention on first use:
  /// the f2 word bag, the f4 phrase set, and the f1 comparison surface
  /// depend only on the table side, and rebuilding them per pair
  /// dominated the scoring loop. WeightedBag is an ordered map and the
  /// overlap coefficients are ratios of set cardinalities, so cached
  /// containers yield bit-identical feature values to freshly built
  /// ones. Lazy (not eager) on purpose — see the class comment.
  mutable std::deque<std::once_flag> table_once_;
  mutable std::vector<util::WeightedBag> table_bags_;
  mutable std::vector<std::vector<std::string>> table_phrases_;
  mutable std::vector<std::unordered_set<std::string>> table_phrase_sets_;
  mutable std::vector<std::string> table_surfaces_;

  /// Per-table word/phrase sets of the f3/f5 global overlaps.
  mutable std::deque<std::once_flag> tbl_once_;
  mutable std::vector<std::unordered_set<std::string>> tbl_word_sets_;
  mutable std::vector<std::unordered_set<std::string>> tbl_phrase_sets_;

  /// Per-paragraph word/phrase sets (text side of f3/f5).
  mutable std::deque<std::once_flag> para_once_;
  mutable std::vector<std::unordered_set<std::string>> para_word_sets_;
  mutable std::vector<std::unordered_set<std::string>> para_phrase_sets_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_FEATURES_H_
