#include "core/pipeline.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace briq::core {

BriqSystem::BriqSystem(BriqConfig config)
    : config_(std::move(config)),
      tagger_(&config_),
      classifier_(&config_),
      filter_(&config_, &tagger_, &classifier_),
      resolver_(&config_) {}

util::Status BriqSystem::Train(
    const std::vector<const PreparedDocument*>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("no training documents");
  }
  tagger_.Train(docs);
  util::Rng rng(config_.seed);
  classifier_.Train(docs, &rng);
  if (!classifier_.trained()) {
    return util::Status::FailedPrecondition(
        "classifier training produced no usable data (no matched "
        "ground-truth pairs?)");
  }
  return util::Status::OK();
}

DocumentAlignment BriqSystem::Align(const PreparedDocument& doc) const {
  return AlignWithTrace(doc, nullptr);
}

DocumentAlignment BriqSystem::AlignWithTrace(const PreparedDocument& doc,
                                             FilterTrace* trace) const {
  // Instrument pointers are resolved once; the per-document cost is the
  // span/timer clock reads plus one counter add.
  static obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  static obs::Counter* documents = registry.GetCounter("briq.align.documents");
  static obs::Histogram* align_seconds = registry.GetHistogram(
      "briq.align.align_seconds", obs::DefaultLatencyBuckets());
  static obs::Histogram* filter_seconds = registry.GetHistogram(
      "briq.align.filter_seconds", obs::DefaultLatencyBuckets());
  static obs::Histogram* resolve_seconds = registry.GetHistogram(
      "briq.align.resolve_seconds", obs::DefaultLatencyBuckets());

  obs::ScopedSpan document_span("align_document");
  obs::ScopedTimer document_timer(align_seconds);
  documents->Add();

  FeatureComputer features(doc, config_);
  std::vector<std::vector<Candidate>> candidates;
  {
    obs::ScopedSpan span("filter");
    obs::ScopedTimer timer(filter_seconds);
    candidates = filter_.Filter(doc, features, trace);
  }
  obs::ScopedSpan span("resolve");
  obs::ScopedTimer timer(resolve_seconds);
  return resolver_.Resolve(doc, candidates);
}

}  // namespace briq::core
