#include "core/pipeline.h"

#include "util/random.h"

namespace briq::core {

BriqSystem::BriqSystem(BriqConfig config)
    : config_(std::move(config)),
      tagger_(&config_),
      classifier_(&config_),
      filter_(&config_, &tagger_, &classifier_),
      resolver_(&config_) {}

util::Status BriqSystem::Train(
    const std::vector<const PreparedDocument*>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("no training documents");
  }
  tagger_.Train(docs);
  util::Rng rng(config_.seed);
  classifier_.Train(docs, &rng);
  if (!classifier_.trained()) {
    return util::Status::FailedPrecondition(
        "classifier training produced no usable data (no matched "
        "ground-truth pairs?)");
  }
  return util::Status::OK();
}

DocumentAlignment BriqSystem::Align(const PreparedDocument& doc) const {
  return AlignWithTrace(doc, nullptr);
}

DocumentAlignment BriqSystem::AlignWithTrace(const PreparedDocument& doc,
                                             FilterTrace* trace) const {
  FeatureComputer features(doc, config_);
  std::vector<std::vector<Candidate>> candidates =
      filter_.Filter(doc, features, trace);
  return resolver_.Resolve(doc, candidates);
}

}  // namespace briq::core
