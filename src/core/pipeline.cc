#include "core/pipeline.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/binary_io.h"
#include "util/hash.h"

namespace briq::core {

namespace {

/// briq-model-v1 container: a text magic line, then a fixed binary header
/// (payload size + FNV-1a 64 checksum), then the payload — the classifier
/// and tagger sections in order. The checksum covers the whole payload, so
/// truncated or corrupted model files are rejected before any forest is
/// deserialized (same policy as briq-shard-v1 and briq-samples-v1).
constexpr char kModelMagic[] = "briq-model-v1\n";
constexpr size_t kModelMagicLen = sizeof(kModelMagic) - 1;

}  // namespace

BriqSystem::BriqSystem(BriqConfig config)
    : config_(std::move(config)),
      tagger_(&config_),
      classifier_(&config_),
      filter_(&config_, &tagger_, &classifier_),
      resolver_(&config_) {}

util::Status BriqSystem::Train(
    const std::vector<const PreparedDocument*>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("no training documents");
  }
  tagger_.Train(docs);
  classifier_.Train(docs);
  if (!classifier_.trained()) {
    return util::Status::FailedPrecondition(
        "classifier training produced no usable data (no matched "
        "ground-truth pairs?)");
  }
  return util::Status::OK();
}

util::Status BriqSystem::SaveModel(const std::string& path) const {
  if (!classifier_.trained()) {
    return util::Status::FailedPrecondition(
        "SaveModel requires a trained classifier");
  }
  std::ostringstream payload_stream(std::ios::binary);
  BRIQ_RETURN_IF_ERROR(classifier_.Save(payload_stream));
  BRIQ_RETURN_IF_ERROR(tagger_.Save(payload_stream));
  const std::string payload = payload_stream.str();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::NotFound("cannot open model file for writing: " +
                                  path);
  }
  out.write(kModelMagic, static_cast<std::streamsize>(kModelMagicLen));
  util::WritePod(out, static_cast<uint64_t>(payload.size()));
  util::WritePod(out, util::Fnv1a64(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out.good()) {
    return util::Status::Internal("model write failed: " + path);
  }
  return util::Status::OK();
}

util::Status BriqSystem::LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::NotFound("cannot open model file: " + path);
  }
  char magic[kModelMagicLen];
  in.read(magic, static_cast<std::streamsize>(kModelMagicLen));
  if (in.gcount() != static_cast<std::streamsize>(kModelMagicLen) ||
      std::memcmp(magic, kModelMagic, kModelMagicLen) != 0) {
    return util::Status::ParseError("not a briq-model-v1 file: " + path);
  }
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  if (!util::ReadPod(in, &payload_size) || !util::ReadPod(in, &checksum)) {
    return util::Status::ParseError("model file truncated in header: " + path);
  }
  if (payload_size > (uint64_t{1} << 32)) {
    return util::Status::ParseError("model file declares an implausible " +
                                    std::to_string(payload_size) +
                                    "-byte payload: " + path);
  }
  std::string payload(static_cast<size_t>(payload_size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (in.gcount() != static_cast<std::streamsize>(payload.size())) {
    return util::Status::ParseError(
        "model file truncated: header declares " +
        std::to_string(payload_size) + " payload bytes: " + path);
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return util::Status::ParseError(
        "model file has trailing data beyond its declared payload: " + path);
  }
  const uint64_t actual = util::Fnv1a64(payload);
  if (actual != checksum) {
    return util::Status::ParseError("model file checksum mismatch: " + path);
  }

  // Deserialize into scratch components first so a bad file cannot leave
  // this system half-replaced.
  std::istringstream payload_stream(payload, std::ios::binary);
  MentionPairClassifier classifier(&config_);
  TextMentionTagger tagger(&config_);
  BRIQ_RETURN_IF_ERROR(classifier.Load(payload_stream));
  BRIQ_RETURN_IF_ERROR(tagger.Load(payload_stream));
  if (!classifier.trained()) {
    return util::Status::FailedPrecondition(
        "model file has no fitted classifier forest: " + path);
  }
  if (classifier.forest().num_features() != NumActivePairFeatures(config_)) {
    return util::Status::FailedPrecondition(
        "model was trained with " +
        std::to_string(classifier.forest().num_features()) +
        " pair features but this config activates " +
        std::to_string(NumActivePairFeatures(config_)) + ": " + path);
  }
  classifier_ = std::move(classifier);
  tagger_ = std::move(tagger);
  return util::Status::OK();
}

DocumentAlignment BriqSystem::Align(const PreparedDocument& doc) const {
  return AlignWithTrace(doc, nullptr);
}

DocumentAlignment BriqSystem::AlignWithTrace(const PreparedDocument& doc,
                                             FilterTrace* trace) const {
  // Instrument pointers are resolved once; the per-document cost is the
  // span/timer clock reads plus one counter add.
  static obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  static obs::Counter* documents = registry.GetCounter("briq.align.documents");
  static obs::Histogram* align_seconds = registry.GetHistogram(
      "briq.align.align_seconds", obs::DefaultLatencyBuckets());
  static obs::Histogram* filter_seconds = registry.GetHistogram(
      "briq.align.filter_seconds", obs::DefaultLatencyBuckets());
  static obs::Histogram* resolve_seconds = registry.GetHistogram(
      "briq.align.resolve_seconds", obs::DefaultLatencyBuckets());

  obs::ScopedSpan document_span("align_document");
  obs::ScopedTimer document_timer(align_seconds);
  documents->Add();

  FeatureComputer features(doc, config_);
  std::vector<std::vector<Candidate>> candidates;
  {
    obs::ScopedSpan span("filter");
    obs::ScopedTimer timer(filter_seconds);
    candidates = filter_.Filter(doc, features, trace);
  }
  obs::ScopedSpan span("resolve");
  obs::ScopedTimer timer(resolve_seconds);
  return resolver_.Resolve(doc, candidates);
}

}  // namespace briq::core
