#include "core/streaming_aligner.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/extraction.h"
#include "corpus/shard_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace briq::core {

namespace {

/// A chunk of consecutive documents; one queue item, one reorder slot.
/// Chunking amortizes every cross-thread handoff (queue mutex, emitter
/// lock, condition-variable wakeups) over chunk_docs documents.
struct WorkItem {
  size_t chunk_index = 0;
  size_t base_doc_index = 0;  // global index of docs[0]
  std::vector<corpus::Document> docs;
};

struct FinishedItem {
  corpus::Document doc;
  DocumentAlignment alignment;
};

struct FinishedChunk {
  size_t base_doc_index = 0;
  std::vector<FinishedItem> items;
};

/// Shared state of the reordering emitter: finished chunks park in
/// `ready` until every earlier chunk has been delivered. The emit window
/// caps how far ahead of `next_emit` a worker may park a result, so the
/// buffer — like the queue — holds O(queue + threads) chunks, never
/// O(corpus).
struct EmitState {
  std::mutex mu;
  std::condition_variable advanced;
  std::map<size_t, FinishedChunk> ready;
  size_t next_emit = 0;  // chunk index
  size_t window = 0;     // chunks
  /// Set when any worker threw; releases waiters and stops emission so the
  /// pipeline drains instead of stalling on the gap the dead worker left.
  bool failed = false;
};

/// Streaming telemetry (DESIGN.md §5d). The queue instruments live under
/// `briq.stream.*` via QueueTelemetry; the reorder buffer reports its
/// depth and high-water mark here (both in chunks, matching the queue's
/// units). Gauges describe the run currently in flight; run one streaming
/// pipeline at a time when reading them.
obs::Counter* StreamDocumentsCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.stream.documents");
  return counter;
}

obs::Gauge* ReorderBufferedGauge() {
  static obs::Gauge* gauge =
      obs::MetricRegistry::Global().GetGauge("briq.stream.reorder_buffered");
  return gauge;
}

obs::Gauge* ReorderBufferedPeakGauge() {
  static obs::Gauge* gauge = obs::MetricRegistry::Global().GetGauge(
      "briq.stream.reorder_buffered_peak");
  return gauge;
}

/// Parks one finished chunk and flushes the contiguous prefix to the
/// sink — one lock acquisition per chunk, not per document. Sink calls
/// happen under the emitter mutex: strictly ordered per document and
/// never concurrent, as streaming_aligner.h promises.
void EmitChunkInOrder(EmitState* state, size_t chunk_index,
                      FinishedChunk chunk, const AlignmentSink& sink) {
  std::unique_lock<std::mutex> lock(state->mu);
  // Back-pressure on the reorder buffer. The worker holding `next_emit`
  // never waits (its index is trivially inside the window), so the window
  // always drains and this cannot deadlock.
  state->advanced.wait(lock, [state, chunk_index] {
    return state->failed || chunk_index < state->next_emit + state->window;
  });
  if (state->failed) return;
  state->ready.emplace(chunk_index, std::move(chunk));
  ReorderBufferedPeakGauge()->SetMax(static_cast<int64_t>(state->ready.size()));
  size_t emitted_docs = 0;
  while (!state->ready.empty() &&
         state->ready.begin()->first == state->next_emit) {
    auto node = state->ready.extract(state->ready.begin());
    const FinishedChunk& done = node.mapped();
    for (size_t i = 0; i < done.items.size(); ++i) {
      sink(done.base_doc_index + i, done.items[i].doc,
           done.items[i].alignment);
    }
    emitted_docs += done.items.size();
    ++state->next_emit;
  }
  if (emitted_docs > 0) StreamDocumentsCounter()->Add(emitted_docs);
  ReorderBufferedGauge()->Set(static_cast<int64_t>(state->ready.size()));
  lock.unlock();
  state->advanced.notify_all();
}

}  // namespace

StreamingAligner::StreamingAligner(const Aligner* aligner,
                                   const BriqConfig* config,
                                   StreamingOptions options)
    : aligner_(aligner), config_(config), options_(options) {
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.chunk_docs < 1) options_.chunk_docs = 1;
}

util::Status StreamingAligner::Run(const DocumentSource& source,
                                   const AlignmentSink& sink) const {
  int num_threads = options_.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads < 1) num_threads = 1;
  }

  if (num_threads <= 1) {
    // Inline path: read -> prepare -> align -> emit, one document live at
    // a time. Same per-document computation as the pooled path.
    size_t index = 0;
    while (true) {
      BRIQ_ASSIGN_OR_RETURN(std::optional<corpus::Document> doc, source());
      if (!doc.has_value()) return util::Status::OK();
      obs::ScopedSpan document_span("document");
      PreparedDocument prepared = PrepareDocument(*doc, *config_);
      sink(index++, *doc, aligner_->Align(prepared));
      StreamDocumentsCounter()->Add();
    }
  }

  // The queue publishes depth and blocked-time telemetry under
  // `briq.stream.*`; the telemetry bridge is static because the registry
  // instruments it resolves are process-wide anyway.
  static obs::QueueTelemetry queue_telemetry("briq.stream");
  util::BoundedQueue<WorkItem> queue(options_.queue_capacity,
                                     queue_telemetry.observer());
  EmitState emit;
  emit.window = options_.queue_capacity + static_cast<size_t>(num_threads);
  obs::MetricRegistry::Global()
      .GetGauge("briq.stream.reorder_window")
      ->Set(static_cast<int64_t>(emit.window));

  util::ThreadPool pool(num_threads);
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w) {
    workers.push_back(pool.Submit([this, &queue, &emit, &sink, &failed] {
      try {
        while (std::optional<WorkItem> item = queue.Pop()) {
          // After a failure elsewhere, keep popping (so the reader never
          // blocks on a full queue) but skip the work.
          if (failed.load(std::memory_order_relaxed)) continue;
          FinishedChunk chunk;
          chunk.base_doc_index = item->base_doc_index;
          chunk.items.reserve(item->docs.size());
          for (corpus::Document& doc : item->docs) {
            obs::ScopedSpan document_span("document");
            PreparedDocument prepared = PrepareDocument(doc, *config_);
            // `prepared` points into doc; align before moving the doc.
            DocumentAlignment alignment = aligner_->Align(prepared);
            chunk.items.push_back(
                FinishedItem{std::move(doc), std::move(alignment)});
          }
          EmitChunkInOrder(&emit, item->chunk_index, std::move(chunk), sink);
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(emit.mu);
          emit.failed = true;
        }
        emit.advanced.notify_all();
        while (queue.Pop().has_value()) {
        }
        throw;  // resurfaces from the worker future below
      }
    }));
  }

  // The calling thread is the reader; Push blocks once the queue is full,
  // which is exactly the back-pressure that bounds peak memory. Documents
  // accumulate into chunk-sized work items before each Push.
  util::Status status = util::Status::OK();
  size_t doc_index = 0;
  size_t chunk_index = 0;
  WorkItem pending;
  pending.docs.reserve(options_.chunk_docs);
  const auto flush_pending = [&] {
    if (pending.docs.empty()) return;
    pending.chunk_index = chunk_index++;
    queue.Push(std::move(pending));
    pending = WorkItem{};
    pending.docs.reserve(options_.chunk_docs);
  };
  while (true) {
    auto next = source();
    if (!next.ok()) {
      status = next.status();
      break;
    }
    if (!next->has_value()) break;
    if (pending.docs.empty()) pending.base_doc_index = doc_index;
    pending.docs.push_back(std::move(**next));
    ++doc_index;
    if (pending.docs.size() >= options_.chunk_docs) flush_pending();
  }
  flush_pending();
  queue.Close();

  for (auto& worker : workers) {
    try {
      worker.get();
    } catch (const std::exception& e) {
      if (status.ok()) {
        status = util::Status::Internal(
            std::string("streaming worker failed: ") + e.what());
      }
    }
  }
  return status;
}

util::Status AlignShardedCorpus(const Aligner& aligner,
                                const BriqConfig& config,
                                const std::string& directory,
                                const std::string& stem,
                                const StreamingOptions& options,
                                const AlignmentSink& sink,
                                size_t shard_begin, size_t shard_end) {
  const bool whole_corpus = shard_begin == 0 && shard_end == SIZE_MAX;
  auto reader =
      whole_corpus
          ? corpus::ShardedCorpusReader::Open(directory, stem)
          : corpus::ShardedCorpusReader::Open(directory, stem, shard_begin,
                                              shard_end);
  if (!reader.ok()) return reader.status();
  StreamingAligner streaming(&aligner, &config, options);
  return streaming.Run([&reader] { return reader->Next(); }, sink);
}

}  // namespace briq::core
