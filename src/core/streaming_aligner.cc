#include "core/streaming_aligner.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/extraction.h"
#include "corpus/shard_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace briq::core {

namespace {

struct WorkItem {
  size_t index = 0;
  corpus::Document doc;
};

struct FinishedItem {
  corpus::Document doc;
  DocumentAlignment alignment;
};

/// Shared state of the reordering emitter: finished documents park in
/// `ready` until every earlier index has been delivered. The emit window
/// caps how far ahead of `next_emit` a worker may park a result, so the
/// buffer — like the queue — holds O(queue + threads) documents, never
/// O(corpus).
struct EmitState {
  std::mutex mu;
  std::condition_variable advanced;
  std::map<size_t, FinishedItem> ready;
  size_t next_emit = 0;
  size_t window = 0;
  /// Set when any worker threw; releases waiters and stops emission so the
  /// pipeline drains instead of stalling on the gap the dead worker left.
  bool failed = false;
};

/// Streaming telemetry (DESIGN.md §5d). The queue instruments live under
/// `briq.stream.*` via QueueTelemetry; the reorder buffer reports its
/// depth and high-water mark here. Gauges describe the run currently in
/// flight; run one streaming pipeline at a time when reading them.
obs::Counter* StreamDocumentsCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.stream.documents");
  return counter;
}

obs::Gauge* ReorderBufferedGauge() {
  static obs::Gauge* gauge =
      obs::MetricRegistry::Global().GetGauge("briq.stream.reorder_buffered");
  return gauge;
}

obs::Gauge* ReorderBufferedPeakGauge() {
  static obs::Gauge* gauge = obs::MetricRegistry::Global().GetGauge(
      "briq.stream.reorder_buffered_peak");
  return gauge;
}

/// Parks one finished document and flushes the contiguous prefix to the
/// sink. Sink calls happen under the emitter mutex: strictly ordered and
/// never concurrent, as streaming_aligner.h promises.
void EmitInOrder(EmitState* state, size_t index, FinishedItem item,
                 const AlignmentSink& sink) {
  std::unique_lock<std::mutex> lock(state->mu);
  // Back-pressure on the reorder buffer. The worker holding `next_emit`
  // never waits (its index is trivially inside the window), so the window
  // always drains and this cannot deadlock.
  state->advanced.wait(lock, [state, index] {
    return state->failed || index < state->next_emit + state->window;
  });
  if (state->failed) return;
  state->ready.emplace(index, std::move(item));
  ReorderBufferedPeakGauge()->SetMax(static_cast<int64_t>(state->ready.size()));
  while (!state->ready.empty() &&
         state->ready.begin()->first == state->next_emit) {
    auto node = state->ready.extract(state->ready.begin());
    sink(node.key(), node.mapped().doc, node.mapped().alignment);
    ++state->next_emit;
    StreamDocumentsCounter()->Add();
  }
  ReorderBufferedGauge()->Set(static_cast<int64_t>(state->ready.size()));
  lock.unlock();
  state->advanced.notify_all();
}

}  // namespace

StreamingAligner::StreamingAligner(const Aligner* aligner,
                                   const BriqConfig* config,
                                   StreamingOptions options)
    : aligner_(aligner), config_(config), options_(options) {
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
}

util::Status StreamingAligner::Run(const DocumentSource& source,
                                   const AlignmentSink& sink) const {
  int num_threads = options_.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads < 1) num_threads = 1;
  }

  if (num_threads <= 1) {
    // Inline path: read -> prepare -> align -> emit, one document live at
    // a time. Same per-document computation as the pooled path.
    size_t index = 0;
    while (true) {
      BRIQ_ASSIGN_OR_RETURN(std::optional<corpus::Document> doc, source());
      if (!doc.has_value()) return util::Status::OK();
      obs::ScopedSpan document_span("document");
      PreparedDocument prepared = PrepareDocument(*doc, *config_);
      sink(index++, *doc, aligner_->Align(prepared));
      StreamDocumentsCounter()->Add();
    }
  }

  // The queue publishes depth and blocked-time telemetry under
  // `briq.stream.*`; the telemetry bridge is static because the registry
  // instruments it resolves are process-wide anyway.
  static obs::QueueTelemetry queue_telemetry("briq.stream");
  util::BoundedQueue<WorkItem> queue(options_.queue_capacity,
                                     queue_telemetry.observer());
  EmitState emit;
  emit.window = options_.queue_capacity + static_cast<size_t>(num_threads);
  obs::MetricRegistry::Global()
      .GetGauge("briq.stream.reorder_window")
      ->Set(static_cast<int64_t>(emit.window));

  util::ThreadPool pool(num_threads);
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w) {
    workers.push_back(pool.Submit([this, &queue, &emit, &sink, &failed] {
      try {
        while (std::optional<WorkItem> item = queue.Pop()) {
          // After a failure elsewhere, keep popping (so the reader never
          // blocks on a full queue) but skip the work.
          if (failed.load(std::memory_order_relaxed)) continue;
          obs::ScopedSpan document_span("document");
          PreparedDocument prepared = PrepareDocument(item->doc, *config_);
          // `prepared` points into item->doc; align before moving the doc.
          DocumentAlignment alignment = aligner_->Align(prepared);
          EmitInOrder(&emit, item->index,
                      FinishedItem{std::move(item->doc), std::move(alignment)},
                      sink);
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(emit.mu);
          emit.failed = true;
        }
        emit.advanced.notify_all();
        while (queue.Pop().has_value()) {
        }
        throw;  // resurfaces from the worker future below
      }
    }));
  }

  // The calling thread is the reader; Push blocks once the queue is full,
  // which is exactly the back-pressure that bounds peak memory.
  util::Status status = util::Status::OK();
  size_t index = 0;
  while (true) {
    auto next = source();
    if (!next.ok()) {
      status = next.status();
      break;
    }
    if (!next->has_value()) break;
    queue.Push(WorkItem{index++, std::move(**next)});
  }
  queue.Close();

  for (auto& worker : workers) {
    try {
      worker.get();
    } catch (const std::exception& e) {
      if (status.ok()) {
        status = util::Status::Internal(
            std::string("streaming worker failed: ") + e.what());
      }
    }
  }
  return status;
}

util::Status AlignShardedCorpus(const Aligner& aligner,
                                const BriqConfig& config,
                                const std::string& directory,
                                const std::string& stem,
                                const StreamingOptions& options,
                                const AlignmentSink& sink) {
  auto reader = corpus::ShardedCorpusReader::Open(directory, stem);
  if (!reader.ok()) return reader.status();
  StreamingAligner streaming(&aligner, &config, options);
  return streaming.Run([&reader] { return reader->Next(); }, sink);
}

}  // namespace briq::core
