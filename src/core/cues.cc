#include "core/cues.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/string_util.h"

namespace briq::core {

namespace {

using table::AggregateFunction;

const std::unordered_map<std::string, AggregateFunction>& CueMap() {
  static const auto& kMap =
      *new std::unordered_map<std::string, AggregateFunction>{
          // Sum cues.
          {"total", AggregateFunction::kSum},
          {"totals", AggregateFunction::kSum},
          {"totaled", AggregateFunction::kSum},
          {"summed", AggregateFunction::kSum},
          {"sum", AggregateFunction::kSum},
          {"overall", AggregateFunction::kSum},
          {"together", AggregateFunction::kSum},
          {"combined", AggregateFunction::kSum},
          {"altogether", AggregateFunction::kSum},
          {"aggregate", AggregateFunction::kSum},
          // Difference cues.
          {"difference", AggregateFunction::kDiff},
          {"up", AggregateFunction::kDiff},
          {"down", AggregateFunction::kDiff},
          {"rose", AggregateFunction::kDiff},
          {"fell", AggregateFunction::kDiff},
          {"gained", AggregateFunction::kDiff},
          {"lost", AggregateFunction::kDiff},
          {"exceeded", AggregateFunction::kDiff},
          {"cheaper", AggregateFunction::kDiff},
          {"dearer", AggregateFunction::kDiff},
          {"gap", AggregateFunction::kDiff},
          {"widened", AggregateFunction::kDiff},
          // Percentage cues.
          {"share", AggregateFunction::kPercentage},
          {"proportion", AggregateFunction::kPercentage},
          {"accounted", AggregateFunction::kPercentage},
          {"among", AggregateFunction::kPercentage},
          {"fraction", AggregateFunction::kPercentage},
          // Change-ratio cues.
          {"increased", AggregateFunction::kChangeRatio},
          {"decreased", AggregateFunction::kChangeRatio},
          {"grew", AggregateFunction::kChangeRatio},
          {"declined", AggregateFunction::kChangeRatio},
          {"shrank", AggregateFunction::kChangeRatio},
          {"growth", AggregateFunction::kChangeRatio},
          {"change", AggregateFunction::kChangeRatio},
          {"rate", AggregateFunction::kChangeRatio},
      };
  return kMap;
}

int CueIndex(AggregateFunction f) {
  for (int i = 0; i < kNumCueFunctions; ++i) {
    if (kCueFunctions[i] == f) return i;
  }
  return -1;
}

}  // namespace

AggregateFunction CueFunctionOf(std::string_view word) {
  auto it = CueMap().find(util::ToLower(word));
  return it == CueMap().end() ? AggregateFunction::kNone : it->second;
}

std::vector<int> CountCues(const std::vector<text::Token>& tokens,
                           size_t begin, size_t end) {
  std::vector<int> counts(kNumCueFunctions, 0);
  end = std::min(end, tokens.size());
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind != text::TokenKind::kWord) continue;
    AggregateFunction f = CueFunctionOf(tokens[i].textual);
    int idx = CueIndex(f);
    if (idx >= 0) ++counts[idx];
  }
  return counts;
}

AggregateFunction InferAggregateFunction(
    const std::vector<text::Token>& tokens, size_t pos, int window) {
  size_t begin = pos >= static_cast<size_t>(window) ? pos - window : 0;
  size_t end = std::min(tokens.size(), pos + window + 1);
  std::vector<int> counts = CountCues(tokens, begin, end);
  int best = -1;
  int best_count = 0;
  bool tie = false;
  for (int i = 0; i < kNumCueFunctions; ++i) {
    if (counts[i] > best_count) {
      best_count = counts[i];
      best = i;
      tie = false;
    } else if (counts[i] == best_count && counts[i] > 0) {
      tie = true;
    }
  }
  if (best < 0 || best_count == 0 || tie) return AggregateFunction::kNone;
  return kCueFunctions[best];
}

}  // namespace briq::core
