#ifndef BRIQ_CORE_STREAMING_ALIGNER_H_
#define BRIQ_CORE_STREAMING_ALIGNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/aligner.h"
#include "core/config.h"
#include "corpus/document.h"
#include "util/result.h"

namespace briq::core {

/// Tuning knobs of the streaming alignment pipeline.
struct StreamingOptions {
  /// Worker threads (0 = hardware concurrency, <= 1 runs fully inline).
  int num_threads = 0;
  /// Capacity of the bounded work-chunk queue between the reader and the
  /// workers; this is the back-pressure valve that keeps peak memory at
  /// O((queue + threads) * chunk_docs) documents regardless of corpus
  /// size.
  size_t queue_capacity = 8;
  /// Documents batched into one queue item / one reorder-buffer slot.
  /// Chunking amortizes the queue mutex, the emitter lock, and the
  /// condition-variable wakeups over `chunk_docs` documents — the per-doc
  /// churn that made 8-thread streaming slower than 1-thread on small
  /// documents. Emission order and the sink contract are unchanged
  /// (per-document, strictly increasing).
  size_t chunk_docs = 8;
};

/// Pull-based document source: each call yields the next document, a
/// std::nullopt at end-of-stream, or an error that aborts the run.
using DocumentSource =
    std::function<util::Result<std::optional<corpus::Document>>()>;

/// Result consumer. Called exactly once per document in strictly
/// increasing `doc_index` order (0-based position in the stream), never
/// concurrently — callers need no locking of their own.
using AlignmentSink = std::function<void(size_t doc_index,
                                         const corpus::Document& doc,
                                         const DocumentAlignment& alignment)>;

/// Streams documents through prepare + align with bounded memory: a
/// reader (the calling thread) feeds a BoundedQueue, pool workers prepare
/// and align, and a reordering emitter hands results to the sink in
/// document order. Alignments are bit-identical to the in-memory
/// `Aligner::AlignBatch` path for the same documents, at any thread count
/// (enforced by tests/streaming_parity_test.cc).
class StreamingAligner {
 public:
  /// Neither `aligner` nor `config` is owned; both must outlive the runs.
  StreamingAligner(const Aligner* aligner, const BriqConfig* config,
                   StreamingOptions options = {});

  /// Drains `source`, aligning every document and delivering results to
  /// `sink` in document order. On a source error the queue is drained,
  /// already-read documents are still delivered, and the error is
  /// returned.
  util::Status Run(const DocumentSource& source,
                   const AlignmentSink& sink) const;

  const StreamingOptions& options() const { return options_; }

 private:
  const Aligner* aligner_;
  const BriqConfig* config_;
  StreamingOptions options_;
};

/// Convenience wrapper: streams a sharded corpus (see corpus/shard_io.h)
/// through `aligner`. The default arguments cover the whole corpus; a
/// fleet worker passes its assigned [shard_begin, shard_end) range and
/// still sees corpus-global document indices in the sink (the range
/// reader's contract), so per-range outputs concatenate cleanly.
util::Status AlignShardedCorpus(const Aligner& aligner,
                                const BriqConfig& config,
                                const std::string& directory,
                                const std::string& stem,
                                const StreamingOptions& options,
                                const AlignmentSink& sink,
                                size_t shard_begin = 0,
                                size_t shard_end = SIZE_MAX);

}  // namespace briq::core

#endif  // BRIQ_CORE_STREAMING_ALIGNER_H_
