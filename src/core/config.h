#ifndef BRIQ_CORE_CONFIG_H_
#define BRIQ_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "graph/random_walk.h"
#include "ml/random_forest.h"
#include "quantity/quantity_parser.h"
#include "table/virtual_cell.h"

namespace briq::core {

/// Feature-group membership for the ablation study (paper Table VII).
enum class FeatureGroup {
  kSurface,   // f1
  kContext,   // f2-f5, f11, f12
  kQuantity,  // f6-f10
};

/// Number of mention-pair features (f1..f12).
inline constexpr int kNumPairFeatures = 12;

/// Group of each feature index (0-based f1..f12).
FeatureGroup FeatureGroupOf(int feature_index);

/// All hyperparameters of the BriQ pipeline. Defaults are the values tuned
/// on the withheld validation split (see bench/ and tests); every knob the
/// paper tunes by grid search is exposed here.
struct BriqConfig {
  // --- Stage 1: extraction --------------------------------------------------
  quantity::ExtractionOptions extraction;
  table::VirtualCellOptions virtual_cells;

  // --- Features --------------------------------------------------------------
  /// Local-context window: n words before/after the text mention (f2).
  int context_window = 8;
  /// Distance discount of the weighted overlap: weight(e) = 1 - (d /
  /// step_size) * step_weight, floored at min_word_weight.
  int step_size = 2;
  double step_weight = 0.15;
  double min_word_weight = 0.1;
  /// Window (words) for aggregate-function cue lookup around a mention
  /// (f12 / tagger immediate context).
  int agg_cue_window = 5;
  /// Active feature indices (ablation support); empty means all 12.
  std::vector<int> active_features;

  // --- Stage 2: mention-pair classifier --------------------------------------
  ml::ForestConfig forest;
  /// Hard negatives sampled per positive during training (paper §VII-B).
  int negatives_per_positive = 5;

  // --- Text-mention tagger ----------------------------------------------------
  ml::ForestConfig tagger_forest;
  /// Aggregate pairs are pruned only when the tagger is at least this
  /// confident (precision-oriented tagging, paper §V-A).
  double tagger_min_confidence = 0.5;

  // --- Classification fast path (DESIGN.md §5g) -------------------------------
  /// Score pairs through the compiled ml::FlatForest layout (batched,
  /// struct-of-arrays) instead of the pointer trees. Bit-identical scores;
  /// off switches back to the legacy path for A/B runs.
  bool flat_forest = true;
  /// Pre-index table mentions by (unit class, value-magnitude bucket) per
  /// document so obviously incompatible pairs are never featurized. The
  /// probe returns a superset of the legacy survivors, so kept alignments
  /// are byte-identical; trace runs bypass the index to keep the Table VI
  /// candidate counts unchanged.
  bool candidate_index = true;

  // --- Stage 3: adaptive filtering --------------------------------------------
  /// Prune pairs whose relative value difference exceeds `prune_value_diff`
  /// when the classifier score is below `prune_score_threshold` (§V-B).
  double prune_value_diff = 0.25;
  double prune_score_threshold = 0.35;
  /// Top-k per mention by type: exact mentions keep fewer candidates.
  int top_k_exact = 4;
  int top_k_approx = 8;
  /// Entropy-adaptive k: distributions below the (normalized) entropy
  /// threshold keep top_k_low_entropy, above keep top_k_high_entropy.
  double entropy_threshold = 0.55;
  int top_k_low_entropy = 2;
  int top_k_high_entropy = 10;
  /// When in (0, 1], the entropy threshold adapts to the corpus instead of
  /// staying fixed: each document uses this percentile of the global
  /// `briq.filter.classifier_entropy` histogram as its threshold, so "low
  /// entropy" means "low relative to what the corpus actually produces".
  /// Falls back to `entropy_threshold` until the histogram holds enough
  /// observations (or when metrics are compiled out). 0 disables (default).
  double entropy_percentile_topk = 0.0;

  // --- Stage 4: global resolution ----------------------------------------------
  /// Text-text edge weight Wxx = lambda_proximity * fprox + lambda_strsim *
  /// fstrsim. fprox is 1 - (token distance / document length): the paper
  /// words it as the raw separation count, but a *similarity* is required
  /// for edge weights, so nearer mentions weigh more.
  double lambda_proximity = 0.5;
  double lambda_strsim = 0.5;
  /// Token-distance cutoff for text-text edges.
  int text_edge_max_distance = 60;
  /// Surface-similarity cutoff that also creates a text-text edge.
  double text_edge_min_strsim = 0.85;
  /// Uniform weight of table-table edges (same row / same column, and
  /// virtual cell <-> constituent cells).
  double table_edge_weight = 0.5;
  graph::RwrConfig rwr;
  /// OverallScore(t|x) = alpha * pi(t|x) + beta * sigma(t|x)  (Eq. 1).
  double alpha = 0.5;
  double beta = 0.5;
  /// Acceptance threshold epsilon on the overall score.
  double epsilon = 0.03;
  /// Design-choice ablations of Algorithm 1: process mentions in
  /// increasing-entropy order (vs. document order), and delete resolved
  /// mentions' edges so later walks see the decisions.
  bool entropy_ordering = true;
  bool edge_deletion = true;

  uint64_t seed = 1234;

  BriqConfig() {
    forest.num_trees = 48;
    forest.tree.max_depth = 14;
    forest.seed = 4242;
    tagger_forest.num_trees = 32;
    tagger_forest.tree.max_depth = 10;
    tagger_forest.seed = 777;
  }

  /// True if feature f (0-based) participates given the ablation mask.
  bool FeatureActive(int f) const;
};

/// Number of pair features active under `config.active_features`
/// (kNumPairFeatures when the mask is empty). Depends only on the config,
/// so training sinks can be sized before the first document arrives.
int NumActivePairFeatures(const BriqConfig& config);

}  // namespace briq::core

#endif  // BRIQ_CORE_CONFIG_H_
