#include "core/qkb.h"

#include <cmath>

namespace briq::core {

std::optional<QkbAligner::CanonicalQuantity> QkbAligner::Canonicalize(
    const std::string& unit, quantity::UnitCategory category, double value) {
  using quantity::UnitCategory;
  // The KB registers only a handful of measures — deliberately small, like
  // the "merely small and limited to special domains" KBs the paper
  // describes (§I).
  switch (category) {
    case UnitCategory::kCurrency:
      if (unit == "USD" || unit == "EUR" || unit == "GBP" || unit == "CAD") {
        return CanonicalQuantity{"currency:" + unit, value};
      }
      return std::nullopt;  // unregistered currency
    case UnitCategory::kPercent:
      return CanonicalQuantity{"percent", value};
    case UnitCategory::kNone:
      return CanonicalQuantity{"count", value};
    default:
      return std::nullopt;  // physical units absent from the KB
  }
}

DocumentAlignment QkbAligner::Align(const PreparedDocument& doc) const {
  DocumentAlignment alignment;
  for (size_t x = 0; x < doc.text_mentions.size(); ++x) {
    const auto& q = doc.text_mentions[x].q;
    auto text_entry = Canonicalize(q.unit, q.unit_category, q.value);
    if (!text_entry.has_value()) continue;

    // Exact-match lookup over explicit cells only (a KB holds no virtual
    // aggregates). Ambiguity (several cells with the same canonical value)
    // defeats the method: it has no disambiguation signal, so it abstains.
    int match = -1;
    bool ambiguous = false;
    for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
      const auto& tm = doc.table_mentions[t];
      if (tm.is_virtual()) continue;
      auto cell_entry = Canonicalize(tm.unit, tm.unit_category, tm.value);
      if (!cell_entry.has_value()) continue;
      if (cell_entry->measure != text_entry->measure) continue;
      if (std::fabs(cell_entry->value - text_entry->value) >
          1e-9 * std::max(1.0, std::fabs(text_entry->value))) {
        continue;
      }
      if (match >= 0) {
        ambiguous = true;
        break;
      }
      match = static_cast<int>(t);
    }
    if (match >= 0 && !ambiguous) {
      alignment.decisions.push_back(
          AlignmentDecision{static_cast<int>(x), match, 1.0});
    }
  }
  return alignment;
}

}  // namespace briq::core
