#ifndef BRIQ_CORE_FILTERING_H_
#define BRIQ_CORE_FILTERING_H_

#include <map>
#include <vector>

#include "core/classifier.h"
#include "core/config.h"
#include "core/extraction.h"
#include "core/tagger.h"

namespace briq::core {

/// A surviving candidate pair with its classifier prior.
struct Candidate {
  size_t text_idx = 0;
  size_t table_idx = 0;
  double score = 0.0;  // sigma, the classifier confidence
};

/// Telemetry of the adaptive filter (reproduces the paper's Table VI:
/// selectivity and post-filter recall by mention type).
struct FilterTrace {
  struct TypeStat {
    size_t pairs_before = 0;
    size_t pairs_after = 0;
    size_t gt_pairs = 0;
    size_t gt_survived = 0;

    double Selectivity() const {
      return pairs_before == 0
                 ? 0.0
                 : static_cast<double>(pairs_after) / pairs_before;
    }
    double Recall() const {
      return gt_pairs == 0 ? 0.0
                           : static_cast<double>(gt_survived) / gt_pairs;
    }
  };
  /// Keyed by the table-mention side's aggregate function.
  std::map<table::AggregateFunction, TypeStat> by_type;
  TypeStat overall;
};

/// Stage-3 adaptive filtering (paper §V): tagger-based pruning of
/// aggregate pairs, value/unit pruning, then mention-type- and
/// entropy-adaptive top-k selection of candidates per text mention.
class AdaptiveFilter {
 public:
  AdaptiveFilter(const BriqConfig* config, const TextMentionTagger* tagger,
                 const MentionPairClassifier* classifier)
      : config_(config), tagger_(tagger), classifier_(classifier) {}

  /// Produces, for each text mention, its surviving candidates sorted by
  /// descending classifier score. `trace` (optional) accumulates Table-VI
  /// statistics; tracing requires doc.source ground truth.
  std::vector<std::vector<Candidate>> Filter(const PreparedDocument& doc,
                                             const FeatureComputer& features,
                                             FilterTrace* trace) const;

 private:
  const BriqConfig* config_;
  const TextMentionTagger* tagger_;
  const MentionPairClassifier* classifier_;
};

}  // namespace briq::core

#endif  // BRIQ_CORE_FILTERING_H_
