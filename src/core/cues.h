#ifndef BRIQ_CORE_CUES_H_
#define BRIQ_CORE_CUES_H_

#include <string_view>
#include <vector>

#include "table/mention.h"
#include "text/tokenizer.h"

namespace briq::core {

/// The aggregation functions detectable from textual cues, in tagger label
/// order. Index 0 is reserved for "single cell" (no cue).
inline constexpr table::AggregateFunction kCueFunctions[] = {
    table::AggregateFunction::kSum,
    table::AggregateFunction::kDiff,
    table::AggregateFunction::kPercentage,
    table::AggregateFunction::kChangeRatio,
};
inline constexpr int kNumCueFunctions = 4;

/// Maps a word to the aggregate function it cues, or kNone. The manually
/// compiled cue lists of paper §V-A ("total, summed, overall, together" for
/// sum, etc.).
table::AggregateFunction CueFunctionOf(std::string_view word);

/// Counts cue words per function among tokens[begin, end).
/// Returns kNumCueFunctions counts in kCueFunctions order.
std::vector<int> CountCues(const std::vector<text::Token>& tokens,
                           size_t begin, size_t end);

/// The single aggregate function cued within a window of `window` tokens
/// around position `pos` (exclusive of the mention itself); kNone if no cue
/// or conflicting weak evidence. Majority of cue counts wins.
table::AggregateFunction InferAggregateFunction(
    const std::vector<text::Token>& tokens, size_t pos, int window);

}  // namespace briq::core

#endif  // BRIQ_CORE_CUES_H_
