#include "core/features.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/cues.h"
#include "util/logging.h"
#include "util/similarity.h"
#include "util/string_util.h"

namespace briq::core {

namespace {

using table::AggregateFunction;
using table::TableMention;
using table::TextMention;

// Table-mention surface used for f1: the raw cell text for single cells,
// the formatted value for virtual cells (their synthesized "sum(...)"
// surface carries no comparable characters).
std::string SurfaceForSimilarity(const TableMention& m) {
  if (!m.is_virtual()) return util::ToLower(m.surface);
  return util::FormatDouble(m.value, std::max(m.precision, 2));
}

double UnnormalizedValue(const PreparedDocument& doc, const TableMention& m) {
  if (!m.is_virtual()) {
    const table::Table& t = doc.source->tables[m.table_index];
    const auto& q = t.cell(m.cells[0]).quantity;
    if (q.has_value()) return q->unnormalized;
  }
  return m.value;
}

int TablePrecision(const TableMention& m) { return m.precision; }

int ScaleOf(double v) {
  if (v == 0.0 || !std::isfinite(v)) return 0;
  return static_cast<int>(std::floor(std::log10(std::fabs(v))));
}

// f8 unit match: 3 strong match, 2 weak match (neither has a unit),
// 1 weak mismatch (one side has a unit), 0 strong mismatch.
double UnitMatch(const TextMention& x, const TableMention& t) {
  const bool xu = x.q.has_unit();
  const bool tu = t.has_unit();
  if (xu && tu) return x.q.unit == t.unit ? 3.0 : 0.0;
  if (!xu && !tu) return 2.0;
  return 1.0;
}

// f12 aggregate-function match: 3 strong match (cued function equals the
// virtual cell's), 2 weak match (no cue, single cell), 1 weak mismatch
// (aggregation evidence on one side only), 0 strong mismatch.
double AggregateMatch(AggregateFunction inferred, AggregateFunction actual) {
  const bool x_agg = inferred != AggregateFunction::kNone;
  const bool t_agg = actual != AggregateFunction::kNone;
  if (x_agg && t_agg) return inferred == actual ? 3.0 : 0.0;
  if (!x_agg && !t_agg) return 2.0;
  return 1.0;
}

}  // namespace

FeatureComputer::FeatureComputer(const PreparedDocument& doc,
                                 const BriqConfig& config)
    : doc_(doc), config_(config) {}

std::vector<std::string> FeatureComputer::FeatureNames() {
  return {"f1_surface_sim",    "f2_local_word_overlap",
          "f3_global_word_overlap", "f4_local_phrase_overlap",
          "f5_global_phrase_overlap", "f6_rel_diff_normalized",
          "f7_rel_diff_unnormalized", "f8_unit_match",
          "f9_scale_diff",     "f10_precision_diff",
          "f11_approx_indicator", "f12_aggregate_match"};
}

void FeatureComputer::AddLocalTableWords(const TableMention& m,
                                         util::WeightedBag* bag) const {
  const auto& ctx = doc_.table_contexts[m.table_index];
  std::set<int> rows;
  std::set<int> cols;
  for (const auto& c : m.cells) {
    rows.insert(c.row);
    cols.insert(c.col);
  }
  for (int r : rows) {
    for (const std::string& w : ctx.row_words[r]) (*bag)[w] = 1.0;
  }
  for (int c : cols) {
    for (const std::string& w : ctx.col_words[c]) (*bag)[w] = 1.0;
  }
}

void FeatureComputer::AppendLocalTablePhrases(
    const TableMention& m, std::vector<std::string>* out) const {
  const auto& ctx = doc_.table_contexts[m.table_index];
  std::set<int> rows;
  std::set<int> cols;
  for (const auto& c : m.cells) {
    rows.insert(c.row);
    cols.insert(c.col);
  }
  for (int r : rows) {
    out->insert(out->end(), ctx.row_phrases[r].begin(),
                ctx.row_phrases[r].end());
  }
  for (int c : cols) {
    out->insert(out->end(), ctx.col_phrases[c].begin(),
                ctx.col_phrases[c].end());
  }
}

std::vector<double> FeatureComputer::ComputeAll(size_t text_idx,
                                                size_t table_idx) const {
  std::vector<double> f(kNumPairFeatures, 0.0);
  ComputeAll(text_idx, table_idx, f.data());
  return f;
}

void FeatureComputer::ComputeAll(size_t text_idx, size_t table_idx,
                                 double* f) const {
  BRIQ_CHECK(text_idx < doc_.text_mentions.size()) << "bad text index";
  BRIQ_CHECK(table_idx < doc_.table_mentions.size()) << "bad table index";
  const TextMention& x = doc_.text_mentions[text_idx];
  const TableMention& t = doc_.table_mentions[table_idx];
  const auto& tokens = doc_.paragraph_tokens[x.paragraph];

  // Word/phrase bags are scratch reused across calls; per-thread so the
  // same FeatureComputer can score pairs from several AlignBatch workers.
  thread_local util::WeightedBag text_bag;
  thread_local util::WeightedBag table_bag;
  thread_local std::vector<std::string> table_phrases;

  std::fill(f, f + kNumPairFeatures, 0.0);

  // f1: surface similarity.
  f[0] = util::JaroWinklerSimilarity(util::ToLower(x.surface()),
                                     SurfaceForSimilarity(t));

  // f2: local word overlap, distance-weighted window around the mention.
  {
    text_bag.clear();
    const int n = config_.context_window;
    const size_t pos = x.token_pos;
    const size_t lo = pos >= static_cast<size_t>(n) ? pos - n : 0;
    const size_t hi = std::min(tokens.size(), pos + n + 1);
    for (size_t i = lo; i < hi; ++i) {
      if (i == pos) continue;
      if (tokens[i].kind != text::TokenKind::kWord &&
          tokens[i].kind != text::TokenKind::kNumber) {
        continue;
      }
      const double d = static_cast<double>(i > pos ? i - pos : pos - i);
      double w = 1.0 - (d / config_.step_size) * config_.step_weight;
      w = std::max(w, config_.min_word_weight);
      std::string word = util::ToLower(tokens[i].textual);
      auto [it, inserted] = text_bag.emplace(std::move(word), w);
      if (!inserted) it->second = std::max(it->second, w);
    }
    table_bag.clear();
    AddLocalTableWords(t, &table_bag);
    f[1] = util::WeightedOverlapCoefficient(text_bag, table_bag);
  }

  // f3: global word overlap (paragraph vs whole table).
  f[2] = util::OverlapCoefficient(doc_.paragraph_words[x.paragraph],
                                  doc_.table_contexts[t.table_index].all_words);

  // f4: local phrase overlap (sentence vs mention's rows/columns).
  {
    const auto& sent_phrases = doc_.sentence_phrases[x.paragraph];
    const std::vector<std::string>& xs =
        x.sentence < static_cast<int>(sent_phrases.size())
            ? sent_phrases[x.sentence]
            : doc_.paragraph_phrases[x.paragraph];
    table_phrases.clear();
    AppendLocalTablePhrases(t, &table_phrases);
    f[3] = util::OverlapCoefficient(xs, table_phrases);
  }

  // f5: global phrase overlap.
  f[4] = util::OverlapCoefficient(
      doc_.paragraph_phrases[x.paragraph],
      doc_.table_contexts[t.table_index].all_phrases);

  // f6/f7: value compatibility.
  f[5] = quantity::RelativeDifference(x.q.value, t.value);
  f[6] = quantity::RelativeDifference(x.q.unnormalized,
                                      UnnormalizedValue(doc_, t));

  // f8: unit match.
  f[7] = UnitMatch(x, t);

  // f9/f10: scale and precision difference.
  f[8] = std::fabs(x.q.Scale() - ScaleOf(t.value));
  f[9] = std::fabs(x.q.precision - TablePrecision(t));

  // f11: approximation indicator.
  f[10] = static_cast<double>(x.q.approx);

  // f12: aggregate-function match from cue words.
  AggregateFunction inferred =
      InferAggregateFunction(tokens, x.token_pos, config_.agg_cue_window);
  f[11] = AggregateMatch(inferred, t.func);
}

std::vector<double> FeatureComputer::Compute(size_t text_idx,
                                             size_t table_idx) const {
  std::vector<double> out;
  Compute(text_idx, table_idx, &out);
  return out;
}

void FeatureComputer::Compute(size_t text_idx, size_t table_idx,
                              std::vector<double>* out) const {
  double all[kNumPairFeatures];
  ComputeAll(text_idx, table_idx, all);
  out->clear();
  if (config_.active_features.empty()) {
    out->insert(out->end(), all, all + kNumPairFeatures);
    return;
  }
  for (int i = 0; i < kNumPairFeatures; ++i) {
    if (config_.FeatureActive(i)) out->push_back(all[i]);
  }
}

int FeatureComputer::NumActive() const {
  return NumActivePairFeatures(config_);
}

double FeatureComputer::UniformSimilarity(size_t text_idx,
                                          size_t table_idx) const {
  double f[kNumPairFeatures];
  ComputeAll(text_idx, table_idx, f);
  // Per-feature mapping to [0, 1] similarities. f11 is a modifier, not a
  // similarity, and is skipped.
  double total = 0.0;
  int count = 0;
  auto add = [&](int idx, double sim) {
    if (!config_.FeatureActive(idx)) return;
    total += sim;
    ++count;
  };
  add(0, f[0]);
  add(1, f[1]);
  add(2, f[2]);
  add(3, f[3]);
  add(4, f[4]);
  add(5, 1.0 - f[5]);
  add(6, 1.0 - f[6]);
  add(7, f[7] / 3.0);
  add(8, 1.0 / (1.0 + f[8]));
  add(9, 1.0 / (1.0 + f[9]));
  add(11, f[11] / 3.0);
  return count == 0 ? 0.0 : total / count;
}

}  // namespace briq::core
