#include "core/features.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_set>

#include "core/cues.h"
#include "util/logging.h"
#include "util/similarity.h"
#include "util/string_util.h"

namespace briq::core {

namespace {

using table::AggregateFunction;
using table::TableMention;
using table::TextMention;

// Table-mention surface used for f1: the raw cell text for single cells,
// the formatted value for virtual cells (their synthesized "sum(...)"
// surface carries no comparable characters).
std::string SurfaceForSimilarity(const TableMention& m) {
  if (!m.is_virtual()) return util::ToLower(m.surface);
  return util::FormatDouble(m.value, std::max(m.precision, 2));
}

double UnnormalizedValue(const PreparedDocument& doc, const TableMention& m) {
  if (!m.is_virtual()) {
    const table::Table& t = doc.source->tables[m.table_index];
    const auto& q = t.cell(m.cells[0]).quantity;
    if (q.has_value()) return q->unnormalized;
  }
  return m.value;
}

int TablePrecision(const TableMention& m) { return m.precision; }

int ScaleOf(double v) {
  if (v == 0.0 || !std::isfinite(v)) return 0;
  return static_cast<int>(std::floor(std::log10(std::fabs(v))));
}

// f8 unit match: 3 strong match, 2 weak match (neither has a unit),
// 1 weak mismatch (one side has a unit), 0 strong mismatch. Strong match
// is dimension-aware: "tonnes" against a "(kg)" column is a match, the
// value distance features already compare in base units.
double UnitMatch(const TextMention& x, const TableMention& t) {
  const bool xu = x.q.has_unit();
  const bool tu = t.has_unit();
  if (xu && tu) {
    return quantity::ConvertibleUnits(x.q.unit_category, x.q.unit,
                                      t.unit_category, t.unit)
               ? 3.0
               : 0.0;
  }
  if (!xu && !tu) return 2.0;
  return 1.0;
}

// f12 aggregate-function match: 3 strong match (cued function equals the
// virtual cell's), 2 weak match (no cue, single cell), 1 weak mismatch
// (aggregation evidence on one side only), 0 strong mismatch.
double AggregateMatch(AggregateFunction inferred, AggregateFunction actual) {
  const bool x_agg = inferred != AggregateFunction::kNone;
  const bool t_agg = actual != AggregateFunction::kNone;
  if (x_agg && t_agg) return inferred == actual ? 3.0 : 0.0;
  if (!x_agg && !t_agg) return 2.0;
  return 1.0;
}

std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return {v.begin(), v.end()};
}

/// util::OverlapCoefficient over pre-built sets: the original converts its
/// vectors to sets per call; intersection and min-cardinality are integer
/// counts, so the ratio is the bit-identical double either way.
double OverlapFromSets(const std::unordered_set<std::string>& a,
                       const std::unordered_set<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& big = a.size() <= b.size() ? b : a;
  size_t inter = 0;
  for (const auto& w : small) inter += big.count(w);
  return static_cast<double>(inter) / static_cast<double>(small.size());
}

}  // namespace

FeatureComputer::FeatureComputer(const PreparedDocument& doc,
                                 const BriqConfig& config)
    : doc_(doc), config_(config) {
  table_once_.resize(doc.table_mentions.size());
  table_bags_.resize(doc.table_mentions.size());
  table_phrases_.resize(doc.table_mentions.size());
  table_phrase_sets_.resize(doc.table_mentions.size());
  table_surfaces_.resize(doc.table_mentions.size());
  tbl_once_.resize(doc.table_contexts.size());
  tbl_word_sets_.resize(doc.table_contexts.size());
  tbl_phrase_sets_.resize(doc.table_contexts.size());
  para_once_.resize(doc.paragraph_words.size());
  para_word_sets_.resize(doc.paragraph_words.size());
  para_phrase_sets_.resize(doc.paragraph_words.size());
}

void FeatureComputer::EnsureTableMention(size_t t) const {
  std::call_once(table_once_[t], [&] {
    AddLocalTableWords(doc_.table_mentions[t], &table_bags_[t]);
    AppendLocalTablePhrases(doc_.table_mentions[t], &table_phrases_[t]);
    table_phrase_sets_[t] = ToSet(table_phrases_[t]);
    table_surfaces_[t] = SurfaceForSimilarity(doc_.table_mentions[t]);
  });
}

void FeatureComputer::EnsureTable(size_t tbl) const {
  std::call_once(tbl_once_[tbl], [&] {
    tbl_word_sets_[tbl] = ToSet(doc_.table_contexts[tbl].all_words);
    tbl_phrase_sets_[tbl] = ToSet(doc_.table_contexts[tbl].all_phrases);
  });
}

void FeatureComputer::EnsureParagraph(size_t p) const {
  std::call_once(para_once_[p], [&] {
    para_word_sets_[p] = ToSet(doc_.paragraph_words[p]);
    para_phrase_sets_[p] = ToSet(doc_.paragraph_phrases[p]);
  });
}

std::vector<std::string> FeatureComputer::FeatureNames() {
  return {"f1_surface_sim",    "f2_local_word_overlap",
          "f3_global_word_overlap", "f4_local_phrase_overlap",
          "f5_global_phrase_overlap", "f6_rel_diff_normalized",
          "f7_rel_diff_unnormalized", "f8_unit_match",
          "f9_scale_diff",     "f10_precision_diff",
          "f11_approx_indicator", "f12_aggregate_match"};
}

void FeatureComputer::AddLocalTableWords(const TableMention& m,
                                         util::WeightedBag* bag) const {
  const auto& ctx = doc_.table_contexts[m.table_index];
  std::set<int> rows;
  std::set<int> cols;
  for (const auto& c : m.cells) {
    rows.insert(c.row);
    cols.insert(c.col);
  }
  for (int r : rows) {
    for (const std::string& w : ctx.row_words[r]) (*bag)[w] = 1.0;
  }
  for (int c : cols) {
    for (const std::string& w : ctx.col_words[c]) (*bag)[w] = 1.0;
  }
}

void FeatureComputer::AppendLocalTablePhrases(
    const TableMention& m, std::vector<std::string>* out) const {
  const auto& ctx = doc_.table_contexts[m.table_index];
  std::set<int> rows;
  std::set<int> cols;
  for (const auto& c : m.cells) {
    rows.insert(c.row);
    cols.insert(c.col);
  }
  for (int r : rows) {
    out->insert(out->end(), ctx.row_phrases[r].begin(),
                ctx.row_phrases[r].end());
  }
  for (int c : cols) {
    out->insert(out->end(), ctx.col_phrases[c].begin(),
                ctx.col_phrases[c].end());
  }
}

std::vector<double> FeatureComputer::ComputeAll(size_t text_idx,
                                                size_t table_idx) const {
  std::vector<double> f(kNumPairFeatures, 0.0);
  ComputeAll(text_idx, table_idx, f.data());
  return f;
}

/// Text-side state shared by every pair of one text mention (see header).
struct FeatureComputer::TextContext {
  size_t text_idx = 0;
  const TextMention* x = nullptr;
  std::string lower_surface;                  // f1 left operand
  util::WeightedBag bag;                      // f2 left operand
  std::unordered_set<std::string> sent_set;   // f4 left operand
  AggregateFunction inferred =
      AggregateFunction::kNone;               // f12 cued function
  /// f3/f5 memo, keyed by table index: the global overlaps depend only on
  /// (paragraph, table), so each table is computed once per text mention.
  /// NaN marks an empty slot (legit values are finite in [0, 1]).
  std::vector<double> f3_by_table;
  std::vector<double> f5_by_table;
};

void FeatureComputer::BuildTextContext(size_t text_idx,
                                       TextContext* ctx) const {
  BRIQ_CHECK(text_idx < doc_.text_mentions.size()) << "bad text index";
  const TextMention& x = doc_.text_mentions[text_idx];
  const auto& tokens = doc_.paragraph_tokens[x.paragraph];
  ctx->text_idx = text_idx;
  ctx->x = &x;
  ctx->lower_surface = util::ToLower(x.surface());

  // f2 left bag: distance-weighted window around the mention.
  ctx->bag.clear();
  const int n = config_.context_window;
  const size_t pos = x.token_pos;
  const size_t lo = pos >= static_cast<size_t>(n) ? pos - n : 0;
  const size_t hi = std::min(tokens.size(), pos + n + 1);
  for (size_t i = lo; i < hi; ++i) {
    if (i == pos) continue;
    if (tokens[i].kind != text::TokenKind::kWord &&
        tokens[i].kind != text::TokenKind::kNumber) {
      continue;
    }
    const double d = static_cast<double>(i > pos ? i - pos : pos - i);
    double w = 1.0 - (d / config_.step_size) * config_.step_weight;
    w = std::max(w, config_.min_word_weight);
    std::string word = util::ToLower(tokens[i].textual);
    auto [it, inserted] = ctx->bag.emplace(std::move(word), w);
    if (!inserted) it->second = std::max(it->second, w);
  }

  // f12 left operand: the cue-inferred aggregate function.
  ctx->inferred =
      InferAggregateFunction(tokens, x.token_pos, config_.agg_cue_window);

  // f4 left operand: the sentence's phrases (paragraph fallback).
  {
    const auto& sent_phrases = doc_.sentence_phrases[x.paragraph];
    const std::vector<std::string>& xs =
        x.sentence < static_cast<int>(sent_phrases.size())
            ? sent_phrases[x.sentence]
            : doc_.paragraph_phrases[x.paragraph];
    ctx->sent_set.clear();
    ctx->sent_set.insert(xs.begin(), xs.end());
  }

  ctx->f3_by_table.assign(doc_.table_contexts.size(),
                          std::numeric_limits<double>::quiet_NaN());
  ctx->f5_by_table.assign(doc_.table_contexts.size(),
                          std::numeric_limits<double>::quiet_NaN());
}

void FeatureComputer::ComputeAllFromContext(TextContext& ctx,
                                            size_t table_idx,
                                            double* f) const {
  BRIQ_CHECK(table_idx < doc_.table_mentions.size()) << "bad table index";
  const TextMention& x = *ctx.x;
  const TableMention& t = doc_.table_mentions[table_idx];
  EnsureTableMention(table_idx);

  std::fill(f, f + kNumPairFeatures, 0.0);

  // f1: surface similarity.
  f[0] = util::JaroWinklerSimilarity(ctx.lower_surface,
                                     table_surfaces_[table_idx]);

  // f2: local word overlap, distance-weighted window around the mention.
  f[1] = util::WeightedOverlapCoefficient(ctx.bag, table_bags_[table_idx]);

  // f3/f5: global word and phrase overlap (paragraph vs whole table),
  // memoized per (text mention, table).
  const size_t tbl = static_cast<size_t>(t.table_index);
  if (std::isnan(ctx.f3_by_table[tbl])) {
    EnsureTable(tbl);
    EnsureParagraph(x.paragraph);
    ctx.f3_by_table[tbl] =
        OverlapFromSets(para_word_sets_[x.paragraph], tbl_word_sets_[tbl]);
    ctx.f5_by_table[tbl] =
        OverlapFromSets(para_phrase_sets_[x.paragraph], tbl_phrase_sets_[tbl]);
  }
  f[2] = ctx.f3_by_table[tbl];

  // f4: local phrase overlap (sentence vs mention's rows/columns).
  f[3] = OverlapFromSets(ctx.sent_set, table_phrase_sets_[table_idx]);

  // f5: global phrase overlap.
  f[4] = ctx.f5_by_table[tbl];

  // f6/f7: value compatibility, compared in base units so "2.5 tonnes"
  // scores as exact against a 2500 cell in a "(kg)" column. unit_to_base
  // is 1.0 for every legacy surface form, so legacy scores are
  // bit-identical to the plain RelativeDifference they replace.
  f[5] = quantity::BaseValueDistance(x.q, t.value, t.unit_to_base);
  f[6] = quantity::RelativeDifference(x.q.unnormalized * x.q.unit_to_base,
                                      UnnormalizedValue(doc_, t) *
                                          t.unit_to_base);

  // f8: unit match.
  f[7] = UnitMatch(x, t);

  // f9/f10: scale and precision difference (f9 on base values).
  f[8] = std::fabs(ScaleOf(x.q.value * x.q.unit_to_base) -
                   ScaleOf(t.value * t.unit_to_base));
  f[9] = std::fabs(x.q.precision - TablePrecision(t));

  // f11: approximation indicator.
  f[10] = static_cast<double>(x.q.approx);

  // f12: aggregate-function match from cue words.
  f[11] = AggregateMatch(ctx.inferred, t.func);
}

void FeatureComputer::ComputeAll(size_t text_idx, size_t table_idx,
                                 double* f) const {
  thread_local TextContext ctx;
  BuildTextContext(text_idx, &ctx);
  ComputeAllFromContext(ctx, table_idx, f);
}

size_t FeatureComputer::MaskActive(const double* all, double* out) const {
  if (config_.active_features.empty()) {
    std::copy(all, all + kNumPairFeatures, out);
    return kNumPairFeatures;
  }
  size_t written = 0;
  for (int i = 0; i < kNumPairFeatures; ++i) {
    if (config_.FeatureActive(i)) out[written++] = all[i];
  }
  return written;
}

std::vector<double> FeatureComputer::Compute(size_t text_idx,
                                             size_t table_idx) const {
  std::vector<double> out;
  Compute(text_idx, table_idx, &out);
  return out;
}

void FeatureComputer::Compute(size_t text_idx, size_t table_idx,
                              std::vector<double>* out) const {
  double all[kNumPairFeatures];
  ComputeAll(text_idx, table_idx, all);
  out->resize(static_cast<size_t>(NumActive()));
  MaskActive(all, out->data());
}

void FeatureComputer::ComputeBatch(size_t text_idx, const size_t* table_idxs,
                                   size_t n, double* rows) const {
  thread_local TextContext ctx;
  BuildTextContext(text_idx, &ctx);
  const size_t stride = static_cast<size_t>(NumActive());
  double all[kNumPairFeatures];
  for (size_t i = 0; i < n; ++i) {
    ComputeAllFromContext(ctx, table_idxs[i], all);
    MaskActive(all, rows + i * stride);
  }
}

int FeatureComputer::NumActive() const {
  return NumActivePairFeatures(config_);
}

double FeatureComputer::UniformSimilarity(size_t text_idx,
                                          size_t table_idx) const {
  double f[kNumPairFeatures];
  ComputeAll(text_idx, table_idx, f);
  // Per-feature mapping to [0, 1] similarities. f11 is a modifier, not a
  // similarity, and is skipped.
  double total = 0.0;
  int count = 0;
  auto add = [&](int idx, double sim) {
    if (!config_.FeatureActive(idx)) return;
    total += sim;
    ++count;
  };
  add(0, f[0]);
  add(1, f[1]);
  add(2, f[2]);
  add(3, f[3]);
  add(4, f[4]);
  add(5, 1.0 - f[5]);
  add(6, 1.0 - f[6]);
  add(7, f[7] / 3.0);
  add(8, 1.0 / (1.0 + f[8]));
  add(9, 1.0 / (1.0 + f[9]));
  add(11, f[11] / 3.0);
  return count == 0 ? 0.0 : total / count;
}

}  // namespace briq::core
