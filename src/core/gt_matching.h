#ifndef BRIQ_CORE_GT_MATCHING_H_
#define BRIQ_CORE_GT_MATCHING_H_

#include <vector>

#include "core/extraction.h"

namespace briq::core {

/// A ground-truth alignment resolved against the extraction output.
/// `text_idx` / `table_idx` are -1 when extraction failed to produce the
/// corresponding mention (those count as recall losses downstream).
struct MatchedGroundTruth {
  int text_idx = -1;
  int table_idx = -1;
  const corpus::GroundTruthAlignment* gt = nullptr;
};

/// Resolves every ground-truth alignment of doc.source against the
/// prepared document: the text mention whose span overlaps the annotation
/// (same paragraph) and the table mention with the same target (table,
/// function, cell set).
std::vector<MatchedGroundTruth> MatchGroundTruth(const PreparedDocument& doc);

}  // namespace briq::core

#endif  // BRIQ_CORE_GT_MATCHING_H_
