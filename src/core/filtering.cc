#include "core/filtering.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "core/candidate_index.h"
#include "core/gt_matching.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace briq::core {

namespace {

using table::AggregateFunction;

// f8-style strong unit mismatch: both sides specify units that are not
// convertible into a common base ("kg" vs "tonne" is NOT a mismatch; the
// value comparisons run in base units).
bool StrongUnitMismatch(const table::TextMention& x,
                        const table::TableMention& t) {
  return x.q.has_unit() && t.has_unit() &&
         !quantity::ConvertibleUnits(x.q.unit_category, x.q.unit,
                                     t.unit_category, t.unit);
}

}  // namespace

std::vector<std::vector<Candidate>> AdaptiveFilter::Filter(
    const PreparedDocument& doc, const FeatureComputer& features,
    FilterTrace* trace) const {
  const size_t num_text = doc.text_mentions.size();
  const size_t num_table = doc.table_mentions.size();
  std::vector<std::vector<Candidate>> result(num_text);

  // Prune-ratio counters and the entropy distribution (DESIGN.md §5d).
  // Pair counts accumulate in locals and hit the shared counters once per
  // document, so the per-pair loop below stays free of atomics.
  static obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  static obs::Counter* pairs_before_counter =
      registry.GetCounter("briq.filter.pairs_before");
  static obs::Counter* pairs_kept_counter =
      registry.GetCounter("briq.filter.pairs_kept");
  static obs::Histogram* entropy_histogram = registry.GetHistogram(
      "briq.filter.classifier_entropy", obs::LinearBuckets(0.1, 0.1, 10));
  static obs::Histogram* classify_seconds = registry.GetHistogram(
      "briq.align.classify_seconds", obs::DefaultLatencyBuckets());
  static obs::Counter* preindex_skipped_counter =
      registry.GetCounter("briq.filter.preindex_skipped");
  uint64_t pairs_before = 0;
  uint64_t pairs_kept = 0;
  uint64_t preindex_skipped = 0;
#ifndef BRIQ_NO_METRICS
  // Classifier scoring time, summed over the per-mention loops (two clock
  // reads per mention, not per pair). This is a subset of the filter
  // stage's wall time, attached as a synthetic trace leaf at the end.
  double classify_total_seconds = 0.0;
#endif

  // Ground-truth pair lookup for tracing.
  std::vector<std::pair<int, int>> gt_pairs;
  if (trace != nullptr) {
    for (const MatchedGroundTruth& m : MatchGroundTruth(doc)) {
      if (m.text_idx >= 0 && m.table_idx >= 0) {
        gt_pairs.emplace_back(m.text_idx, m.table_idx);
      }
    }
  }
  auto is_gt = [&](size_t x, size_t t) {
    return std::find(gt_pairs.begin(), gt_pairs.end(),
                     std::make_pair(static_cast<int>(x),
                                    static_cast<int>(t))) != gt_pairs.end();
  };

  // Per-document entropy threshold (Stage C). Fixed by default; in
  // percentile mode it tracks the corpus: the threshold is the configured
  // percentile of everything the classifier-entropy histogram has seen so
  // far. Snapshotting once per document (not per mention) keeps the hot
  // loop atomic-free and the threshold stable within a document.
  double entropy_threshold = config_->entropy_threshold;
  if (config_->entropy_percentile_topk > 0.0) {
    const obs::HistogramSnapshot entropy_seen = entropy_histogram->Snapshot();
    // Below this the percentile is noise from the first few documents; the
    // fixed threshold is the better prior.
    constexpr uint64_t kMinEntropySamples = 32;
    if (entropy_seen.count >= kMinEntropySamples) {
      const double edge =
          entropy_seen.Percentile(config_->entropy_percentile_topk);
      if (std::isfinite(edge)) {
        entropy_threshold = edge;
      } else if (!entropy_seen.bounds.empty()) {
        entropy_threshold = entropy_seen.bounds.back();  // overflow bucket
      }
    }
  }

  // Score buffer for the entropy computation, reused across mentions.
  std::vector<double> scores;

  // Candidate pre-index (DESIGN.md §5g): Probe() returns a superset of the
  // pairs the inline checks below keep, so alignments are unchanged while
  // provably-dead pairs are never featurized. Trace runs bypass the index:
  // the Table-VI pairs_before counts enumerate the full cross product.
  const bool use_index = config_->candidate_index && trace == nullptr;
  CandidateIndex index;
  if (use_index) index.Build(doc);

  // Per-mention scratch, reused across the loop: the probed candidate set,
  // the Stage-A survivors, and their batch-scored sigmas.
  std::vector<size_t> probed;
  std::vector<size_t> survivors;
  std::vector<double> sigmas;

  for (size_t x = 0; x < num_text; ++x) {
    // --- Stage A: tagger-based aggregate pruning -------------------------
    TextMentionTagger::Tag tag = tagger_->Predict(doc, x);

    std::vector<Candidate> kept;
    kept.reserve(64);
#ifndef BRIQ_NO_METRICS
    const auto classify_start = std::chrono::steady_clock::now();
#endif
    if (use_index) {
      index.Probe(doc.text_mentions[x], tag.func, &probed);
      preindex_skipped += num_table - probed.size();
    } else {
      probed.resize(num_table);
      std::iota(probed.begin(), probed.end(), size_t{0});
    }
    pairs_before += probed.size();

    survivors.clear();
    for (size_t t : probed) {
      const table::TableMention& tm = doc.table_mentions[t];
      if (trace != nullptr) {
        ++trace->by_type[tm.func].pairs_before;
        ++trace->overall.pairs_before;
        if (is_gt(x, t)) {
          ++trace->by_type[tm.func].gt_pairs;
          ++trace->overall.gt_pairs;
        }
      }
      // Keep all single-cell pairs (conservative pruning, §V-A); prune
      // aggregate pairs whose function differs from the predicted tag —
      // unless the virtual cell matches the mention's value exactly, which
      // is evidence strong enough to outlive a missing cue word (the
      // paper's Table VI reports post-filter sum recall of 1.0).
      if (tm.is_virtual() && tm.func != tag.func &&
          quantity::BaseValueDistance(doc.text_mentions[x].q, tm.value,
                                      tm.unit_to_base) > 1e-9) {
        continue;
      }
      survivors.push_back(t);
    }

    // Batch-score the Stage-A survivors (the flat-forest fast path;
    // bit-identical to per-pair Score calls).
    sigmas.resize(survivors.size());
    classifier_->ScoreBatch(features, x, survivors.data(), survivors.size(),
                            sigmas.data());

    for (size_t i = 0; i < survivors.size(); ++i) {
      const size_t t = survivors[i];
      const table::TableMention& tm = doc.table_mentions[t];
      const double sigma = sigmas[i];

      // --- Stage B: value-difference and unit pruning ---------------------
      // Distance in base units: intervals measure to the nearer endpoint,
      // unit_to_base bridges t↔kg-style pairs. Bit-identical to the plain
      // RelativeDifference for every legacy surface form.
      const double rel_diff = quantity::BaseValueDistance(
          doc.text_mentions[x].q, tm.value, tm.unit_to_base);
      if (rel_diff > config_->prune_value_diff &&
          sigma < config_->prune_score_threshold) {
        continue;
      }
      if (StrongUnitMismatch(doc.text_mentions[x], tm)) continue;

      kept.push_back(Candidate{x, t, sigma});
    }
#ifndef BRIQ_NO_METRICS
    classify_total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      classify_start)
            .count();
#endif

    // --- Stage C: type- and entropy-adaptive top-k ------------------------
    std::sort(kept.begin(), kept.end(), [](const Candidate& a,
                                           const Candidate& b) {
      return a.score > b.score;
    });

    // Mention type: context modifiers first, then majority vote over the
    // high-confidence candidates' value agreement.
    bool exact_type;
    if (doc.text_mentions[x].q.approx != quantity::ApproxIndicator::kNone &&
        doc.text_mentions[x].q.approx != quantity::ApproxIndicator::kExact) {
      exact_type = false;
    } else {
      size_t vote_n = std::min<size_t>(kept.size(), 5);
      size_t exact_votes = 0;
      for (size_t i = 0; i < vote_n; ++i) {
        const table::TableMention& vm = doc.table_mentions[kept[i].table_idx];
        double rd = quantity::BaseValueDistance(doc.text_mentions[x].q,
                                                vm.value, vm.unit_to_base);
        if (rd < 1e-9) ++exact_votes;
      }
      exact_type = vote_n == 0 || exact_votes * 2 >= vote_n;
    }
    const int k_type = exact_type ? config_->top_k_exact
                                  : config_->top_k_approx;

    // Entropy of the score distribution: skewed -> keep few, flat -> keep
    // many.
    scores.clear();
    scores.reserve(kept.size());
    for (const Candidate& c : kept) scores.push_back(c.score);
    const double entropy = ml::NormalizedEntropy(scores);
    entropy_histogram->Observe(entropy);
    int k = entropy < entropy_threshold
                ? std::min(k_type, config_->top_k_low_entropy)
                : std::max(k_type, config_->top_k_high_entropy);
    if (static_cast<int>(kept.size()) > k) kept.resize(k);

    if (trace != nullptr) {
      for (const Candidate& c : kept) {
        const auto func = doc.table_mentions[c.table_idx].func;
        ++trace->by_type[func].pairs_after;
        ++trace->overall.pairs_after;
        if (is_gt(c.text_idx, c.table_idx)) {
          ++trace->by_type[func].gt_survived;
          ++trace->overall.gt_survived;
        }
      }
    }
    pairs_kept += kept.size();
    result[x] = std::move(kept);
  }

  pairs_before_counter->Add(pairs_before);
  pairs_kept_counter->Add(pairs_kept);
  preindex_skipped_counter->Add(preindex_skipped);
#ifndef BRIQ_NO_METRICS
  classify_seconds->Observe(classify_total_seconds);
  obs::AttachLeafSpan("classify", classify_total_seconds);
#endif
  return result;
}

}  // namespace briq::core
