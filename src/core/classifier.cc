#include "core/classifier.h"

#include <algorithm>
#include <numeric>

#include "core/gt_matching.h"
#include "ml/dataset.h"
#include "util/logging.h"

namespace briq::core {

void MentionPairClassifier::Train(
    const std::vector<const PreparedDocument*>& docs, util::Rng* rng) {
  stats_ = TrainingStats();
  ml::Dataset data(0);
  bool sized = false;

  for (const PreparedDocument* doc : docs) {
    FeatureComputer features(*doc, *config_);
    if (!sized) {
      data = ml::Dataset(features.NumActive());
      sized = true;
    }
    for (const MatchedGroundTruth& m : MatchGroundTruth(*doc)) {
      if (m.text_idx < 0 || m.table_idx < 0) continue;
      const size_t x = static_cast<size_t>(m.text_idx);
      const size_t t_pos = static_cast<size_t>(m.table_idx);

      data.Add(features.Compute(x, t_pos), /*label=*/1);
      const auto func = doc->table_mentions[t_pos].func;
      ++stats_.positives[func];
      ++stats_.total_positives;

      // Hard negatives: the numerically closest non-matching table
      // mentions ("approximately the same values and similar context").
      const double xv = doc->text_mentions[x].q.value;
      std::vector<size_t> order(doc->table_mentions.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return quantity::RelativeDifference(xv, doc->table_mentions[a].value) <
               quantity::RelativeDifference(xv, doc->table_mentions[b].value);
      });
      int taken = 0;
      for (size_t j : order) {
        if (taken >= config_->negatives_per_positive) break;
        if (j == t_pos) continue;
        data.Add(features.Compute(x, j), /*label=*/0);
        ++stats_.negatives[doc->table_mentions[j].func];
        ++stats_.total_negatives;
        ++taken;
      }
      (void)rng;
    }
  }

  if (data.empty() || data.num_classes() < 2) {
    BRIQ_LOG(Warning) << "classifier training data is empty or single-class; "
                         "forest not fitted";
    return;
  }
  forest_.Fit(data, config_->forest);
}

double MentionPairClassifier::Score(const FeatureComputer& features,
                                    size_t text_idx, size_t table_idx) const {
  BRIQ_CHECK(trained()) << "classifier not trained";
  // Per-thread scratch keeps the scoring loop allocation-free in steady
  // state (AlignBatch scores from several threads concurrently).
  thread_local std::vector<double> scratch;
  features.Compute(text_idx, table_idx, &scratch);
  return forest_.PredictPositiveProba(scratch.data());
}

}  // namespace briq::core
