#include "core/classifier.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/gt_matching.h"
#include "ml/dataset.h"
#include "obs/metrics.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace briq::core {

util::Status MentionPairClassifier::EmitTrainingSamples(
    const PreparedDocument& doc, const FeatureComputer& features,
    ml::SampleSink* sink, TrainingStats* stats) const {
  for (const MatchedGroundTruth& m : MatchGroundTruth(doc)) {
    if (m.text_idx < 0 || m.table_idx < 0) continue;
    const size_t x = static_cast<size_t>(m.text_idx);
    const size_t t_pos = static_cast<size_t>(m.table_idx);

    BRIQ_RETURN_IF_ERROR(
        sink->Add(features.Compute(x, t_pos), /*label=*/1));
    const auto func = doc.table_mentions[t_pos].func;
    ++stats->positives[func];
    ++stats->total_positives;

    // Hard negatives: the numerically closest non-matching table
    // mentions ("approximately the same values and similar context").
    // std::sort on the precomputed distances is deterministic for a given
    // document, so the emitted row order — and everything trained from it
    // — is a pure function of the document stream.
    const double xv = doc.text_mentions[x].q.value;
    std::vector<size_t> order(doc.table_mentions.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return quantity::RelativeDifference(xv, doc.table_mentions[a].value) <
             quantity::RelativeDifference(xv, doc.table_mentions[b].value);
    });
    int taken = 0;
    for (size_t j : order) {
      if (taken >= config_->negatives_per_positive) break;
      if (j == t_pos) continue;
      BRIQ_RETURN_IF_ERROR(sink->Add(features.Compute(x, j), /*label=*/0));
      ++stats->negatives[doc.table_mentions[j].func];
      ++stats->total_negatives;
      ++taken;
    }
  }
  return util::Status::OK();
}

void MentionPairClassifier::Train(
    const std::vector<const PreparedDocument*>& docs) {
  TrainingStats stats;
  ml::InMemorySampleSink sink(NumActivePairFeatures(*config_));
  for (const PreparedDocument* doc : docs) {
    FeatureComputer features(*doc, *config_);
    const util::Status status =
        EmitTrainingSamples(*doc, features, &sink, &stats);
    BRIQ_CHECK(status.ok()) << "in-memory sample emission cannot fail: "
                            << status.ToString();
  }
  const util::Status status = TrainFromSource(
      ml::DatasetSampleSource(&sink.dataset()), std::move(stats));
  BRIQ_CHECK(status.ok()) << "in-memory training cannot fail: "
                          << status.ToString();
}

util::Status MentionPairClassifier::TrainFromSource(
    const ml::SampleSource& source, TrainingStats stats) {
  stats_ = std::move(stats);
  forest_ = ml::RandomForest();
  flat_.Clear();
  if (source.size() == 0) {
    BRIQ_LOG(Warning) << "classifier training data is empty or single-class; "
                         "forest not fitted";
    return util::Status::OK();
  }
  // The class scan mirrors Dataset::num_classes(): a single-class source
  // cannot train a pair scorer.
  bool has_positive = false;
  bool has_negative = false;
  {
    std::vector<double> row(static_cast<size_t>(source.num_features()));
    int label = 0;
    double weight = 0.0;
    for (size_t i = 0; i < source.size() && !(has_positive && has_negative);
         ++i) {
      BRIQ_RETURN_IF_ERROR(source.Read(i, row.data(), &label, &weight));
      (label > 0 ? has_positive : has_negative) = true;
    }
  }
  if (!has_positive || !has_negative) {
    BRIQ_LOG(Warning) << "classifier training data is empty or single-class; "
                         "forest not fitted";
    return util::Status::OK();
  }
  forest_.Fit(source, config_->forest);
  flat_.Compile(forest_);
  return util::Status::OK();
}

util::Status MentionPairClassifier::Save(std::ostream& out) const {
  BRIQ_RETURN_IF_ERROR(forest_.Save(out));
  util::WritePod(out, static_cast<uint64_t>(stats_.total_positives));
  util::WritePod(out, static_cast<uint64_t>(stats_.total_negatives));
  const auto write_map =
      [&out](const std::map<table::AggregateFunction, size_t>& counts) {
        util::WritePod(out, static_cast<uint32_t>(counts.size()));
        for (const auto& [func, count] : counts) {
          util::WritePod(out, static_cast<int32_t>(func));
          util::WritePod(out, static_cast<uint64_t>(count));
        }
      };
  write_map(stats_.positives);
  write_map(stats_.negatives);
  if (!out.good()) {
    return util::Status::Internal("classifier serialization stream failed");
  }
  return util::Status::OK();
}

util::Status MentionPairClassifier::Load(std::istream& in) {
  ml::RandomForest forest;
  BRIQ_RETURN_IF_ERROR(forest.Load(in));
  TrainingStats stats;
  uint64_t total_positives = 0;
  uint64_t total_negatives = 0;
  if (!util::ReadPod(in, &total_positives) ||
      !util::ReadPod(in, &total_negatives)) {
    return util::Status::ParseError("classifier model truncated in stats");
  }
  const auto read_map =
      [&in](std::map<table::AggregateFunction, size_t>* counts)
      -> util::Status {
    uint32_t entries = 0;
    if (!util::ReadPod(in, &entries) || entries > 1024) {
      return util::Status::ParseError("classifier model stats map corrupt");
    }
    for (uint32_t i = 0; i < entries; ++i) {
      int32_t func = 0;
      uint64_t count = 0;
      if (!util::ReadPod(in, &func) || !util::ReadPod(in, &count)) {
        return util::Status::ParseError("classifier model truncated in "
                                        "stats map");
      }
      (*counts)[static_cast<table::AggregateFunction>(func)] =
          static_cast<size_t>(count);
    }
    return util::Status::OK();
  };
  stats.total_positives = static_cast<size_t>(total_positives);
  stats.total_negatives = static_cast<size_t>(total_negatives);
  BRIQ_RETURN_IF_ERROR(read_map(&stats.positives));
  BRIQ_RETURN_IF_ERROR(read_map(&stats.negatives));
  forest_ = std::move(forest);
  stats_ = std::move(stats);
  flat_.Compile(forest_);
  return util::Status::OK();
}

double MentionPairClassifier::Score(const FeatureComputer& features,
                                    size_t text_idx, size_t table_idx) const {
  BRIQ_CHECK(trained()) << "classifier not trained";
  // Per-thread scratch keeps the scoring loop allocation-free in steady
  // state (AlignBatch scores from several threads concurrently).
  thread_local std::vector<double> scratch;
  features.Compute(text_idx, table_idx, &scratch);
  if (config_->flat_forest && flat_.compiled()) {
    return flat_.PredictPositiveProba(scratch.data());
  }
  return forest_.PredictPositiveProba(scratch.data());
}

void MentionPairClassifier::ScoreBatch(const FeatureComputer& features,
                                       size_t text_idx,
                                       const size_t* table_idxs, size_t n,
                                       double* out) const {
  BRIQ_CHECK(trained()) << "classifier not trained";
  if (n == 0) return;
  if (!config_->flat_forest || !flat_.compiled()) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Score(features, text_idx, table_idxs[i]);
    }
    return;
  }
  static obs::Counter* batches =
      obs::MetricRegistry::Global().GetCounter("briq.classify.flat_batches");
  static obs::Counter* rows =
      obs::MetricRegistry::Global().GetCounter("briq.classify.flat_rows");
  static obs::Histogram* batch_rows =
      obs::MetricRegistry::Global().GetHistogram(
          "briq.classify.batch_rows", obs::ExponentialBuckets(1.0, 2.0, 12));
  // Row matrix in per-thread scratch: one featurization pass hoists the
  // text-mention-side work, then the whole batch runs through the flat
  // forest's tile loop.
  thread_local std::vector<double> matrix;
  const size_t stride = static_cast<size_t>(features.NumActive());
  matrix.resize(n * stride);
  features.ComputeBatch(text_idx, table_idxs, n, matrix.data());
  flat_.PredictPositiveProbaBatch(matrix.data(), n, stride, out);
  batches->Add(1);
  rows->Add(n);
  batch_rows->Observe(static_cast<double>(n));
}

}  // namespace briq::core
