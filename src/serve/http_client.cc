#include "serve/http_client.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <utility>

namespace briq::serve {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

const std::string& ClientResponse::Header(
    const std::string& lower_name) const {
  static const std::string kEmpty;
  const auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

util::Result<HttpClient> HttpClient::Connect(uint16_t port) {
  util::Result<util::ClientSocket> socket = util::ClientSocket::Connect(port);
  if (!socket.ok()) return socket.status();
  return HttpClient(std::move(socket).value());
}

util::Result<ClientResponse> HttpClient::Request(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::map<std::string, std::string>& headers,
    double timeout_seconds) {
  std::string wire = method + " " + path + " HTTP/1.1\r\n";
  wire += "Host: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  for (const auto& [name, value] : headers) {
    wire += name + ": " + value + "\r\n";
  }
  wire += "\r\n";
  wire += body;
  if (!SendRaw(wire)) {
    return util::Status::Internal("send failed (connection closed?)");
  }
  return ReadResponse(timeout_seconds);
}

bool HttpClient::SendRaw(const std::string& bytes) {
  return socket_.SendAll(bytes);
}

util::Result<ClientResponse> HttpClient::ReadResponse(double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  char buf[4096];
  bool peer_closed = false;

  const auto read_more = [&]() -> bool {
    if (peer_closed) return false;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    const ssize_t n = socket_.RecvSome(buf, sizeof(buf), 0.1);
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) {
      peer_closed = true;
      socket_.Close();
    }
    return n < 0;  // timeout tick: keep trying until the deadline
  };

  // Head.
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (!read_more()) {
      return util::Status::Internal(peer_closed
                                        ? "connection closed before a "
                                          "complete response head"
                                        : "response head read timed out");
    }
  }
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  ClientResponse response;
  size_t pos = 0;
  bool first = true;
  while (pos <= head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = eol + 1;
    if (first) {
      first = false;
      // "HTTP/1.1 200 OK"
      const size_t sp1 = line.find(' ');
      if (sp1 == std::string::npos) {
        return util::Status::ParseError("malformed status line: " + line);
      }
      const size_t sp2 = line.find(' ', sp1 + 1);
      const std::string code =
          line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                        : sp2 - sp1 - 1);
      response.status = std::atoi(code.c_str());
      if (response.status == 0) {
        return util::Status::ParseError("malformed status code: " + line);
      }
      if (sp2 != std::string::npos) response.reason = line.substr(sp2 + 1);
      continue;
    }
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // lenient on the client side
    response.headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }

  // Body: Content-Length-framed (the only framing the server emits).
  const std::string& cl = response.Header("content-length");
  const size_t want = cl.empty() ? 0 : std::strtoull(cl.c_str(), nullptr, 10);
  while (buffer_.size() < want) {
    if (!read_more()) {
      return util::Status::Internal("response body read timed out");
    }
  }
  response.body = buffer_.substr(0, want);
  buffer_.erase(0, want);
  return response;
}

}  // namespace briq::serve
