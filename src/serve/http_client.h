#ifndef BRIQ_SERVE_HTTP_CLIENT_H_
#define BRIQ_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "serve/http.h"
#include "util/result.h"
#include "util/tcp_listener.h"

namespace briq::serve {

/// A parsed response as seen by the client.
struct ClientResponse {
  int status = 0;
  std::string reason;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;

  const std::string& Header(const std::string& lower_name) const;
};

/// Minimal blocking HTTP/1.1 client for 127.0.0.1 — the peer of
/// serve::HttpServer in tests and in bench_serve's load generator. One
/// connection per instance; keep-alive by default, so consecutive
/// Request() calls reuse the socket. Not a general client: no redirects,
/// no chunked bodies, no TLS.
class HttpClient {
 public:
  /// Connects to 127.0.0.1:`port`.
  static util::Result<HttpClient> Connect(uint16_t port);

  /// Sends one request and reads one response. GETs carry no body;
  /// non-empty `body` adds a Content-Length. Extra headers are emitted
  /// verbatim. Fails on connection errors, malformed responses, or
  /// `timeout_seconds` of read silence.
  util::Result<ClientResponse> Request(
      const std::string& method, const std::string& path,
      const std::string& body = "",
      const std::map<std::string, std::string>& headers = {},
      double timeout_seconds = 10.0);

  /// Sends raw bytes verbatim (for protocol tests: torn headers,
  /// pipelining, deliberate violations).
  bool SendRaw(const std::string& bytes);

  /// Reads one response off the socket (pairs with SendRaw).
  util::Result<ClientResponse> ReadResponse(double timeout_seconds = 10.0);

  /// True while the underlying socket is open.
  bool connected() const { return socket_.valid(); }

  /// Closes the connection (also done by the destructor).
  void Close() { socket_.Close(); }

 private:
  explicit HttpClient(util::ClientSocket socket) : socket_(std::move(socket)) {}

  util::ClientSocket socket_;
  std::string buffer_;  // bytes read past the previous response
};

}  // namespace briq::serve

#endif  // BRIQ_SERVE_HTTP_CLIENT_H_
