#include "serve/statusz.h"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace briq::serve {

namespace {

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Millis(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

std::string Fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string UptimeText(double seconds) {
  const int total = seconds < 0.0 ? 0 : static_cast<int>(seconds);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%dh %02dm %02ds", total / 3600,
                (total / 60) % 60, total % 60);
  return buf;
}

void AppendWindowRow(std::string* out, const std::string& label,
                     const WindowStats& stats) {
  *out += "<tr><td>" + HtmlEscape(label) + "</td><td>" +
          std::to_string(stats.requests) + "</td><td>" +
          Fixed(stats.qps, 2) + "</td><td>" + Millis(stats.p50_seconds) +
          "</td><td>" + Millis(stats.p95_seconds) + "</td><td>" +
          Millis(stats.p99_seconds) + "</td><td>" +
          Fixed(stats.error_rate * 100.0, 2) + "%</td></tr>\n";
}

}  // namespace

std::string StatuszHtml(const StatuszInfo& info, const ServeStats& stats,
                        double uptime_seconds) {
  auto& registry = obs::MetricRegistry::Global();
  const int window = static_cast<int>(stats.window_seconds());

  std::string out;
  out.reserve(8192);
  out +=
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      "<meta http-equiv=\"refresh\" content=\"5\">\n"
      "<title>briq /statusz</title>\n"
      "<style>\n"
      "body{font-family:monospace;margin:2em;background:#fafafa;color:#222}\n"
      "table{border-collapse:collapse;margin:0.5em 0 1.5em}\n"
      "th,td{border:1px solid #bbb;padding:0.25em 0.7em;text-align:right}\n"
      "th{background:#eee}td:first-child,th:first-child{text-align:left}\n"
      "h1{font-size:1.3em}h2{font-size:1.05em;margin-top:1.2em}\n"
      "</style></head><body>\n";
  out += "<h1>briq /statusz</h1>\n<table>\n";
  out += "<tr><td>build</td><td>" + HtmlEscape(info.build_info) +
         "</td></tr>\n";
  if (!info.model_info.empty()) {
    out += "<tr><td>model</td><td>" + HtmlEscape(info.model_info) +
           "</td></tr>\n";
  }
  out += "<tr><td>uptime</td><td>" + UptimeText(uptime_seconds) +
         "</td></tr>\n";
  out += "<tr><td>requests (total)</td><td>" +
         std::to_string(registry.GetCounter("briq.serve.requests")->Value()) +
         "</td></tr>\n";
  out += "<tr><td>connections (total)</td><td>" +
         std::to_string(
             registry.GetCounter("briq.serve.connections")->Value()) +
         "</td></tr>\n";
  out += "<tr><td>shed 503s (total)</td><td>" +
         std::to_string(registry.GetCounter("briq.serve.rejected")->Value()) +
         "</td></tr>\n";
  out += "<tr><td>queue depth</td><td>" +
         std::to_string(
             registry.GetGauge("briq.serve.queue_depth")->Value()) +
         " (peak " +
         std::to_string(
             registry.GetGauge("briq.serve.queue_depth_peak")->Value()) +
         ")</td></tr>\n";
  out += "<tr><td>in flight</td><td>" +
         std::to_string(registry.GetGauge("briq.serve.in_flight")->Value()) +
         " (peak " +
         std::to_string(
             registry.GetGauge("briq.serve.in_flight_peak")->Value()) +
         ")</td></tr>\n";
  out += "</table>\n";

  if (info.fleet_rows) {
    const std::vector<FleetWorkerRow> rows = info.fleet_rows();
    out += "<h2>fleet (" + std::to_string(rows.size()) +
           " workers)</h2>\n<table>\n"
           "<tr><th>worker</th><th>state</th><th>range</th><th>docs</th>"
           "<th>docs/sec</th><th>last heartbeat</th><th>restarts</th></tr>\n";
    for (const FleetWorkerRow& row : rows) {
      out += "<tr><td>" + std::to_string(row.worker_id) + "</td><td>" +
             HtmlEscape(row.state) + "</td><td>" + HtmlEscape(row.range) +
             "</td><td>" + std::to_string(row.docs_total) + "</td><td>" +
             Fixed(row.docs_per_sec, 1) + "</td><td>" +
             (row.last_heartbeat_age_seconds < 0.0
                  ? std::string("never")
                  : Fixed(row.last_heartbeat_age_seconds, 1) + "s ago") +
             "</td><td>" + std::to_string(row.restarts) + "</td></tr>\n";
    }
    out += "</table>\n";
  }

  out += "<h2>rolling window (last " + std::to_string(window) +
         "s)</h2>\n<table>\n"
         "<tr><th>route</th><th>requests</th><th>qps</th><th>p50 ms</th>"
         "<th>p95 ms</th><th>p99 ms</th><th>errors</th></tr>\n";
  AppendWindowRow(&out, "(all)", stats.Window());
  for (const auto& [route, window_stats] : stats.WindowByRoute()) {
    AppendWindowRow(&out, route, window_stats);
  }
  out += "</table>\n";

  const std::vector<SlowRequest> slow = stats.Slow();
  out += "<h2>slow requests (&ge; " +
         Millis(stats.slow_threshold_seconds()) + " ms, newest first)</h2>\n";
  if (slow.empty()) {
    out += "<p>none retained</p>\n";
  } else {
    out +=
        "<table>\n<tr><th>trace id</th><th>route</th><th>status</th>"
        "<th>wall ms</th><th>queue ms</th><th>stages (ms)</th></tr>\n";
    for (const SlowRequest& request : slow) {
      std::string stage_text;
      for (const auto& [name, seconds] : request.stage_seconds) {
        if (!stage_text.empty()) stage_text += ", ";
        stage_text += name + "=" + Millis(seconds);
      }
      out += "<tr><td>" + HtmlEscape(request.trace_id) + "</td><td>" +
             HtmlEscape(request.method + " " + request.path) + "</td><td>" +
             std::to_string(request.status) + "</td><td>" +
             Millis(request.wall_seconds) + "</td><td>" +
             Millis(request.queue_wait_seconds) + "</td><td>" +
             HtmlEscape(stage_text) + "</td></tr>\n";
    }
    out += "</table>\n";
  }
  out += "</body></html>\n";
  return out;
}

void RegisterStatuszRoute(Router* router, StatuszInfo info,
                          ServeStats* stats) {
  if (stats == nullptr) stats = &ServeStats::Global();
  const auto registered_at = std::chrono::steady_clock::now();
  router->Handle(
      "GET", "/statusz",
      Router::SimpleHandler([info = std::move(info), stats,
                             registered_at](const HttpRequest&) {
        const double uptime =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          registered_at)
                .count();
        HttpResponse response;
        response.status = 200;
        response.content_type = "text/html; charset=utf-8";
        response.body = StatuszHtml(info, *stats, uptime);
        return response;
      }));
}

}  // namespace briq::serve
