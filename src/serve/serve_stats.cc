#include "serve/serve_stats.h"

#include "obs/prometheus.h"

namespace briq::serve {

ServeStats& ServeStats::Global() {
  // Leaked: handler lambdas and worker threads hold the pointer through
  // static destruction, same contract as MetricRegistry::Global().
  static ServeStats* stats = new ServeStats();
  return *stats;
}

ServeStats::ServeStats(double window_seconds, size_t slow_capacity)
    : window_seconds_(window_seconds),
      slow_capacity_(slow_capacity < 1 ? 1 : slow_capacity),
      total_(std::make_unique<RouteWindows>(window_seconds)) {}

ServeStats::RouteWindows* ServeStats::FindOrCreate(const std::string& route) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = routes_[route];
  if (slot == nullptr) slot = std::make_unique<RouteWindows>(window_seconds_);
  return slot.get();
}

void ServeStats::RecordRequest(const std::string& route, int status,
                               double wall_seconds) {
#ifndef BRIQ_NO_METRICS
  RouteWindows* windows = FindOrCreate(route);
  for (RouteWindows* w : {windows, total_.get()}) {
    w->latency.Record(wall_seconds);
    w->requests.Add(1);
    if (status >= 500) w->errors.Add(1);
  }
#else
  (void)route;
  (void)status;
  (void)wall_seconds;
#endif
}

void ServeStats::RecordSlow(SlowRequest slow) {
#ifndef BRIQ_NO_METRICS
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_.push_back(std::move(slow));
  while (slow_.size() > slow_capacity_) slow_.pop_front();
#else
  (void)slow;
#endif
}

WindowStats ServeStats::StatsOf(const RouteWindows& windows) {
  WindowStats stats;
  // One timestamp for the three instruments: they share the construction
  // epoch closely enough that per-instrument NowSeconds would also do, but
  // a single read keeps the three windows aligned.
  const double now = windows.latency.NowSeconds();
  const obs::HistogramSnapshot latency = windows.latency.SnapshotAt(now);
  stats.requests = windows.requests.CountAt(now);
  stats.errors = windows.errors.CountAt(now);
  stats.p50_seconds = latency.Percentile(0.50);
  stats.p95_seconds = latency.Percentile(0.95);
  stats.p99_seconds = latency.Percentile(0.99);
  stats.qps = windows.requests.RatePerSecondAt(now);
  stats.error_rate = stats.requests == 0
                         ? 0.0
                         : static_cast<double>(stats.errors) /
                               static_cast<double>(stats.requests);
  return stats;
}

WindowStats ServeStats::Window() const { return StatsOf(*total_); }

std::vector<std::pair<std::string, WindowStats>> ServeStats::WindowByRoute()
    const {
  std::vector<std::pair<std::string, WindowStats>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(routes_.size());
  for (const auto& [route, windows] : routes_) {
    out.emplace_back(route, StatsOf(*windows));
  }
  return out;
}

std::vector<SlowRequest> ServeStats::Slow() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_.rbegin(), slow_.rend()};
}

std::string ServeStats::PrometheusWindowGauges() const {
  struct Family {
    const char* name;
    const char* help;
    double WindowStats::* field;
  };
  static const Family kFamilies[] = {
      {"briq_serve_window_p50_seconds",
       "Rolling-window request latency p50 (seconds)",
       &WindowStats::p50_seconds},
      {"briq_serve_window_p95_seconds",
       "Rolling-window request latency p95 (seconds)",
       &WindowStats::p95_seconds},
      {"briq_serve_window_p99_seconds",
       "Rolling-window request latency p99 (seconds)",
       &WindowStats::p99_seconds},
      {"briq_serve_window_qps", "Rolling-window request rate (per second)",
       &WindowStats::qps},
      {"briq_serve_window_error_rate",
       "Rolling-window fraction of requests with status >= 500",
       &WindowStats::error_rate},
  };
  const WindowStats total = Window();
  const auto by_route = WindowByRoute();
  std::string out;
  for (const Family& family : kFamilies) {
    std::vector<std::pair<std::string, double>> series;
    series.emplace_back("", total.*family.field);
    for (const auto& [route, stats] : by_route) {
      series.emplace_back("route=\"" + route + "\"", stats.*family.field);
    }
    obs::AppendPrometheusGauge(&out, family.name, family.help, series);
  }
  return out;
}

void ServeStats::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    routes_.clear();
    total_ = std::make_unique<RouteWindows>(window_seconds_);
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_.clear();
}

}  // namespace briq::serve
