#ifndef BRIQ_SERVE_HTTP_H_
#define BRIQ_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>

namespace briq::serve {

/// HTTP/1.1 message types and an incremental request parser — the protocol
/// substrate of the serving layer (DESIGN.md §5h). Deliberately small: no
/// chunked bodies, no multipart, no TLS; a loopback service fronted by a
/// real proxy needs none of those.

/// One parsed request. Header names are lowercased on parse; values keep
/// their case with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim)
  std::string path;     // request target, e.g. "/align"
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::map<std::string, std::string> headers;
  std::string body;

  /// Lowercased-name header lookup; empty string when absent.
  const std::string& Header(const std::string& lower_name) const;

  /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
  /// Connection header wins either way.
  bool KeepAlive() const;
};

/// One response to serialize. Handlers fill status/body/content_type and
/// optionally extra headers (e.g. Retry-After).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::map<std::string, std::string> extra_headers;

  static HttpResponse Text(int status, std::string body);
  static HttpResponse Json(int status, std::string body);
};

/// Standard reason phrase for the status codes this server emits
/// ("Unknown" otherwise).
const char* ReasonPhrase(int status);

/// Renders the full wire form of `response`. Content-Length is always
/// emitted; `keep_alive` selects the Connection header.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Byte-at-a-time-safe request parser. Feed() appends whatever arrived on
/// the socket; Next() consumes at most one complete request per call, so a
/// client that pipelines several requests in one segment gets them served
/// in order. On a protocol violation the parser latches kError and
/// error_response() describes the rejection (400/411/413/431/501); the
/// connection must then be closed — framing is unrecoverable.
class RequestParser {
 public:
  struct Limits {
    size_t max_head_bytes = 64 * 1024;
    size_t max_body_bytes = 8 * 1024 * 1024;
  };

  RequestParser() = default;
  explicit RequestParser(Limits limits) : limits_(limits) {}

  /// Appends newly received bytes to the parse buffer.
  void Feed(const char* data, size_t n);

  enum class Outcome {
    kNeedMore,  // no complete request buffered yet
    kRequest,   // request() holds the next complete request
    kError,     // protocol violation; see error_response()
  };

  /// Tries to extract the next complete request from the buffer.
  Outcome Next();

  /// The request produced by the last Next() == kRequest. Valid until the
  /// following Next() call.
  HttpRequest& request() { return request_; }

  /// The rejection produced by the last Next() == kError.
  const HttpResponse& error_response() const { return error_; }

  /// Bytes buffered but not yet consumed (diagnostics, tests).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  Outcome Fail(int status, std::string message);
  /// Parses the head (request line + headers) in [0, head_end) of the
  /// buffer into request_. Returns false after latching an error.
  bool ParseHead(size_t head_end);

  Limits limits_;
  std::string buffer_;
  HttpRequest request_;
  HttpResponse error_;
  bool failed_ = false;

  // Body accumulation state: after the head parses, head_consumed_ flips
  // and body_remaining_ counts down as buffered bytes move into request_.
  bool head_consumed_ = false;
  size_t body_remaining_ = 0;
};

}  // namespace briq::serve

#endif  // BRIQ_SERVE_HTTP_H_
