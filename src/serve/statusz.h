#ifndef BRIQ_SERVE_STATUSZ_H_
#define BRIQ_SERVE_STATUSZ_H_

#include <functional>
#include <string>
#include <vector>

#include "serve/router.h"
#include "serve/serve_stats.h"

namespace briq::serve {

/// `GET /statusz`: a self-contained HTML debug page (DESIGN.md §5i) for a
/// human with a browser and no dashboard — build/model identity, uptime,
/// the rolling-window latency/QPS/error table per route, live queue
/// depth/in-flight gauges, and the last K slow requests with their stage
/// breakdowns. Everything is rendered at request time from ServeStats and
/// the metric registry; no background state. Under -DBRIQ_NO_METRICS the
/// page still serves, with the live sections empty (the stubs hold no
/// data) — the endpoint's availability is not a metrics feature.

/// One row of the fleet table (DESIGN.md §5j): the driver's view of one
/// worker slot at render time. Kept in briq_http as plain data so the
/// fleet layer can feed /statusz without this page knowing how a fleet is
/// supervised.
struct FleetWorkerRow {
  int worker_id = 0;
  /// Lifecycle word: "running", "exited", "failed", "restarting", ...
  std::string state;
  /// Shard range this slot owns, pre-rendered (e.g. "[0, 4)").
  std::string range;
  uint64_t docs_total = 0;
  double docs_per_sec = 0.0;
  /// Seconds since the last push frame; < 0 means "never heard from".
  double last_heartbeat_age_seconds = -1.0;
  int restarts = 0;
};

/// Static identity shown in the page header.
struct StatuszInfo {
  /// Human-readable build/binary description (e.g. "briq_tool serve").
  std::string build_info;
  /// Model provenance (path + tree count), empty when serving model-free.
  std::string model_info;
  /// When set, the page gains a "fleet" section rendered from the rows
  /// this callback returns at request time (the fleet driver wires its
  /// supervisor state here). Must be thread-safe; empty = no section.
  std::function<std::vector<FleetWorkerRow>()> fleet_rows;
};

/// Renders the full HTML page. `uptime_seconds` is the caller's serving
/// uptime; `stats` supplies the live tables.
std::string StatuszHtml(const StatuszInfo& info, const ServeStats& stats,
                        double uptime_seconds);

/// Registers `GET /statusz` on `router`, serving StatuszHtml over `stats`
/// (default: the global instance) with uptime measured from this call.
void RegisterStatuszRoute(Router* router, StatuszInfo info,
                          ServeStats* stats = nullptr);

}  // namespace briq::serve

#endif  // BRIQ_SERVE_STATUSZ_H_
