#ifndef BRIQ_SERVE_SERVE_STATS_H_
#define BRIQ_SERVE_SERVE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/rolling.h"

namespace briq::serve {

/// Rolling request statistics of the serving layer (DESIGN.md §5i): the
/// windowed complement of the cumulative `briq.serve.*` registry
/// instruments. Per route (plus an aggregate), the last ~window of
/// latencies lands in an obs::RollingHistogram and request/error counts in
/// obs::RollingCounters, answering "p99 / QPS / error rate over the last
/// minute" for the `briq_serve_window_*` gauges and /statusz. A bounded
/// ring additionally retains the last K slow requests (wall time past a
/// configurable threshold) with their stage breakdowns.
///
/// Record paths are the rolling instruments' relaxed-atomic adds behind a
/// route-lookup mutex held only for a map find (routes are few and
/// long-lived; pointers are stable). The slow ring takes its own mutex —
/// by construction it only sees slow requests. Everything is inert under
/// -DBRIQ_NO_METRICS (the rolling stubs record nothing, the slow ring is
/// compiled out of Record).

/// One retained slow request, for /statusz.
struct SlowRequest {
  std::string trace_id;
  std::string method;
  std::string path;
  int status = 0;
  double wall_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  /// Wall-clock completion time (unix seconds).
  double unix_seconds = 0.0;
  std::vector<std::pair<std::string, double>> stage_seconds;
};

/// Windowed aggregate of one route (or of all routes).
struct WindowStats {
  uint64_t requests = 0;
  uint64_t errors = 0;  // status >= 500
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double qps = 0.0;
  double error_rate = 0.0;  // errors / requests, 0 when idle
};

class ServeStats {
 public:
  /// The process-wide instance used by HttpServer and the /metrics and
  /// /statusz handlers. Leaked, like MetricRegistry::Global().
  static ServeStats& Global();

  explicit ServeStats(double window_seconds = 60.0,
                      size_t slow_capacity = 16);

  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  /// Folds one finished request into the route's window and the aggregate.
  /// `route` should be the registered path for known routes and a constant
  /// like "_other_" for everything else (bounded cardinality).
  void RecordRequest(const std::string& route, int status,
                     double wall_seconds);

  /// Retains `slow` in the bounded slow-request ring (newest kept).
  void RecordSlow(SlowRequest slow);

  /// Windowed aggregate across all routes.
  WindowStats Window() const;
  /// Per-route windowed aggregates, route-name order.
  std::vector<std::pair<std::string, WindowStats>> WindowByRoute() const;
  /// Retained slow requests, newest first.
  std::vector<SlowRequest> Slow() const;

  /// `briq_serve_window_*` gauge families (p50/p95/p99, QPS, error rate;
  /// aggregate unlabelled plus one `route="..."` sample per route) in
  /// Prometheus text format, appended to the /metrics page.
  std::string PrometheusWindowGauges() const;

  double window_seconds() const { return window_seconds_; }
  double slow_threshold_seconds() const { return slow_threshold_seconds_; }
  /// Requests with wall time >= this are retained via RecordSlow by the
  /// server. Set once at startup (before serving).
  void set_slow_threshold_seconds(double seconds) {
    slow_threshold_seconds_ = seconds;
  }

  /// Drops all windows and the slow ring. For benches/tests between runs;
  /// not safe against concurrent recorders.
  void Reset();

 private:
  struct RouteWindows {
    RouteWindows(double window_seconds)
        : latency(obs::DefaultLatencyBuckets(), window_seconds),
          requests(window_seconds),
          errors(window_seconds) {}
    obs::RollingHistogram latency;
    obs::RollingCounter requests;
    obs::RollingCounter errors;
  };

  RouteWindows* FindOrCreate(const std::string& route);
  static WindowStats StatsOf(const RouteWindows& windows);

  const double window_seconds_;
  const size_t slow_capacity_;
  double slow_threshold_seconds_ = 0.5;

  mutable std::mutex mu_;  // guards routes_ map shape (pointers stable)
  std::map<std::string, std::unique_ptr<RouteWindows>> routes_;
  std::unique_ptr<RouteWindows> total_;

  mutable std::mutex slow_mu_;
  std::deque<SlowRequest> slow_;  // newest at back
};

}  // namespace briq::serve

#endif  // BRIQ_SERVE_SERVE_STATS_H_
