#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace briq::serve {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Strict non-negative decimal parse for Content-Length (leading signs,
/// whitespace tails, and empty strings all fail).
bool ParseContentLength(const std::string& s, size_t* out) {
  if (s.empty()) return false;
  size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& lower_name) const {
  static const std::string kEmpty;
  const auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

bool HttpRequest::KeepAlive() const {
  const std::string connection = ToLower(Header("connection"));
  if (connection.find("close") != std::string::npos) return false;
  if (connection.find("keep-alive") != std::string::npos) return true;
  return version == "HTTP/1.1";
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json; charset=utf-8";
  r.body = std::move(body);
  return r;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

void RequestParser::Feed(const char* data, size_t n) {
  buffer_.append(data, n);
}

RequestParser::Outcome RequestParser::Fail(int status, std::string message) {
  failed_ = true;
  error_ = HttpResponse::Text(status, std::move(message));
  if (!error_.body.empty() && error_.body.back() != '\n') error_.body += "\n";
  return Outcome::kError;
}

RequestParser::Outcome RequestParser::Next() {
  if (failed_) return Outcome::kError;

  if (!head_consumed_) {
    // Look for the end of the head. Tolerate bare-LF line endings (some
    // hand-rolled clients send them); the shorter "\n\n" form can only
    // appear at or before a "\r\n\r\n".
    size_t head_end = std::string::npos;  // index one past the blank line
    const size_t crlf = buffer_.find("\r\n\r\n");
    const size_t lflf = buffer_.find("\n\n");
    if (lflf != std::string::npos && (crlf == std::string::npos || lflf < crlf)) {
      head_end = lflf + 2;
    } else if (crlf != std::string::npos) {
      head_end = crlf + 4;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(431, "request head exceeds " +
                             std::to_string(limits_.max_head_bytes) +
                             " bytes");
      }
      return Outcome::kNeedMore;
    }
    if (head_end > limits_.max_head_bytes) {
      return Fail(431, "request head exceeds " +
                           std::to_string(limits_.max_head_bytes) + " bytes");
    }
    if (!ParseHead(head_end)) return Outcome::kError;
    buffer_.erase(0, head_end);
    head_consumed_ = true;
  }

  if (body_remaining_ > 0) {
    const size_t take = std::min(body_remaining_, buffer_.size());
    request_.body.append(buffer_, 0, take);
    buffer_.erase(0, take);
    body_remaining_ -= take;
    if (body_remaining_ > 0) return Outcome::kNeedMore;
  }

  // Request complete; rearm for the next one (pipelining keeps any extra
  // buffered bytes).
  head_consumed_ = false;
  return Outcome::kRequest;
}

bool RequestParser::ParseHead(size_t head_end) {
  request_ = HttpRequest{};

  // Split [0, head_end) into lines on '\n', dropping a trailing '\r'.
  size_t pos = 0;
  bool first_line = true;
  while (pos < head_end) {
    size_t eol = buffer_.find('\n', pos);
    if (eol == std::string::npos || eol >= head_end) eol = head_end - 1;
    std::string line = buffer_.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = eol + 1;
    if (line.empty()) break;  // blank line: end of head

    if (first_line) {
      first_line = false;
      const size_t sp1 = line.find(' ');
      const size_t sp2 = sp1 == std::string::npos
                             ? std::string::npos
                             : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos ||
          line.find(' ', sp2 + 1) != std::string::npos) {
        Fail(400, "malformed request line");
        return false;
      }
      request_.method = line.substr(0, sp1);
      request_.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      request_.version = line.substr(sp2 + 1);
      if (request_.method.empty() || request_.path.empty() ||
          request_.path[0] != '/') {
        Fail(400, "malformed request line");
        return false;
      }
      if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
        Fail(400, "unsupported protocol version '" + request_.version + "'");
        return false;
      }
      continue;
    }

    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, "malformed header line");
      return false;
    }
    const std::string name = ToLower(Trim(line.substr(0, colon)));
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      Fail(400, "malformed header name");
      return false;
    }
    request_.headers[name] = Trim(line.substr(colon + 1));
  }
  if (first_line) {
    Fail(400, "empty request head");
    return false;
  }

  if (request_.headers.count("transfer-encoding") > 0) {
    Fail(501, "transfer-encoding is not supported");
    return false;
  }

  body_remaining_ = 0;
  const auto cl = request_.headers.find("content-length");
  if (cl != request_.headers.end()) {
    size_t length = 0;
    if (!ParseContentLength(cl->second, &length)) {
      Fail(400, "malformed Content-Length '" + cl->second + "'");
      return false;
    }
    if (length > limits_.max_body_bytes) {
      Fail(413, "request body of " + std::to_string(length) +
                    " bytes exceeds the " +
                    std::to_string(limits_.max_body_bytes) + " byte limit");
      return false;
    }
    body_remaining_ = length;
  } else if (request_.method == "POST" || request_.method == "PUT") {
    // A bodied method without framing information is unservable.
    Fail(411, "POST requires a Content-Length header");
    return false;
  }
  return true;
}

}  // namespace briq::serve
