#include "serve/align_service.h"

#include <chrono>
#include <utility>

#include "corpus/serialization.h"
#include "html/page_segmenter.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "serve/serve_stats.h"
#include "util/json.h"

namespace briq::serve {

namespace {

obs::Counter* AlignedDocumentsCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.serve.align_documents");
  return counter;
}

util::Json AlignmentToJson(const core::PreparedDocument& prepared,
                           const core::DocumentAlignment& alignment) {
  util::Json decisions = util::Json::Array();
  for (const auto& d : alignment.decisions) {
    util::Json record = util::Json::Object();
    record.Set("score", d.score);
    record.Set("surface", prepared.text_mentions[d.text_idx].surface());
    record.Set("table_idx", d.table_idx);
    record.Set("target", prepared.table_mentions[d.table_idx].DebugString());
    record.Set("text_idx", d.text_idx);
    decisions.Append(std::move(record));
  }
  util::Json out = util::Json::Object();
  out.Set("alignments", std::move(decisions));
  out.Set("document_id", prepared.source->id);
  out.Set("num_table_mentions", prepared.table_mentions.size());
  out.Set("num_text_mentions", prepared.text_mentions.size());
  return out;
}

}  // namespace

std::string AlignmentJson(const core::PreparedDocument& prepared,
                          const core::DocumentAlignment& alignment) {
  return AlignmentToJson(prepared, alignment).Dump() + "\n";
}

std::string AlignDocumentJson(const core::BriqSystem& system,
                              const corpus::Document& doc) {
  const core::PreparedDocument prepared =
      core::PrepareDocument(doc, system.config());
  const core::DocumentAlignment alignment = system.Align(prepared);
  AlignedDocumentsCounter()->Add();
  return AlignmentJson(prepared, alignment);
}

std::string AlignHtmlJson(const core::BriqSystem& system,
                          const std::string& html) {
  const html::Page page = html::SegmentPage(html);
  const std::vector<corpus::Document> docs =
      core::BuildDocumentsFromPage(page);
  util::Json rendered = util::Json::Array();
  for (const corpus::Document& doc : docs) {
    const core::PreparedDocument prepared =
        core::PrepareDocument(doc, system.config());
    const core::DocumentAlignment alignment = system.Align(prepared);
    AlignedDocumentsCounter()->Add();
    rendered.Append(AlignmentToJson(prepared, alignment));
  }
  util::Json out = util::Json::Object();
  out.Set("documents", std::move(rendered));
  out.Set("num_documents", docs.size());
  return out.Dump() + "\n";
}

void RegisterAlignRoute(Router* router, const core::BriqSystem* system) {
  router->Handle(
      "POST", "/align",
      [system](const HttpRequest& request,
               RequestContext& context) -> HttpResponse {
        (void)context;  // identity travels via the ambient ScopedTraceId
        if (system == nullptr || !system->trained()) {
          HttpResponse r = HttpResponse::Text(
              503, "no model loaded (start with --model <path>)\n");
          r.extra_headers["Retry-After"] = "60";
          return r;
        }
        obs::ScopedSpan span("serve.align");

        const std::string& content_type = request.Header("content-type");
        if (content_type.find("html") != std::string::npos) {
          return HttpResponse::Json(200, AlignHtmlJson(*system, request.body));
        }

        util::Result<util::Json> parsed = util::Json::Parse(request.body);
        if (!parsed.ok()) {
          return HttpResponse::Text(
              400, "request body is not valid JSON: " +
                       parsed.status().message() + "\n");
        }
        if (parsed->is_object() && parsed->Has("html")) {
          const util::Json& html = parsed->at("html");
          if (!html.is_string()) {
            return HttpResponse::Text(400,
                                      "\"html\" member must be a string\n");
          }
          return HttpResponse::Json(200,
                                    AlignHtmlJson(*system, html.AsString()));
        }
        util::Result<corpus::Document> doc = corpus::DocumentFromJson(*parsed);
        if (!doc.ok()) {
          return HttpResponse::Text(
              400, "not a document: " + doc.status().message() + "\n");
        }
        return HttpResponse::Json(200, AlignDocumentJson(*system, *doc));
      });
}

void RegisterDiagnosticRoutes(Router* router, std::atomic<bool>* quit_flag) {
  router->Handle("GET", "/metrics", [](const HttpRequest&) {
    const double now = std::chrono::duration<double>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::MetricsToPrometheus(obs::MetricRegistry::Global().Snapshot(),
                                      now);
    // The rolling briq_serve_window_* families live in ServeStats, not the
    // registry (double-valued, derived at scrape time).
    r.body += ServeStats::Global().PrometheusWindowGauges();
    return r;
  });
  router->Handle("GET", "/healthz",
                 [](const HttpRequest&) { return HttpResponse::Text(200, "ok\n"); });
  router->Handle("GET", "/quitquitquit", [quit_flag](const HttpRequest&) {
    quit_flag->store(true);
    return HttpResponse::Text(200, "quitting\n");
  });
}

}  // namespace briq::serve
