#include "serve/router.h"

#include <exception>
#include <utility>

#include "util/logging.h"

namespace briq::serve {

void Router::Handle(const std::string& method, const std::string& path,
                    Handler handler) {
  routes_[path][method] = std::move(handler);
}

HttpResponse Router::Dispatch(const HttpRequest& request) const {
  const auto by_path = routes_.find(request.path);
  if (by_path == routes_.end()) {
    return HttpResponse::Text(404, "not found\n");
  }
  const auto by_method = by_path->second.find(request.method);
  if (by_method == by_path->second.end()) {
    HttpResponse r = HttpResponse::Text(405, "method not allowed\n");
    std::string allow;
    for (const auto& [method, handler] : by_path->second) {
      if (!allow.empty()) allow += ", ";
      allow += method;
    }
    r.extra_headers["Allow"] = allow;
    return r;
  }
  try {
    return by_method->second(request);
  } catch (const std::exception& e) {
    BRIQ_LOG(Error) << "handler for " << request.method << " " << request.path
                    << " threw: " << e.what();
    return HttpResponse::Text(500, "internal error\n");
  } catch (...) {
    BRIQ_LOG(Error) << "handler for " << request.method << " " << request.path
                    << " threw a non-exception";
    return HttpResponse::Text(500, "internal error\n");
  }
}

}  // namespace briq::serve
