#include "serve/router.h"

#include <cstdint>
#include <exception>
#include <random>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace briq::serve {

bool IsValidTraceId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string GenerateTraceId() {
  // Thread-local so workers never contend; seeded per thread from the
  // system entropy source plus the thread id (random_device can be
  // deterministic on exotic platforms — the tid keeps threads distinct
  // even then).
  thread_local std::mt19937_64 rng = [] {
    std::random_device entropy;
    const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
    return std::mt19937_64(
        (static_cast<uint64_t>(entropy()) << 32) ^ entropy() ^ tid);
  }();
  static const char kHex[] = "0123456789abcdef";
  uint64_t bits = rng();
  std::string id(16, '0');
  for (char& c : id) {
    c = kHex[bits & 0xF];
    bits >>= 4;
  }
  return id;
}

void Router::Handle(const std::string& method, const std::string& path,
                    Handler handler) {
  routes_[path][method] = std::move(handler);
}

void Router::Handle(const std::string& method, const std::string& path,
                    SimpleHandler handler) {
  routes_[path][method] = [handler = std::move(handler)](
                              const HttpRequest& request,
                              RequestContext&) { return handler(request); };
}

HttpResponse Router::Dispatch(const HttpRequest& request,
                              RequestContext& context) const {
  const auto by_path = routes_.find(request.path);
  if (by_path == routes_.end()) {
    return HttpResponse::Text(404, "not found\n");
  }
  const auto by_method = by_path->second.find(request.method);
  if (by_method == by_path->second.end()) {
    HttpResponse r = HttpResponse::Text(405, "method not allowed\n");
    std::string allow;
    for (const auto& [method, handler] : by_path->second) {
      if (!allow.empty()) allow += ", ";
      allow += method;
    }
    r.extra_headers["Allow"] = allow;
    return r;
  }
  try {
    return by_method->second(request, context);
  } catch (const std::exception& e) {
    BRIQ_LOG(Error) << "handler for " << request.method << " " << request.path
                    << " threw: " << e.what();
    return HttpResponse::Text(500, "internal error\n");
  } catch (...) {
    BRIQ_LOG(Error) << "handler for " << request.method << " " << request.path
                    << " threw a non-exception";
    return HttpResponse::Text(500, "internal error\n");
  }
}

HttpResponse Router::Dispatch(const HttpRequest& request) const {
  RequestContext context;
  context.trace_id = GenerateTraceId();
  return Dispatch(request, context);
}

}  // namespace briq::serve
