#ifndef BRIQ_SERVE_HTTP_SERVER_H_
#define BRIQ_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "obs/access_log.h"
#include "serve/http.h"
#include "serve/router.h"
#include "util/bounded_queue.h"
#include "util/status.h"
#include "util/tcp_listener.h"
#include "util/thread_pool.h"

namespace briq::serve {

struct HttpServerOptions {
  /// 127.0.0.1 port to bind; 0 asks the kernel for an ephemeral one.
  uint16_t port = 0;
  /// Worker threads draining the connection queue (<= 0 means hardware
  /// concurrency, at least 1). Each worker owns one connection at a time
  /// through its whole keep-alive lifetime.
  int num_threads = 0;
  /// Accepted-but-unclaimed connections buffered between the acceptor and
  /// the workers. When the buffer is full the acceptor replies 503 with
  /// Retry-After instead of queueing — explicit load shedding, bounded
  /// memory.
  size_t queue_capacity = 64;
  /// Seconds an idle keep-alive connection may sit between requests (and
  /// the per-read budget while a request is in flight) before the worker
  /// closes it.
  double idle_timeout_seconds = 5.0;
  /// Retry-After value advertised on 503 admission rejections.
  int retry_after_seconds = 1;
  /// Requests at least this slow (wall seconds, dispatch + send) are
  /// retained in ServeStats' slow-request ring for /statusz. <= 0 retains
  /// every request (the ring stays bounded either way).
  double slow_request_seconds = 0.5;
  /// Structured JSONL access log; nullptr disables. Not owned — must be
  /// opened before Start() and outlive Stop().
  obs::AccessLog* access_log = nullptr;
  /// Protocol limits forwarded to every connection's RequestParser.
  RequestParser::Limits limits;
};

/// Multi-threaded HTTP/1.1 server over util::TcpListener (DESIGN.md §5h):
/// one accept thread feeds a util::BoundedQueue of accepted sockets, a
/// util::ThreadPool of workers drains it, each worker running a
/// connection's full keep-alive request/response loop against an immutable
/// Router. Admission control is explicit — a full queue means an immediate
/// 503 Retry-After from the acceptor, never unbounded buffering.
///
/// Observability (inert under -DBRIQ_NO_METRICS): every request runs under
/// a ScopedSpan and records `briq.serve.*` counters (requests, responses
/// by status class, admission rejections, parse errors), latency,
/// queue-wait, shed-handling and body-size histograms, and in-flight /
/// queue-depth gauges with `_peak` high-water marks.
///
/// Request-scoped observability (DESIGN.md §5i): each request gets a
/// RequestContext whose trace id is the client's X-Briq-Trace-Id (when
/// valid) or server-generated, installed as the thread's ambient
/// obs::ScopedTraceId so the request's whole span tree lands in the
/// TraceRing tagged with it. The response echoes the id in
/// X-Briq-Trace-Id and carries a Server-Timing header with queue wait,
/// total handler time, and per-stage milliseconds. Finished requests feed
/// ServeStats' rolling windows (and, past `slow_request_seconds`, its
/// slow-request ring) and, when configured, one access-log line each.
class HttpServer {
 public:
  /// The router is copied and frozen; register every route first.
  HttpServer(Router router, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds the port and starts the acceptor and workers.
  util::Status Start();

  /// Stops accepting, drains queued connections, joins every thread.
  /// Idempotent.
  void Stop();

  /// The bound port once Start() succeeded, else 0.
  uint16_t port() const;

  /// Requests answered so far (any status, including parse rejections;
  /// excluding admission 503s — those never carried a request).
  size_t requests_served() const { return requests_served_.load(); }

  /// Connections shed with an admission 503.
  size_t connections_rejected() const { return rejected_.load(); }

  /// Connections currently buffered between acceptor and workers (racy;
  /// tests and diagnostics only).
  size_t queue_depth() const;

 private:
  /// Queue element: the accepted socket stamped with its enqueue time, so
  /// the dequeuing worker can measure accept-to-dequeue queueing delay.
  struct PendingConnection {
    util::ClientSocket socket;
    std::chrono::steady_clock::time_point accepted_at{};
  };

  void AcceptLoop();
  void WorkerLoop();
  /// Runs one connection's request/response lifetime. Returns when the
  /// peer closes, keep-alive is declined, an error occurs, or the server
  /// stops. `queue_wait_seconds` is the connection's accept-to-dequeue
  /// delay, attributed to its first request.
  void HandleConnection(util::ClientSocket conn, double queue_wait_seconds);
  /// Dispatches one parsed request and writes the response. Returns false
  /// when the connection must close afterwards.
  bool Respond(util::ClientSocket& conn, const HttpRequest& request,
               double queue_wait_seconds);

  const Router router_;
  const HttpServerOptions options_;

  struct Instruments;  // registry pointers, resolved once in the ctor
  Instruments* const instruments_;

  std::unique_ptr<util::TcpListener> listener_;
  std::unique_ptr<util::BoundedQueue<PendingConnection>> queue_;
  std::unique_ptr<util::ThreadPool> workers_;
  std::vector<std::future<void>> worker_futures_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> requests_served_{0};
  std::atomic<size_t> rejected_{0};
};

}  // namespace briq::serve

#endif  // BRIQ_SERVE_HTTP_SERVER_H_
