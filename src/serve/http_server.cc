#include "serve/http_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace briq::serve {

namespace {

/// Poll granularity of the accept loop and of a worker's socket reads:
/// the upper bound on how stale a stop request can go unnoticed.
constexpr double kPollTickSeconds = 0.1;

/// Byte-size buckets for request/response body histograms: 64 B .. ~16 MB.
std::vector<double> BodyBytesBuckets() {
  return obs::ExponentialBuckets(64.0, 4.0, 10);
}

}  // namespace

/// Registry instruments, resolved once (instruments live for the process
/// lifetime, so the pointers are cached in a leaked singleton — the same
/// pattern every other instrumented layer uses). Inert no-ops under
/// -DBRIQ_NO_METRICS.
struct HttpServer::Instruments {
  obs::Counter* connections;
  obs::Counter* requests;
  obs::Counter* rejected;
  obs::Counter* parse_errors;
  obs::Counter* responses_by_class[4];  // 2xx, 3xx, 4xx, 5xx
  obs::Histogram* request_seconds;
  obs::Histogram* request_body_bytes;
  obs::Histogram* response_body_bytes;
  obs::Gauge* in_flight;
  obs::Gauge* in_flight_peak;
  obs::QueueTelemetry queue_telemetry{"briq.serve"};

  static Instruments* Get() {
    static Instruments* instruments = [] {
      auto& r = obs::MetricRegistry::Global();
      auto* i = new Instruments();
      i->connections = r.GetCounter("briq.serve.connections");
      i->requests = r.GetCounter("briq.serve.requests");
      i->rejected = r.GetCounter("briq.serve.rejected");
      i->parse_errors = r.GetCounter("briq.serve.parse_errors");
      i->responses_by_class[0] = r.GetCounter("briq.serve.responses_2xx");
      i->responses_by_class[1] = r.GetCounter("briq.serve.responses_3xx");
      i->responses_by_class[2] = r.GetCounter("briq.serve.responses_4xx");
      i->responses_by_class[3] = r.GetCounter("briq.serve.responses_5xx");
      i->request_seconds = r.GetHistogram("briq.serve.request_seconds",
                                          obs::DefaultLatencyBuckets());
      i->request_body_bytes =
          r.GetHistogram("briq.serve.request_body_bytes", BodyBytesBuckets());
      i->response_body_bytes =
          r.GetHistogram("briq.serve.response_body_bytes", BodyBytesBuckets());
      i->in_flight = r.GetGauge("briq.serve.in_flight");
      i->in_flight_peak = r.GetGauge("briq.serve.in_flight_peak");
      return i;
    }();
    return instruments;
  }

  void CountResponse(int status) {
    const int cls = status / 100;
    if (cls >= 2 && cls <= 5) responses_by_class[cls - 2]->Add();
  }
};

HttpServer::HttpServer(Router router, HttpServerOptions options)
    : router_(std::move(router)),
      options_(std::move(options)),
      instruments_(Instruments::Get()) {}

HttpServer::~HttpServer() { Stop(); }

util::Status HttpServer::Start() {
  if (running_.load()) {
    return util::Status::FailedPrecondition("server already started");
  }
  util::Result<util::TcpListener> listener =
      util::TcpListener::Listen(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::make_unique<util::TcpListener>(std::move(listener).value());

  queue_ = std::make_unique<util::BoundedQueue<util::ClientSocket>>(
      options_.queue_capacity, instruments_->queue_telemetry.observer());

  int num_threads = options_.num_threads;
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  stop_.store(false);
  running_.store(true);
  workers_ = std::make_unique<util::ThreadPool>(num_threads);
  worker_futures_.clear();
  for (int i = 0; i < num_threads; ++i) {
    worker_futures_.push_back(workers_->Submit([this] { WorkerLoop(); }));
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return util::Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (queue_ != nullptr) queue_->Close();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& f : worker_futures_) f.get();  // propagate worker exceptions
  worker_futures_.clear();
  workers_.reset();
  listener_.reset();
  queue_.reset();
}

uint16_t HttpServer::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

size_t HttpServer::queue_depth() const {
  return queue_ != nullptr ? queue_->size() : 0;
}

void HttpServer::AcceptLoop() {
  while (!stop_.load()) {
    util::ClientSocket conn = listener_->AcceptClient(kPollTickSeconds);
    if (!conn.valid()) continue;
    instruments_->connections->Add();
    if (queue_->TryPush(conn)) continue;

    // Admission control: the queue is full (every worker busy and the
    // buffer at capacity). Shed the connection with an explicit 503 right
    // here — the acceptor never blocks and memory stays bounded.
    rejected_.fetch_add(1);
    instruments_->rejected->Add();
    HttpResponse overloaded = HttpResponse::Text(
        503, "overloaded: connection queue is full, retry later\n");
    overloaded.extra_headers["Retry-After"] =
        std::to_string(options_.retry_after_seconds);
    instruments_->CountResponse(503);
    conn.SendAll(SerializeResponse(overloaded, /*keep_alive=*/false));
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    std::optional<util::ClientSocket> conn = queue_->Pop();
    if (!conn.has_value()) return;  // closed and drained
    if (stop_.load()) continue;     // shutdown: discard without serving
    HandleConnection(std::move(*conn));
  }
}

void HttpServer::HandleConnection(util::ClientSocket conn) {
  RequestParser parser(options_.limits);
  char buf[4096];
  double idle_seconds = 0.0;
  while (!stop_.load()) {
    // Serve everything already buffered (pipelined requests drain here
    // back-to-back before the next read).
    while (true) {
      const RequestParser::Outcome outcome = parser.Next();
      if (outcome == RequestParser::Outcome::kRequest) {
        idle_seconds = 0.0;
        if (!Respond(conn, parser.request())) return;
        continue;
      }
      if (outcome == RequestParser::Outcome::kError) {
        // Framing is unrecoverable: report and close.
        instruments_->parse_errors->Add();
        const HttpResponse& error = parser.error_response();
        instruments_->CountResponse(error.status);
        requests_served_.fetch_add(1);
        conn.SendAll(SerializeResponse(error, /*keep_alive=*/false));
        return;
      }
      break;  // kNeedMore
    }

    const ssize_t n = conn.RecvSome(buf, sizeof(buf), kPollTickSeconds);
    if (n == 0) return;  // orderly peer close
    if (n < 0) {
      idle_seconds += kPollTickSeconds;
      if (idle_seconds >= options_.idle_timeout_seconds) return;
      continue;
    }
    idle_seconds = 0.0;
    parser.Feed(buf, static_cast<size_t>(n));
  }
}

bool HttpServer::Respond(util::ClientSocket& conn, const HttpRequest& request) {
  instruments_->requests->Add();
  instruments_->in_flight->Add(1);
  instruments_->in_flight_peak->SetMax(instruments_->in_flight->Value());
  instruments_->request_body_bytes->Observe(
      static_cast<double>(request.body.size()));

  bool keep_alive = false;
  bool sent = false;
  {
    // The span and the latency observation both cover dispatch + send.
    obs::ScopedSpan span("serve.request");
    obs::ScopedTimer timer(instruments_->request_seconds);
    const HttpResponse response = router_.Dispatch(request);
    instruments_->CountResponse(response.status);
    instruments_->response_body_bytes->Observe(
        static_cast<double>(response.body.size()));
    keep_alive = request.KeepAlive() && !stop_.load();
    // Count before the send: once the client has read the response, the
    // counter must already reflect it (tests rely on this ordering).
    requests_served_.fetch_add(1);
    sent = conn.SendAll(SerializeResponse(response, keep_alive));
  }
  instruments_->in_flight->Add(-1);
  return sent && keep_alive;
}

}  // namespace briq::serve
