#include "serve/http_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serve_stats.h"
#include "util/logging.h"

namespace briq::serve {

namespace {

/// Poll granularity of the accept loop and of a worker's socket reads:
/// the upper bound on how stale a stop request can go unnoticed.
constexpr double kPollTickSeconds = 0.1;

/// Byte-size buckets for request/response body histograms: 64 B .. ~16 MB.
std::vector<double> BodyBytesBuckets() {
  return obs::ExponentialBuckets(64.0, 4.0, 10);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendTimingEntry(std::string* out, const std::string& name,
                       double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  if (!out->empty()) *out += ", ";
  *out += name + ";dur=" + buf;
}

/// Server-Timing value (RFC 8673 syntax): queue wait, total handler time
/// ("app"), then the request's per-stage span milliseconds.
std::string ServerTimingValue(
    double queue_wait_seconds, double app_seconds,
    const std::vector<std::pair<std::string, double>>& stages) {
  std::string out;
  AppendTimingEntry(&out, "queue", queue_wait_seconds);
  AppendTimingEntry(&out, "app", app_seconds);
  for (const auto& [name, seconds] : stages) {
    AppendTimingEntry(&out, name, seconds);
  }
  return out;
}

}  // namespace

/// Registry instruments, resolved once (instruments live for the process
/// lifetime, so the pointers are cached in a leaked singleton — the same
/// pattern every other instrumented layer uses). Inert no-ops under
/// -DBRIQ_NO_METRICS.
struct HttpServer::Instruments {
  obs::Counter* connections;
  obs::Counter* requests;
  obs::Counter* rejected;
  obs::Counter* parse_errors;
  obs::Counter* responses_by_class[4];  // 2xx, 3xx, 4xx, 5xx
  obs::Histogram* request_seconds;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* shed_seconds;
  obs::Histogram* request_body_bytes;
  obs::Histogram* response_body_bytes;
  obs::Gauge* in_flight;
  obs::Gauge* in_flight_peak;
  obs::QueueTelemetry queue_telemetry{"briq.serve"};

  static Instruments* Get() {
    static Instruments* instruments = [] {
      auto& r = obs::MetricRegistry::Global();
      auto* i = new Instruments();
      i->connections = r.GetCounter("briq.serve.connections");
      i->requests = r.GetCounter("briq.serve.requests");
      i->rejected = r.GetCounter("briq.serve.rejected");
      i->parse_errors = r.GetCounter("briq.serve.parse_errors");
      i->responses_by_class[0] = r.GetCounter("briq.serve.responses_2xx");
      i->responses_by_class[1] = r.GetCounter("briq.serve.responses_3xx");
      i->responses_by_class[2] = r.GetCounter("briq.serve.responses_4xx");
      i->responses_by_class[3] = r.GetCounter("briq.serve.responses_5xx");
      i->request_seconds = r.GetHistogram("briq.serve.request_seconds",
                                          obs::DefaultLatencyBuckets());
      i->queue_wait_seconds = r.GetHistogram("briq.serve.queue_wait_seconds",
                                             obs::DefaultLatencyBuckets());
      i->shed_seconds = r.GetHistogram("briq.serve.shed_seconds",
                                       obs::DefaultLatencyBuckets());
      i->request_body_bytes =
          r.GetHistogram("briq.serve.request_body_bytes", BodyBytesBuckets());
      i->response_body_bytes =
          r.GetHistogram("briq.serve.response_body_bytes", BodyBytesBuckets());
      i->in_flight = r.GetGauge("briq.serve.in_flight");
      i->in_flight_peak = r.GetGauge("briq.serve.in_flight_peak");
      return i;
    }();
    return instruments;
  }

  void CountResponse(int status) {
    const int cls = status / 100;
    if (cls >= 2 && cls <= 5) responses_by_class[cls - 2]->Add();
  }
};

HttpServer::HttpServer(Router router, HttpServerOptions options)
    : router_(std::move(router)),
      options_(std::move(options)),
      instruments_(Instruments::Get()) {}

HttpServer::~HttpServer() { Stop(); }

util::Status HttpServer::Start() {
  if (running_.load()) {
    return util::Status::FailedPrecondition("server already started");
  }
  util::Result<util::TcpListener> listener =
      util::TcpListener::Listen(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::make_unique<util::TcpListener>(std::move(listener).value());

  queue_ = std::make_unique<util::BoundedQueue<PendingConnection>>(
      options_.queue_capacity, instruments_->queue_telemetry.observer());
  // /statusz reads the threshold from the stats singleton; keep it in sync
  // with this server's option (last Start() wins — one server per process
  // in practice).
  ServeStats::Global().set_slow_threshold_seconds(
      options_.slow_request_seconds);

  int num_threads = options_.num_threads;
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  stop_.store(false);
  running_.store(true);
  workers_ = std::make_unique<util::ThreadPool>(num_threads);
  worker_futures_.clear();
  for (int i = 0; i < num_threads; ++i) {
    worker_futures_.push_back(workers_->Submit([this] { WorkerLoop(); }));
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return util::Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (queue_ != nullptr) queue_->Close();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& f : worker_futures_) f.get();  // propagate worker exceptions
  worker_futures_.clear();
  workers_.reset();
  listener_.reset();
  queue_.reset();
}

uint16_t HttpServer::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

size_t HttpServer::queue_depth() const {
  return queue_ != nullptr ? queue_->size() : 0;
}

void HttpServer::AcceptLoop() {
  while (!stop_.load()) {
    util::ClientSocket conn = listener_->AcceptClient(kPollTickSeconds);
    if (!conn.valid()) continue;
    const auto accepted_at = std::chrono::steady_clock::now();
    instruments_->connections->Add();
    PendingConnection pending{std::move(conn), accepted_at};
    if (queue_->TryPush(pending)) continue;

    // Admission control: the queue is full (every worker busy and the
    // buffer at capacity). Shed the connection with an explicit 503 right
    // here — the acceptor never blocks and memory stays bounded. TryPush
    // left `pending` intact on failure, so the socket is still ours to
    // answer on.
    rejected_.fetch_add(1);
    instruments_->rejected->Add();
    HttpResponse overloaded = HttpResponse::Text(
        503, "overloaded: connection queue is full, retry later\n");
    overloaded.extra_headers["Retry-After"] =
        std::to_string(options_.retry_after_seconds);
    instruments_->CountResponse(503);
    pending.socket.SendAll(SerializeResponse(overloaded, /*keep_alive=*/false));
    // Shed handling is acceptor time: while this runs, nothing is being
    // accepted. The histogram makes that cost visible under overload.
    instruments_->shed_seconds->Observe(SecondsSince(accepted_at));
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    std::optional<PendingConnection> pending = queue_->Pop();
    if (!pending.has_value()) return;  // closed and drained
    if (stop_.load()) continue;        // shutdown: discard without serving
    const double queue_wait = SecondsSince(pending->accepted_at);
    instruments_->queue_wait_seconds->Observe(queue_wait);
    HandleConnection(std::move(pending->socket), queue_wait);
  }
}

void HttpServer::HandleConnection(util::ClientSocket conn,
                                  double queue_wait_seconds) {
  RequestParser parser(options_.limits);
  char buf[4096];
  double idle_seconds = 0.0;
  while (!stop_.load()) {
    // Serve everything already buffered (pipelined requests drain here
    // back-to-back before the next read).
    while (true) {
      const RequestParser::Outcome outcome = parser.Next();
      if (outcome == RequestParser::Outcome::kRequest) {
        idle_seconds = 0.0;
        if (!Respond(conn, parser.request(), queue_wait_seconds)) return;
        queue_wait_seconds = 0.0;  // only the first request waited
        continue;
      }
      if (outcome == RequestParser::Outcome::kError) {
        // Framing is unrecoverable: report and close.
        const auto error_start = std::chrono::steady_clock::now();
        instruments_->parse_errors->Add();
        const HttpResponse& error = parser.error_response();
        instruments_->CountResponse(error.status);
        requests_served_.fetch_add(1);
        conn.SendAll(SerializeResponse(error, /*keep_alive=*/false));
        // Unparsable framing has no trustworthy route; a constant key
        // keeps the per-route window cardinality bounded.
        ServeStats::Global().RecordRequest("_parse_error_", error.status,
                                           SecondsSince(error_start));
        if (options_.access_log != nullptr) {
          obs::AccessLogRecord record;
          record.trace_id = GenerateTraceId();
          record.path = "_parse_error_";
          record.status = error.status;
          record.bytes_out = SerializeResponse(error, false).size();
          record.wall_seconds = SecondsSince(error_start);
          record.queue_wait_seconds = queue_wait_seconds;
          record.unix_seconds = UnixSecondsNow();
          options_.access_log->Write(record);
        }
        return;
      }
      break;  // kNeedMore
    }

    const ssize_t n = conn.RecvSome(buf, sizeof(buf), kPollTickSeconds);
    if (n == 0) return;  // orderly peer close
    if (n < 0) {
      idle_seconds += kPollTickSeconds;
      if (idle_seconds >= options_.idle_timeout_seconds) return;
      continue;
    }
    idle_seconds = 0.0;
    parser.Feed(buf, static_cast<size_t>(n));
  }
}

bool HttpServer::Respond(util::ClientSocket& conn, const HttpRequest& request,
                         double queue_wait_seconds) {
  instruments_->requests->Add();
  instruments_->in_flight->Add(1);
  instruments_->in_flight_peak->SetMax(instruments_->in_flight->Value());
  instruments_->request_body_bytes->Observe(
      static_cast<double>(request.body.size()));

  // Request identity: propagate the client's trace id when it sent a
  // valid one, otherwise mint our own. The context travels through the
  // router into handlers; the ambient ScopedTraceId below tags the whole
  // span tree (down through the aligner's stages) with the same id.
  RequestContext context;
  const std::string& client_id = request.Header("x-briq-trace-id");
  if (IsValidTraceId(client_id)) {
    context.trace_id = client_id;
    context.trace_id_from_client = true;
  } else {
    context.trace_id = GenerateTraceId();
  }
  context.queue_wait_seconds = queue_wait_seconds;

  bool keep_alive = false;
  bool sent = false;
  int status = 0;
  uint64_t bytes_out = 0;
  std::vector<std::pair<std::string, double>> stages;
  const auto start = std::chrono::steady_clock::now();
  {
    // The span and the latency observation both cover dispatch + send.
    obs::ScopedTraceId trace_scope(context.trace_id);
    obs::ScopedSpan span("serve.request");
    obs::ScopedTimer timer(instruments_->request_seconds);
    HttpResponse response = router_.Dispatch(request, context);
    // Handler-scope spans have closed by now, so the still-open
    // "serve.request" span holds the request's full stage breakdown.
    stages = obs::OpenSpanStageSeconds();
    response.extra_headers["X-Briq-Trace-Id"] = context.trace_id;
    response.extra_headers["Server-Timing"] = ServerTimingValue(
        queue_wait_seconds, SecondsSince(start), stages);
    status = response.status;
    instruments_->CountResponse(response.status);
    instruments_->response_body_bytes->Observe(
        static_cast<double>(response.body.size()));
    keep_alive = request.KeepAlive() && !stop_.load();
    // Count before the send: once the client has read the response, the
    // counter must already reflect it (tests rely on this ordering).
    requests_served_.fetch_add(1);
    const std::string wire = SerializeResponse(response, keep_alive);
    bytes_out = wire.size();
    sent = conn.SendAll(wire);
  }
  const double wall_seconds = SecondsSince(start);
  instruments_->in_flight->Add(-1);

  ServeStats& stats = ServeStats::Global();
  // Per-route windows are keyed by registered paths only: an unknown path
  // (404 traffic) must not mint an unbounded set of windows.
  const std::string route =
      router_.HasPath(request.path) ? request.path : "_other_";
  stats.RecordRequest(route, status, wall_seconds);
  if (wall_seconds >= stats.slow_threshold_seconds()) {
    SlowRequest slow;
    slow.trace_id = context.trace_id;
    slow.method = request.method;
    slow.path = request.path;
    slow.status = status;
    slow.wall_seconds = wall_seconds;
    slow.queue_wait_seconds = queue_wait_seconds;
    slow.unix_seconds = UnixSecondsNow();
    slow.stage_seconds = stages;
    stats.RecordSlow(std::move(slow));
  }
  if (options_.access_log != nullptr) {
    obs::AccessLogRecord record;
    record.trace_id = context.trace_id;
    record.method = request.method;
    record.path = request.path;
    record.status = status;
    record.bytes_in = request.body.size();
    record.bytes_out = bytes_out;
    record.wall_seconds = wall_seconds;
    record.queue_wait_seconds = queue_wait_seconds;
    record.unix_seconds = UnixSecondsNow();
    record.stage_seconds = std::move(stages);
    options_.access_log->Write(record);
  }
  return sent && keep_alive;
}

}  // namespace briq::serve
