#ifndef BRIQ_SERVE_ALIGN_SERVICE_H_
#define BRIQ_SERVE_ALIGN_SERVICE_H_

#include <atomic>
#include <string>

#include "core/aligner.h"
#include "core/extraction.h"
#include "core/pipeline.h"
#include "corpus/document.h"
#include "serve/router.h"

namespace briq::serve {

/// The `POST /align` service: documents (JSON) or raw pages (HTML) in,
/// alignment JSON out. The same rendering functions back `briq_tool align
/// --json`, so an HTTP response is byte-identical to the offline tool on
/// the same document and model (tests/serve_parity_test.cc holds the
/// contract).

/// Canonical alignment rendering for one prepared document: the document
/// id, mention counts, and one record per alignment decision (text index,
/// table index, score, surface form, target description). Compact JSON,
/// trailing newline.
std::string AlignmentJson(const core::PreparedDocument& prepared,
                          const core::DocumentAlignment& alignment);

/// Prepares `doc` under the system's config, aligns it, and renders
/// AlignmentJson.
std::string AlignDocumentJson(const core::BriqSystem& system,
                              const corpus::Document& doc);

/// Full HTML path: segments the page, builds coherent documents (paper
/// §III), aligns each, and renders them as {"documents": [...],
/// "num_documents": N}. Compact JSON, trailing newline.
std::string AlignHtmlJson(const core::BriqSystem& system,
                          const std::string& html);

/// Registers `POST /align` on the router. `system` must stay valid (and
/// untouched — workers share it read-only) while the server runs; nullptr
/// or an untrained system yields 503 on every call, so a model-less
/// diagnostics server still boots. Request dispatch:
///   - Content-Type contains "html"      -> body is a raw HTML page
///   - JSON object with an "html" member -> that string is the HTML page
///   - any other JSON object             -> one corpus::Document
/// Malformed input gets 400 with the parse error in the body.
void RegisterAlignRoute(Router* router, const core::BriqSystem* system);

/// Registers the diagnostics routes the old loopback responder offered,
/// now served by the worker pool: GET /metrics (Prometheus text format),
/// GET /healthz, and GET /quitquitquit (sets *quit_flag so the serving
/// loop can exit; the flag must outlive the server).
void RegisterDiagnosticRoutes(Router* router, std::atomic<bool>* quit_flag);

}  // namespace briq::serve

#endif  // BRIQ_SERVE_ALIGN_SERVICE_H_
