#ifndef BRIQ_SERVE_ROUTER_H_
#define BRIQ_SERVE_ROUTER_H_

#include <functional>
#include <map>
#include <string>

#include "serve/http.h"

namespace briq::serve {

/// Exact-path route table: (method, path) -> handler. Unknown paths get
/// 404; known paths hit with the wrong method get 405 with an Allow
/// header listing what would have worked. Routes are registered before
/// the server starts and never mutated afterwards, so Dispatch() is
/// lock-free and safe from any number of worker threads (handlers must be
/// thread-safe themselves).
class Router {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Registers `handler` for an exact (method, path) pair, replacing any
  /// previous registration.
  void Handle(const std::string& method, const std::string& path,
              Handler handler);

  /// Routes one request. Any exception escaping a handler becomes a 500
  /// (the connection survives; the error is reported to the client).
  HttpResponse Dispatch(const HttpRequest& request) const;

  size_t route_count() const { return routes_.size(); }

 private:
  // path -> method -> handler (two levels so 405 can enumerate methods).
  std::map<std::string, std::map<std::string, Handler>> routes_;
};

}  // namespace briq::serve

#endif  // BRIQ_SERVE_ROUTER_H_
