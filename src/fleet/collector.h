#ifndef BRIQ_FLEET_COLLECTOR_H_
#define BRIQ_FLEET_COLLECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/snapshot_merge.h"
#include "util/status.h"
#include "util/tcp_listener.h"

namespace briq::fleet {

/// Tuning knobs of the push-metrics collector.
struct CollectorOptions {
  /// 127.0.0.1 port to listen on; 0 asks the kernel for an ephemeral one.
  uint16_t port = 0;
  /// The workers' heartbeat cadence. A worker that has reported at least
  /// once and then stays silent for 2x this is flagged missed_heartbeat.
  double heartbeat_seconds = 0.5;
  /// Accept/read poll cadence of the collector thread.
  double poll_seconds = 0.02;
};

/// The collector's liveness view of one worker slot, derived from the
/// frames that worker has pushed (process-level supervision — exits,
/// restarts — lives in the driver, not here).
struct WorkerTelemetry {
  int worker_id = 0;
  /// At least one frame arrived from this worker. Heartbeat enforcement
  /// starts here: a worker whose flusher never connects (e.g. a
  /// BRIQ_NO_METRICS build, whose flusher is a stub) is supervised by
  /// process exit alone, never falsely flagged.
  bool ever_reported = false;
  /// Seconds since the last frame (snapshot or heartbeat); -1 before the
  /// first one.
  double last_frame_age_seconds = -1.0;
  uint64_t docs_total = 0;
  /// Rate over the worker's own monotonic timestamps between its last two
  /// document-count reports (immune to collector-side scheduling jitter).
  double docs_per_sec = 0.0;
  size_t snapshots = 0;
  /// ever_reported && last frame older than 2 * heartbeat_seconds.
  bool missed_heartbeat = false;
};

/// The fleet driver's ingest half (DESIGN.md §5j): one background thread
/// accepting worker connections on a util::TcpListener and draining
/// length-prefixed JSON frames (util/framing.h) into an obs::SnapshotMerge
/// plus per-worker liveness state. Frame schema:
///
///   {"type": "snapshot", "worker": K, "flush_index": i, "trigger": t,
///    "docs_total": d, "ts_monotonic_sec": s, "snapshot": <MetricsToJson>}
///   {"type": "heartbeat", "worker": K, "docs_total": d,
///    "ts_monotonic_sec": s}
///
/// Fault containment: a malformed frame or a desynchronized length prefix
/// drops that one connection (counted in frame_errors()) and nothing
/// else — the merge, the other workers, and the accept loop keep going.
/// All accessors are thread-safe.
class Collector {
 public:
  explicit Collector(CollectorOptions options = {});
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Binds the port and starts the collector thread.
  util::Status Start();

  /// Stops the thread and closes every connection. Idempotent.
  void Stop();

  /// The bound port once Start() succeeded, else 0.
  uint16_t port() const;

  /// Fleet-wide aggregate of the latest snapshot per worker.
  obs::MetricsSnapshot Merged() const { return merge_.Merged(); }

  /// Latest snapshot per worker, for `worker="N"`-labelled export.
  std::vector<std::pair<int, obs::MetricsSnapshot>> WorkerSnapshots() const {
    return merge_.WorkerSnapshots();
  }

  /// Liveness view of every worker that has ever reported, ascending id.
  std::vector<WorkerTelemetry> Workers() const;

  /// Liveness view of one worker; nullopt before its first frame.
  std::optional<WorkerTelemetry> Worker(int worker_id) const;

  /// Restarts the liveness clock of `worker_id` (the driver calls this
  /// when it re-execs a worker, so the fresh process gets a full heartbeat
  /// grace period). The worker's merged contribution is kept: the new
  /// incarnation's first snapshot replaces it wholesale.
  void ResetWorkerLiveness(int worker_id);

  /// Frames accepted (snapshots + heartbeats) and frames/streams rejected.
  size_t frames_received() const { return frames_.load(); }
  size_t frame_errors() const { return frame_errors_.load(); }

  /// Connections currently open.
  size_t open_connections() const { return open_connections_.load(); }

  /// Waits until every connection has drained to EOF (workers send their
  /// final snapshot right before exiting; the driver calls this after the
  /// last exit so the final merge is complete). False on timeout.
  bool WaitForDrain(double timeout_seconds) const;

 private:
  struct Connection;
  struct WorkerState {
    bool ever_reported = false;
    std::chrono::steady_clock::time_point last_frame{};
    uint64_t docs_total = 0;
    double docs_per_sec = 0.0;
    /// Previous (worker-monotonic ts, docs) pair for the rate.
    double last_rate_ts = -1.0;
    uint64_t last_rate_docs = 0;
    size_t snapshots = 0;
  };

  void Loop();
  /// Handles one complete frame payload. Returns false when the payload is
  /// malformed (the connection is dropped by the caller).
  bool HandleFrame(const std::string& payload);
  WorkerTelemetry TelemetryLocked(int worker_id, const WorkerState& state,
                                  std::chrono::steady_clock::time_point now)
      const;

  const CollectorOptions options_;
  std::unique_ptr<util::TcpListener> listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> frames_{0};
  std::atomic<size_t> frame_errors_{0};
  std::atomic<size_t> open_connections_{0};

  obs::SnapshotMerge merge_;
  mutable std::mutex mu_;  // guards workers_
  std::map<int, WorkerState> workers_;
};

}  // namespace briq::fleet

#endif  // BRIQ_FLEET_COLLECTOR_H_
