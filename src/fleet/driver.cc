#include "fleet/driver.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <thread>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "serve/router.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/shutdown.h"

namespace briq::fleet {

namespace {

namespace fs = std::filesystem;

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Counts the `<stem>-NNNNN.jsonl` shard files under `directory` and
/// verifies contiguous numbering from 0. Deliberately a local filesystem
/// scan (not corpus::ListShards): briq_fleet stays off briq_core/corpus so
/// the sanitizer sub-builds keep their small dependency closure.
util::Result<size_t> CountShardFiles(const std::string& directory,
                                     const std::string& stem) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return util::Status::NotFound("shard directory not found: " + directory);
  }
  const std::string prefix = stem + "-";
  const std::string suffix = ".jsonl";
  std::vector<int> indices;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    indices.push_back(std::atoi(digits.c_str()));
  }
  if (indices.empty()) {
    return util::Status::NotFound("no " + prefix + "*.jsonl shards in: " +
                                  directory);
  }
  std::sort(indices.begin(), indices.end());
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] != static_cast<int>(i)) {
      return util::Status::NotFound("shard numbering has a gap at index " +
                                    std::to_string(i) + ": " + directory);
    }
  }
  return indices.size();
}

const char* SlotStateWord(int state) {
  switch (state) {
    case 0: return "running";
    case 1: return "done";
    case 2: return "failed";
    default: return "stopped";
  }
}

}  // namespace

FleetDriver::FleetDriver(FleetOptions options)
    : options_(std::move(options)),
      docs_counter_(options_.mode == "train" ? "briq.train.documents"
                                             : "briq.stream.documents") {}

std::vector<std::string> FleetDriver::WorkerArgs(int slot_index) const {
  const Slot& slot = slots_[static_cast<size_t>(slot_index)];
  std::vector<std::string> args;
  args.push_back(options_.worker_binary);
  args.push_back(options_.mode);
  args.push_back(options_.corpus_dir);
  if (options_.mode == "align") {
    args.push_back("--stream");
    if (!options_.model.empty()) {
      args.push_back("--model");
      args.push_back(options_.model);
    }
    if (options_.sleep_per_doc_ms > 0) {
      args.push_back("--sleep-per-doc-ms");
      args.push_back(std::to_string(options_.sleep_per_doc_ms));
    }
  } else {
    args.push_back("--model-out");
    args.push_back(options_.model_out + ".w" + std::to_string(slot_index));
    // Each worker owns its whole range; the fleet-level split is by
    // shards, not by a percentage inside each range.
    args.push_back("--train-pct");
    args.push_back("100");
  }
  args.push_back("--shard-range");
  args.push_back(std::to_string(slot.shard_begin) + ":" +
                 std::to_string(slot.shard_end));
  if (options_.worker_threads > 0) {
    args.push_back("--threads");
    args.push_back(std::to_string(options_.worker_threads));
  }
  args.push_back("--metrics-push");
  args.push_back("127.0.0.1:" + std::to_string(collector_->port()));
  args.push_back("--worker-id");
  args.push_back(std::to_string(slot_index));
  args.push_back("--metrics-interval");
  args.push_back(std::to_string(options_.metrics_interval_seconds));
  args.push_back("--heartbeat-seconds");
  args.push_back(std::to_string(options_.heartbeat_seconds));
  return args;
}

util::Status FleetDriver::SpawnWorker(int slot_index) {
  const std::vector<std::string> args = WorkerArgs(slot_index);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return util::Status::Internal("fork failed for fleet worker " +
                                  std::to_string(slot_index));
  }
  if (pid == 0) {
    // Child: exec resets caught signal dispositions to default, so the
    // worker sees plain SIGTERM semantics regardless of the driver's
    // handlers.
    ::execv(argv[0], argv.data());
    // Only reached when exec failed; report through the exit status
    // (127 = command not found convention).
    std::fprintf(stderr, "fleet worker %d: cannot exec %s\n", slot_index,
                 argv[0]);
    ::_exit(127);
  }
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    Slot& slot = slots_[static_cast<size_t>(slot_index)];
    slot.pid = pid;
    slot.state = SlotState::kRunning;
    slot.hb_killed = false;
  }
  std::cout << "fleet worker " << slot_index << " pid " << pid << " range "
            << RangeText(slots_[static_cast<size_t>(slot_index)]) << "\n"
            << std::flush;
  return util::Status::OK();
}

std::string FleetDriver::RangeText(const Slot& slot) const {
  return "[" + std::to_string(slot.shard_begin) + ", " +
         std::to_string(slot.shard_end) + ")";
}

size_t FleetDriver::RunningCount() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  size_t running = 0;
  for (const Slot& slot : slots_) {
    if (slot.state == SlotState::kRunning) ++running;
  }
  return running;
}

void FleetDriver::ReapExits() {
  while (true) {
    int wstatus = 0;
    const pid_t pid = ::waitpid(-1, &wstatus, WNOHANG);
    if (pid <= 0) break;
    int slot_index = -1;
    {
      std::lock_guard<std::mutex> lock(slots_mu_);
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].pid == pid && slots_[i].state == SlotState::kRunning) {
          slot_index = static_cast<int>(i);
          break;
        }
      }
    }
    if (slot_index < 0) continue;
    Slot& slot = slots_[static_cast<size_t>(slot_index)];
    if (draining_) {
      // Intentional stop (shutdown drain or fail-fast kill): any exit is
      // the expected outcome, not a fresh failure.
      std::lock_guard<std::mutex> lock(slots_mu_);
      slot.state = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0
                       ? SlotState::kDone
                       : SlotState::kStopped;
      continue;
    }
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
      {
        std::lock_guard<std::mutex> lock(slots_mu_);
        slot.state = SlotState::kDone;
      }
      std::cout << "fleet worker " << slot_index << " done (range "
                << RangeText(slot) << ")\n"
                << std::flush;
      continue;
    }
    std::string reason;
    if (WIFEXITED(wstatus)) {
      reason = "exit status " + std::to_string(WEXITSTATUS(wstatus));
    } else if (WIFSIGNALED(wstatus)) {
      reason = "killed by signal " + std::to_string(WTERMSIG(wstatus));
      if (slot.hb_killed) reason += " (after missed heartbeats)";
    } else {
      reason = "unexpected wait status " + std::to_string(wstatus);
    }
    HandleFailure(slot_index, reason);
  }
}

void FleetDriver::CheckHeartbeats() {
  if (draining_) return;
  std::vector<std::pair<int, pid_t>> to_kill;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state != SlotState::kRunning || slot.hb_killed) continue;
      const std::optional<WorkerTelemetry> telemetry =
          collector_->Worker(static_cast<int>(i));
      // Enforcement starts at the first frame: a worker that never
      // connects (metrics compiled out) is supervised by waitpid alone.
      if (!telemetry.has_value() || !telemetry->ever_reported) continue;
      if (telemetry->missed_heartbeat) {
        slot.hb_killed = true;
        to_kill.emplace_back(static_cast<int>(i), slot.pid);
        std::cout << "fleet worker " << i << " missed heartbeats (last frame "
                  << telemetry->last_frame_age_seconds << "s ago)\n"
                  << std::flush;
      }
    }
  }
  // A wedged worker gets SIGKILL (it stopped servicing its own flusher
  // thread; SIGTERM would rely on exactly the machinery that died). The
  // exit funnels through ReapExits -> HandleFailure like any other death.
  for (const auto& [slot_index, pid] : to_kill) {
    (void)slot_index;
    if (pid > 0) ::kill(pid, SIGKILL);
  }
}

void FleetDriver::HandleFailure(int slot_index, const std::string& reason) {
  Slot& slot = slots_[static_cast<size_t>(slot_index)];
  if (options_.on_failure == OnWorkerFailure::kRestart &&
      slot.restarts < options_.max_restarts) {
    {
      std::lock_guard<std::mutex> lock(slots_mu_);
      ++slot.restarts;
    }
    collector_->ResetWorkerLiveness(slot_index);
    std::cout << "fleet worker " << slot_index << " failed (" << reason
              << "); restarting over range " << RangeText(slot) << " (attempt "
              << slot.restarts << "/" << options_.max_restarts << ")\n"
              << std::flush;
    const util::Status status = SpawnWorker(slot_index);
    if (status.ok()) return;
    std::cerr << status.ToString() << "\n";
  }
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    slot.state = SlotState::kFailed;
  }
  failed_ = true;
  failure_ = "fleet worker " + std::to_string(slot_index) + " failed (" +
             reason + ")";
  std::cout << failure_ << "\n" << std::flush;
  BeginDrain("failing fast");
}

void FleetDriver::BeginDrain(const std::string& reason) {
  if (draining_) return;
  draining_ = true;
  drain_deadline_ =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.shutdown_grace_seconds));
  size_t signalled = 0;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (const Slot& slot : slots_) {
      if (slot.state == SlotState::kRunning && slot.pid > 0) {
        ::kill(slot.pid, SIGTERM);
        ++signalled;
      }
    }
  }
  std::cout << "fleet: " << reason << "; draining " << signalled
            << " worker(s)\n"
            << std::flush;
}

std::vector<serve::FleetWorkerRow> FleetDriver::FleetRows() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  std::vector<serve::FleetWorkerRow> rows;
  rows.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    serve::FleetWorkerRow row;
    row.worker_id = static_cast<int>(i);
    row.state = SlotStateWord(static_cast<int>(slot.state));
    row.range = RangeText(slot);
    row.restarts = slot.restarts;
    if (const std::optional<WorkerTelemetry> telemetry =
            collector_->Worker(static_cast<int>(i))) {
      row.docs_total = telemetry->docs_total;
      row.docs_per_sec = telemetry->docs_per_sec;
      row.last_heartbeat_age_seconds = telemetry->last_frame_age_seconds;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::pair<size_t, size_t> FleetDriver::HealthyCount() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  size_t healthy = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.state == SlotState::kDone) {
      ++healthy;
      continue;
    }
    if (slot.state != SlotState::kRunning) continue;
    const std::optional<WorkerTelemetry> telemetry =
        collector_->Worker(static_cast<int>(i));
    if (!telemetry.has_value() || !telemetry->ever_reported ||
        !telemetry->missed_heartbeat) {
      ++healthy;
    }
  }
  return {healthy, slots_.size()};
}

void FleetDriver::WriteFleetRecord(const char* trigger) {
  last_record_time_ = std::chrono::steady_clock::now();
  if (!metrics_out_.is_open()) return;
  const obs::MetricsSnapshot merged = collector_->Merged();
  uint64_t docs = 0;
  if (auto it = merged.counters.find(docs_counter_);
      it != merged.counters.end()) {
    docs = it->second;
  }

  util::Json record = util::Json::Object();
  record.Set("flush_index", flush_index_++);
  record.Set("trigger", trigger);
  record.Set(
      "ts_monotonic_sec",
      std::chrono::duration<double>(last_record_time_ - start_time_).count());
  record.Set("docs_total", docs);
  record.Set("cumulative", obs::MetricsToJson(merged));

  util::Json workers = util::Json::Array();
  for (const serve::FleetWorkerRow& row : FleetRows()) {
    util::Json entry = util::Json::Object();
    entry.Set("worker", row.worker_id);
    entry.Set("state", row.state);
    entry.Set("range", row.range);
    entry.Set("docs_total", row.docs_total);
    entry.Set("docs_per_sec", row.docs_per_sec);
    entry.Set("restarts", row.restarts);
    workers.Append(std::move(entry));
  }
  record.Set("workers", std::move(workers));
  const auto [healthy, total] = HealthyCount();
  record.Set("workers_healthy", healthy);
  record.Set("workers_total", total);

  metrics_out_ << record.Dump(/*indent=*/-1) << "\n" << std::flush;
}

util::Status FleetDriver::Run() {
  if (options_.mode != "align" && options_.mode != "train") {
    return util::Status::InvalidArgument("fleet mode must be align or train: " +
                                         options_.mode);
  }
  if (options_.mode == "train" && options_.model_out.empty()) {
    return util::Status::InvalidArgument(
        "fleet train requires --model-out <prefix>");
  }
  if (options_.num_workers < 1) {
    return util::Status::InvalidArgument("fleet needs at least one worker");
  }
  BRIQ_ASSIGN_OR_RETURN(const size_t num_shards,
                        CountShardFiles(options_.corpus_dir, options_.stem));
  const size_t num_workers = std::min<size_t>(
      static_cast<size_t>(options_.num_workers), num_shards);

  // Contiguous near-equal ranges: worker k owns [k*S/W, (k+1)*S/W).
  slots_.clear();
  for (size_t k = 0; k < num_workers; ++k) {
    Slot slot;
    slot.shard_begin = k * num_shards / num_workers;
    slot.shard_end = (k + 1) * num_shards / num_workers;
    slots_.push_back(slot);
  }

  CollectorOptions collector_options;
  collector_options.heartbeat_seconds = options_.heartbeat_seconds;
  collector_ = std::make_unique<Collector>(collector_options);
  BRIQ_RETURN_IF_ERROR(collector_->Start());

  // The fleet observability endpoint. Registered by hand rather than via
  // serve::RegisterDiagnosticRoutes: that helper lives in briq_serve
  // (which links the whole pipeline), and the fleet's /metrics serves the
  // MERGED registry, not the driver-local one.
  serve::Router router;
  router.Handle("GET", "/metrics",
                serve::Router::SimpleHandler([this](const serve::HttpRequest&) {
                  serve::HttpResponse response;
                  response.status = 200;
                  response.content_type =
                      "text/plain; version=0.0.4; charset=utf-8";
                  const obs::MetricsSnapshot merged = collector_->Merged();
                  response.body = obs::FleetMetricsToPrometheus(
                      merged, collector_->WorkerSnapshots(), UnixSecondsNow());
                  // Driver-local instruments (the serve layer's own
                  // telemetry), minus any family the merge already covers
                  // — one page, no duplicate families.
                  obs::MetricsSnapshot local =
                      obs::MetricRegistry::Global().Snapshot();
                  for (const auto& [name, value] : merged.counters) {
                    (void)value;
                    local.counters.erase(name);
                  }
                  for (const auto& [name, value] : merged.gauges) {
                    (void)value;
                    local.gauges.erase(name);
                  }
                  for (const auto& [name, value] : merged.histograms) {
                    (void)value;
                    local.histograms.erase(name);
                  }
                  response.body += obs::MetricsToPrometheus(local);
                  return response;
                }));
  router.Handle("GET", "/healthz",
                serve::Router::SimpleHandler([this](const serve::HttpRequest&) {
                  const auto [healthy, total] = HealthyCount();
                  const bool quorum = healthy * 2 >= total + 1;
                  serve::HttpResponse response;
                  response.status = quorum ? 200 : 503;
                  response.body = (quorum ? "ok " : "degraded ") +
                                  std::to_string(healthy) + "/" +
                                  std::to_string(total) + " workers healthy\n";
                  return response;
                }));
  router.Handle("GET", "/quitquitquit",
                serve::Router::SimpleHandler([this](const serve::HttpRequest&) {
                  quit_.store(true);
                  serve::HttpResponse response;
                  response.status = 200;
                  response.body = "quitting\n";
                  return response;
                }));
  serve::StatuszInfo statusz_info;
  statusz_info.build_info = "briq_tool fleet " + options_.mode + " (" +
                            std::to_string(num_workers) + " workers, " +
                            std::to_string(num_shards) + " shards)";
  statusz_info.model_info = options_.model;
  statusz_info.fleet_rows = [this] { return FleetRows(); };
  serve::RegisterStatuszRoute(&router, std::move(statusz_info));

  serve::HttpServerOptions server_options;
  server_options.port = options_.http_port;
  server_options.num_threads = 2;
  server_ = std::make_unique<serve::HttpServer>(std::move(router),
                                                server_options);
  BRIQ_RETURN_IF_ERROR(server_->Start());
  std::cout << "fleet: " << num_shards << " shard(s) across " << num_workers
            << " worker(s)\n";
  // The resolved port on its own parseable line, format-shared with the
  // other serving commands so scripts reuse one regex.
  std::cout << "serving metrics on http://127.0.0.1:" << server_->port()
            << "/metrics\n"
            << std::flush;

  if (!options_.metrics_out.empty()) {
    metrics_out_.open(options_.metrics_out, std::ios::out | std::ios::trunc);
    if (!metrics_out_) {
      server_->Stop();
      collector_->Stop();
      return util::Status::NotFound("cannot open fleet metrics output: " +
                                    options_.metrics_out);
    }
  }

  util::InstallShutdownHandler();
  start_time_ = std::chrono::steady_clock::now();
  WriteFleetRecord("start");
  for (size_t k = 0; k < slots_.size(); ++k) {
    const util::Status status = SpawnWorker(static_cast<int>(k));
    if (!status.ok()) {
      failed_ = true;
      failure_ = status.ToString();
      BeginDrain("spawn failed");
      break;
    }
  }

  bool interrupted = false;
  while (RunningCount() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ReapExits();
    CheckHeartbeats();
    if ((util::ShutdownRequested() || quit_.load()) && !draining_) {
      interrupted = true;
      BeginDrain(util::ShutdownRequested() ? "signal received"
                                           : "quit requested");
    }
    if (draining_ && std::chrono::steady_clock::now() >= drain_deadline_) {
      std::lock_guard<std::mutex> lock(slots_mu_);
      for (const Slot& slot : slots_) {
        if (slot.state == SlotState::kRunning && slot.pid > 0) {
          ::kill(slot.pid, SIGKILL);
        }
      }
    }
    if (options_.metrics_interval_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_record_time_)
                .count() >= options_.metrics_interval_seconds) {
      WriteFleetRecord("interval");
    }
  }

  // The workers' final snapshots may still be in flight; the merge is only
  // final once every push connection has reached EOF.
  collector_->WaitForDrain(2.0);
  WriteFleetRecord("final");
  if (metrics_out_.is_open()) metrics_out_.close();

  const obs::MetricsSnapshot merged = collector_->Merged();
  uint64_t docs = 0;
  if (auto it = merged.counters.find(docs_counter_);
      it != merged.counters.end()) {
    docs = it->second;
  }
  int restarts = 0;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (const Slot& slot : slots_) restarts += slot.restarts;
  }
  std::cout << "fleet " << options_.mode << " " << (failed_ ? "failed" : "ok")
            << ": " << docs << " documents across " << slots_.size()
            << " worker(s), " << restarts << " restart(s)\n"
            << std::flush;

  // Linger so a scraper (or the smoke test) can still read the final
  // fleet-wide numbers; /quitquitquit ends it early.
  if (!interrupted && options_.serve_linger_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.serve_linger_seconds));
    while (std::chrono::steady_clock::now() < deadline && !quit_.load() &&
           !util::ShutdownRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  server_->Stop();
  collector_->Stop();

  if (failed_) return util::Status::Internal(failure_);
  return util::Status::OK();
}

}  // namespace briq::fleet
