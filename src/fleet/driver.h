#ifndef BRIQ_FLEET_DRIVER_H_
#define BRIQ_FLEET_DRIVER_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "fleet/collector.h"
#include "serve/http_server.h"
#include "serve/statusz.h"
#include "util/status.h"

namespace briq::fleet {

/// What the driver does when a worker dies badly (nonzero exit, killed by
/// a signal, or missed heartbeats).
enum class OnWorkerFailure {
  /// Fail fast: stop the remaining workers and return an error.
  kFail,
  /// Re-exec the worker over its shard range (its fresh cumulative
  /// snapshot replaces the dead incarnation's in the merge), up to
  /// max_restarts times per slot; past that, fail fast.
  kRestart,
};

struct FleetOptions {
  /// Path to the worker executable (briq_tool; typically /proc/self/exe).
  std::string worker_binary;
  /// "align" (align --stream over each range) or "train" (per-range
  /// models: worker K writes <model_out>.w<K>).
  std::string mode = "align";
  /// briq-shard-v1 corpus directory and stem to partition.
  std::string corpus_dir;
  std::string stem = "corpus";
  int num_workers = 2;
  /// --threads forwarded to every worker (0 = worker default).
  int worker_threads = 0;
  OnWorkerFailure on_failure = OnWorkerFailure::kFail;
  /// Per-slot restart budget under OnWorkerFailure::kRestart.
  int max_restarts = 2;
  /// Worker heartbeat cadence; silence past 2x flags the worker.
  double heartbeat_seconds = 0.5;
  /// Cadence of the merged JSONL records and worker flush interval.
  double metrics_interval_seconds = 0.5;
  /// Merged fleet JSONL sink (one record per interval + start/final);
  /// empty disables the file (the HTTP endpoints still serve).
  std::string metrics_out;
  /// Fleet observability endpoint port (0 = ephemeral).
  uint16_t http_port = 0;
  /// Keep /metrics + /statusz up this long after the fleet finishes
  /// (GET /quitquitquit ends the linger early).
  double serve_linger_seconds = 0.0;
  /// align mode: --model forwarded to workers (skips in-process training).
  std::string model;
  /// train mode: per-worker model output prefix (required).
  std::string model_out;
  /// Test/throttle knob forwarded to align workers.
  int sleep_per_doc_ms = 0;
  /// SIGTERM-to-SIGKILL escalation budget during drains.
  double shutdown_grace_seconds = 5.0;
};

/// The fleet supervisor (DESIGN.md §5j): partitions a sharded corpus into
/// contiguous shard ranges, fork/execs one briq_tool worker per range, and
/// becomes the fleet's single observability endpoint — a Collector merges
/// the workers' pushed snapshots, an HTTP server re-exports them
/// (fleet-wide /metrics with worker labels, /statusz with a fleet table,
/// /healthz quorum), and a merged JSONL flush mirrors the single-process
/// flusher's record stream. Worker death is detected both ways (process
/// exit via waitpid, wedged-but-alive via missed heartbeats) and handled
/// per OnWorkerFailure. SIGTERM/SIGINT drain gracefully: workers get
/// SIGTERM, the collector drains their final frames, the final merged
/// record is written.
class FleetDriver {
 public:
  explicit FleetDriver(FleetOptions options);

  /// Runs the fleet to completion (blocking). OK when every range
  /// finished; an error when a worker failed under kFail (or exhausted
  /// its restart budget under kRestart).
  util::Status Run();

 private:
  enum class SlotState { kRunning, kDone, kFailed, kStopped };

  struct Slot {
    size_t shard_begin = 0;
    size_t shard_end = 0;
    pid_t pid = -1;
    SlotState state = SlotState::kRunning;
    int restarts = 0;
    /// Heartbeat-miss already acted on for the current incarnation (keeps
    /// the supervisor from re-killing while the exit is still unreaped).
    bool hb_killed = false;
  };

  std::vector<std::string> WorkerArgs(int slot_index) const;
  util::Status SpawnWorker(int slot_index);
  /// waitpid(WNOHANG) sweep; routes bad exits into HandleFailure.
  void ReapExits();
  /// Flags running slots whose frames went silent for 2 heartbeats.
  void CheckHeartbeats();
  void HandleFailure(int slot_index, const std::string& reason);
  /// SIGTERMs every running worker and arms the SIGKILL escalation.
  void BeginDrain(const std::string& reason);
  void WriteFleetRecord(const char* trigger);
  std::vector<serve::FleetWorkerRow> FleetRows() const;
  /// (healthy, total): done or running-with-recent-frames slots count as
  /// healthy.
  std::pair<size_t, size_t> HealthyCount() const;
  std::string RangeText(const Slot& slot) const;
  size_t RunningCount() const;

  const FleetOptions options_;
  const char* docs_counter_ = "briq.stream.documents";

  std::unique_ptr<Collector> collector_;
  std::unique_ptr<serve::HttpServer> server_;
  std::atomic<bool> quit_{false};

  mutable std::mutex slots_mu_;
  std::vector<Slot> slots_;

  bool draining_ = false;
  bool failed_ = false;
  std::string failure_;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::ofstream metrics_out_;
  size_t flush_index_ = 0;
  std::chrono::steady_clock::time_point start_time_{};
  std::chrono::steady_clock::time_point last_record_time_{};
};

}  // namespace briq::fleet

#endif  // BRIQ_FLEET_DRIVER_H_
