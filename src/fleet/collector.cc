#include "fleet/collector.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <vector>

#include "util/framing.h"
#include "util/json.h"
#include "util/logging.h"

namespace briq::fleet {

namespace {

/// One recv's worth of frame bytes. Snapshots are a few KB; a full frame
/// larger than this simply arrives over multiple reads.
constexpr size_t kRecvChunkBytes = 64 * 1024;

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Collector::Connection {
  util::ClientSocket socket;
  util::FrameReader reader;
};

Collector::Collector(CollectorOptions options) : options_(options) {}

Collector::~Collector() { Stop(); }

util::Status Collector::Start() {
  if (running_.load()) {
    return util::Status::FailedPrecondition("collector already started");
  }
  util::Result<util::TcpListener> listener =
      util::TcpListener::Listen(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::make_unique<util::TcpListener>(std::move(listener).value());
  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return util::Status::OK();
}

void Collector::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

uint16_t Collector::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

void Collector::Loop() {
  std::vector<Connection> connections;
  while (!stop_.load()) {
    const int fd = listener_->AcceptOnce(options_.poll_seconds);
    if (fd >= 0) {
      connections.push_back(Connection{util::ClientSocket(fd), {}});
    }
    for (size_t i = 0; i < connections.size();) {
      Connection& conn = connections[i];
      bool drop = false;
      // Zero-timeout poll so one silent connection never delays the rest.
      pollfd pfd{};
      pfd.fd = conn.socket.fd();
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, 0);
      if (ready > 0) {
        char buf[kRecvChunkBytes];
        const ssize_t n = ::recv(conn.socket.fd(), buf, sizeof(buf), 0);
        if (n > 0) {
          conn.reader.Append(buf, static_cast<size_t>(n));
          while (true) {
            util::Result<std::optional<std::string>> next = conn.reader.Next();
            if (!next.ok()) {
              // Desynchronized length prefix: this stream is unreadable
              // from here on, but only this stream — drop it, count it,
              // keep collecting from everyone else.
              frame_errors_.fetch_add(1);
              BRIQ_LOG(Warning)
                  << "fleet collector: dropping connection: "
                  << next.status().ToString();
              drop = true;
              break;
            }
            if (!next->has_value()) break;
            if (!HandleFrame(**next)) frame_errors_.fetch_add(1);
          }
        } else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                              errno != EINTR)) {
          // EOF (or a dead peer). A torn trailing frame means the worker
          // died mid-send; the complete frames before it already merged.
          if (n == 0 && conn.reader.pending_bytes() > 0) {
            frame_errors_.fetch_add(1);
            BRIQ_LOG(Warning) << "fleet collector: connection closed "
                              << "mid-frame (" << conn.reader.pending_bytes()
                              << " bytes pending)";
          }
          drop = true;
        }
      }
      if (drop) {
        connections.erase(connections.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
    open_connections_.store(connections.size());
  }
  connections.clear();
  open_connections_.store(0);
}

bool Collector::HandleFrame(const std::string& payload) {
  util::Result<util::Json> parsed = util::Json::Parse(payload);
  if (!parsed.ok() || !parsed->is_object() || !parsed->Has("type") ||
      !parsed->Has("worker") || !parsed->at("worker").is_number()) {
    BRIQ_LOG(Warning) << "fleet collector: malformed frame payload";
    return false;
  }
  const std::string& type = parsed->Get("type", util::Json("")).AsString();
  const int worker = parsed->at("worker").AsInt();
  const uint64_t docs =
      parsed->Has("docs_total") && parsed->at("docs_total").is_number()
          ? static_cast<uint64_t>(parsed->at("docs_total").AsDouble())
          : 0;
  const double ts =
      parsed->Has("ts_monotonic_sec") &&
              parsed->at("ts_monotonic_sec").is_number()
          ? parsed->at("ts_monotonic_sec").AsDouble()
          : -1.0;

  if (type == "snapshot") {
    if (!parsed->Has("snapshot")) {
      BRIQ_LOG(Warning) << "fleet collector: snapshot frame without snapshot";
      return false;
    }
    util::Result<obs::MetricsSnapshot> snapshot =
        obs::MetricsSnapshotFromJson(parsed->at("snapshot"));
    if (!snapshot.ok()) {
      BRIQ_LOG(Warning) << "fleet collector: " << snapshot.status().ToString();
      return false;
    }
    obs::MetricsSnapshot value = std::move(snapshot).value();
    value.capture_unix_seconds = UnixSecondsNow();
    merge_.Update(worker, std::move(value));
  } else if (type != "heartbeat") {
    BRIQ_LOG(Warning) << "fleet collector: unknown frame type '" << type
                      << "'";
    return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  WorkerState& state = workers_[worker];
  state.ever_reported = true;
  state.last_frame = std::chrono::steady_clock::now();
  if (type == "snapshot") ++state.snapshots;
  if (docs >= state.docs_total) state.docs_total = docs;
  if (ts >= 0.0) {
    if (state.last_rate_ts >= 0.0 && ts > state.last_rate_ts &&
        docs >= state.last_rate_docs) {
      state.docs_per_sec = static_cast<double>(docs - state.last_rate_docs) /
                           (ts - state.last_rate_ts);
    }
    if (ts < state.last_rate_ts) {
      // Restarted worker: its monotonic clock began again. Reseed.
      state.docs_per_sec = 0.0;
    }
    state.last_rate_ts = ts;
    state.last_rate_docs = docs;
  }
  frames_.fetch_add(1);
  return true;
}

WorkerTelemetry Collector::TelemetryLocked(
    int worker_id, const WorkerState& state,
    std::chrono::steady_clock::time_point now) const {
  WorkerTelemetry telemetry;
  telemetry.worker_id = worker_id;
  telemetry.ever_reported = state.ever_reported;
  telemetry.docs_total = state.docs_total;
  telemetry.docs_per_sec = state.docs_per_sec;
  telemetry.snapshots = state.snapshots;
  if (state.ever_reported) {
    telemetry.last_frame_age_seconds =
        std::chrono::duration<double>(now - state.last_frame).count();
    telemetry.missed_heartbeat =
        options_.heartbeat_seconds > 0.0 &&
        telemetry.last_frame_age_seconds > 2.0 * options_.heartbeat_seconds;
  }
  return telemetry;
}

std::vector<WorkerTelemetry> Collector::Workers() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerTelemetry> out;
  out.reserve(workers_.size());
  for (const auto& [worker_id, state] : workers_) {
    out.push_back(TelemetryLocked(worker_id, state, now));
  }
  return out;
}

std::optional<WorkerTelemetry> Collector::Worker(int worker_id) const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) return std::nullopt;
  return TelemetryLocked(worker_id, it->second, now);
}

void Collector::ResetWorkerLiveness(int worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) return;
  it->second.last_frame = std::chrono::steady_clock::now();
  it->second.last_rate_ts = -1.0;
  it->second.last_rate_docs = 0;
  it->second.docs_per_sec = 0.0;
}

bool Collector::WaitForDrain(double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (open_connections_.load() > 0) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

}  // namespace briq::fleet
