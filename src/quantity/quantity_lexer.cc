#include "quantity/quantity_lexer.h"

#include <array>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace briq::quantity {

namespace {

// ---------------------------------------------------------------------------
// Char classes. One table lookup per byte keeps the scanner single-pass and
// branch-light (the NumericLiteralParser idiom).
// ---------------------------------------------------------------------------

enum : uint8_t {
  kDigit = 1 << 0,
  kSep = 1 << 1,    // '.' ','
  kSign = 1 << 2,   // '+' '-'
  kExp = 1 << 3,    // 'e' 'E'
  kSpace = 1 << 4,  // ' '
};

constexpr std::array<uint8_t, 256> BuildCharClasses() {
  std::array<uint8_t, 256> t{};
  for (int c = '0'; c <= '9'; ++c) t[c] |= kDigit;
  t[static_cast<unsigned char>('.')] |= kSep;
  t[static_cast<unsigned char>(',')] |= kSep;
  t[static_cast<unsigned char>('+')] |= kSign;
  t[static_cast<unsigned char>('-')] |= kSign;
  t[static_cast<unsigned char>('e')] |= kExp;
  t[static_cast<unsigned char>('E')] |= kExp;
  t[static_cast<unsigned char>(' ')] |= kSpace;
  return t;
}

constexpr std::array<uint8_t, 256> kClass = BuildCharClasses();

inline bool Is(uint8_t cls, char c) {
  return (kClass[static_cast<unsigned char>(c)] & cls) != 0;
}
inline bool IsAt(uint8_t cls, std::string_view s, size_t i) {
  return i < s.size() && Is(cls, s[i]);
}

// Bounded byte-sequence match: never reads past the end of `s`, so the
// multi-byte operators below are safe against truncated UTF-8.
inline bool MatchSeq(std::string_view s, size_t pos, std::string_view seq) {
  return pos <= s.size() && s.size() - pos >= seq.size() &&
         s.compare(pos, seq.size(), seq) == 0;
}

constexpr std::string_view kEnDash = "\xE2\x80\x93";        // –
constexpr std::string_view kEmDash = "\xE2\x80\x94";        // —
constexpr std::string_view kMinusSign = "\xE2\x88\x92";     // − U+2212
constexpr std::string_view kPlusMinusSym = "\xC2\xB1";      // ±
constexpr std::string_view kTimesSym = "\xC3\x97";          // ×

struct Vulgar {
  std::string_view seq;
  int num;
  int den;
};

constexpr Vulgar kVulgar[] = {
    {"\xC2\xBC", 1, 4},      // ¼
    {"\xC2\xBD", 1, 2},      // ½
    {"\xC2\xBE", 3, 4},      // ¾
    {"\xE2\x85\x93", 1, 3},  // ⅓
    {"\xE2\x85\x94", 2, 3},  // ⅔
    {"\xE2\x85\x9B", 1, 8},  // ⅛
    {"\xE2\x85\x9C", 3, 8},  // ⅜
    {"\xE2\x85\x9D", 5, 8},  // ⅝
    {"\xE2\x85\x9E", 7, 8},  // ⅞
};

const Vulgar* MatchVulgar(std::string_view s, size_t pos) {
  for (const Vulgar& v : kVulgar) {
    if (MatchSeq(s, pos, v.seq)) return &v;
  }
  return nullptr;
}

// Surface precision of a fraction: decimal places of its exact expansion
// for power-of-two denominators, 2 otherwise.
int FractionPrecision(int den) {
  switch (den) {
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    case 16:
      return 4;
    default:
      return 2;
  }
}

double StrtodStr(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

// ---------------------------------------------------------------------------
// Locale disambiguation on an isolated digits-and-separators token.
// ---------------------------------------------------------------------------

// Splits on `sep`, requiring every field to be pure digits.
bool SplitGroups(std::string_view s, char sep, std::vector<std::string>* out) {
  out->clear();
  for (auto& part : util::Split(s, sep)) {
    if (!util::IsDigits(part)) return false;
    out->push_back(std::move(part));
  }
  return out->size() >= 1;
}

std::string JoinGroups(const std::vector<std::string>& groups) {
  std::string digits;
  for (const auto& g : groups) digits += g;
  return digits;
}

// True if groups after the first look like grouping separators: standard
// (all length 3) or Indian (middle groups length 2, final group length 3).
bool LooksLikeGrouping(const std::vector<std::string>& groups) {
  if (groups.size() < 2) return false;
  if (groups[0].empty() || groups[0].size() > 3) return false;
  bool all3 = true;
  for (size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].size() != 3) all3 = false;
  }
  if (all3) return true;
  // Indian system: 2,29,866 / 1,23,45,678 — interior groups of 2, last of 3.
  for (size_t i = 1; i + 1 < groups.size(); ++i) {
    if (groups[i].size() != 2) return false;
  }
  return groups.back().size() == 3;
}

// Value + the cleaned "1234.56"-style digit string (kept so exponents can be
// re-assembled into one strtod call and stay correctly rounded).
struct SimpleNum {
  double value = 0.0;
  int precision = 0;
  bool had_separators = false;
  std::string digits;
};

util::Result<SimpleNum> GroupedInteger(std::string_view token, char sep) {
  std::vector<std::string> groups;
  if (!SplitGroups(token, sep, &groups) || !LooksLikeGrouping(groups)) {
    return util::Status::ParseError("malformed grouping: " + std::string(token));
  }
  SimpleNum lit;
  lit.digits = JoinGroups(groups);
  lit.value = StrtodStr(lit.digits);
  lit.had_separators = true;
  return lit;
}

util::Result<SimpleNum> DecimalFromParts(std::string_view int_digits,
                                         std::string_view frac) {
  SimpleNum lit;
  lit.digits = std::string(int_digits) + "." + std::string(frac);
  lit.value = StrtodStr(lit.digits);
  lit.precision = static_cast<int>(frac.size());
  return lit;
}

// Grouped integer part + decimal fraction: "1,234.56" (group_sep=',',
// dec_sep='.') or "1.234,56" (mirrored).
util::Result<SimpleNum> GroupedDecimal(std::string_view token, char group_sep,
                                       char dec_sep) {
  size_t dec = token.rfind(dec_sep);
  std::string_view int_part = token.substr(0, dec);
  std::string_view frac = token.substr(dec + 1);
  if (!util::IsDigits(frac) ||
      int_part.find(dec_sep) != std::string_view::npos) {
    return util::Status::ParseError("malformed number: " + std::string(token));
  }
  std::vector<std::string> groups;
  if (!SplitGroups(int_part, group_sep, &groups) ||
      !LooksLikeGrouping(groups)) {
    return util::Status::ParseError("malformed grouping: " +
                                    std::string(token));
  }
  auto lit = DecimalFromParts(JoinGroups(groups), frac);
  lit->had_separators = true;
  return lit;
}

// The historical heuristics (ParseNumericLiteral's contract): preserved
// bit-for-bit — the legacy corpora and parity tests ride on this branch.
util::Result<SimpleNum> DisambiguateAuto(std::string_view token,
                                         bool has_comma, bool has_dot) {
  if (has_comma && has_dot) {
    // US style: commas group, single dot is the decimal point.
    return GroupedDecimal(token, ',', '.');
  }

  if (has_comma) {
    std::vector<std::string> groups;
    if (!SplitGroups(token, ',', &groups)) {
      return util::Status::ParseError("malformed number: " +
                                      std::string(token));
    }
    // Decimal-comma heuristics: leading "0" ("0,877") or a final group whose
    // length is not 3 ("3,26"); otherwise grouping separators.
    if (groups.size() == 2 && (groups[0] == "0" || groups[1].size() != 3)) {
      return DecimalFromParts(groups[0], groups[1]);
    }
    if (!LooksLikeGrouping(groups)) {
      return util::Status::ParseError("ambiguous comma number: " +
                                      std::string(token));
    }
    SimpleNum lit;
    lit.digits = JoinGroups(groups);
    lit.value = StrtodStr(lit.digits);
    lit.had_separators = true;
    return lit;
  }

  // Dot(s) only.
  std::vector<std::string> groups;
  if (!SplitGroups(token, '.', &groups)) {
    return util::Status::ParseError("malformed number: " + std::string(token));
  }
  if (groups.size() == 2) {
    // Single dot: decimal point ("3.26"). European grouping with a single
    // separator ("1.234") is indistinguishable; we follow the US reading,
    // which matches the paper's corpora.
    return DecimalFromParts(groups[0], groups[1]);
  }
  // Multiple dots: European grouping ("1.234.567") if shaped like grouping,
  // otherwise a section-heading-style identifier ("1.2.3").
  if (LooksLikeGrouping(groups)) {
    SimpleNum lit;
    lit.digits = JoinGroups(groups);
    lit.value = StrtodStr(lit.digits);
    lit.had_separators = true;
    return lit;
  }
  return util::Status::ParseError("identifier-like number: " +
                                  std::string(token));
}

// Strict US: comma groups, dot decimal, no heuristics.
util::Result<SimpleNum> DisambiguateUS(std::string_view token, bool has_comma,
                                       bool has_dot) {
  if (has_comma && has_dot) return GroupedDecimal(token, ',', '.');
  if (has_comma) return GroupedInteger(token, ',');
  std::vector<std::string> groups;
  if (!SplitGroups(token, '.', &groups) || groups.size() != 2) {
    return util::Status::ParseError("malformed US number: " +
                                    std::string(token));
  }
  return DecimalFromParts(groups[0], groups[1]);
}

// Strict European: dot groups, comma decimal.
util::Result<SimpleNum> DisambiguateEuropean(std::string_view token,
                                             bool has_comma, bool has_dot) {
  if (has_comma && has_dot) return GroupedDecimal(token, '.', ',');
  if (has_comma) {
    std::vector<std::string> groups;
    if (!SplitGroups(token, ',', &groups) || groups.size() != 2) {
      return util::Status::ParseError("malformed European number: " +
                                      std::string(token));
    }
    return DecimalFromParts(groups[0], groups[1]);
  }
  return GroupedInteger(token, '.');
}

util::Result<SimpleNum> DisambiguateImpl(std::string_view token,
                                         LocaleHint hint) {
  if (token.empty()) {
    return util::Status::ParseError("empty numeric token");
  }
  const bool has_comma = token.find(',') != std::string_view::npos;
  const bool has_dot = token.find('.') != std::string_view::npos;
  if (!has_comma && !has_dot) {
    if (!util::IsDigits(token)) {
      return util::Status::ParseError("not a number: " + std::string(token));
    }
    SimpleNum lit;
    lit.digits = std::string(token);
    lit.value = StrtodStr(lit.digits);
    return lit;
  }
  switch (hint) {
    case LocaleHint::kUS:
      return DisambiguateUS(token, has_comma, has_dot);
    case LocaleHint::kEuropean:
      return DisambiguateEuropean(token, has_comma, has_dot);
    case LocaleHint::kAuto:
      break;
  }
  return DisambiguateAuto(token, has_comma, has_dot);
}

// Scans the digits-and-separators span starting at a digit; a separator is
// consumed only when another digit follows, so a sentence-final "." stays
// outside the number.
size_t ScanSimple(std::string_view s, size_t pos) {
  size_t p = pos;
  while (p < s.size()) {
    if (Is(kDigit, s[p])) {
      ++p;
      continue;
    }
    if (Is(kSep, s[p]) && IsAt(kDigit, s, p + 1)) {
      ++p;
      continue;
    }
    break;
  }
  return p;
}

// Lexes a plain unsigned simple number at `pos` (no extended forms); used
// for the second operand of ranges and plus-minus.
util::Result<SimpleNum> LexOperand(std::string_view s, size_t pos,
                                   LocaleHint hint, size_t* end) {
  if (!IsAt(kDigit, s, pos)) {
    return util::Status::ParseError("no number at position");
  }
  *end = ScanSimple(s, pos);
  return DisambiguateImpl(s.substr(pos, *end - pos), hint);
}

// "3.2e6" / "1e-3" e-notation, and "4×10^5" / "4 x 10^5" engineering form.
// On match, re-assembles mantissa digits + exponent into one strtod call so
// the value is correctly rounded (identical to lexing the whole literal).
size_t TryExponent(std::string_view s, size_t p, const SimpleNum& mantissa,
                   LexedNumber* out) {
  // e-notation, glued to the mantissa.
  if (IsAt(kExp, s, p)) {
    size_t q = p + 1;
    if (IsAt(kSign, s, q)) ++q;
    size_t dend = q;
    while (IsAt(kDigit, s, dend)) ++dend;
    const bool word_tail =
        dend < s.size() && std::isalpha(static_cast<unsigned char>(s[dend]));
    if (dend > q && dend - q <= 4 && !word_tail) {
      std::string exp(s.substr(p + 1, dend - (p + 1)));
      out->value = StrtodStr(mantissa.digits + "e" + exp);
      out->scientific = true;
      return dend;
    }
    return p;
  }

  // "×10^k" (also ASCII "x"/"*"), with at most one space on each side.
  size_t q = p;
  if (IsAt(kSpace, s, q)) ++q;
  size_t after;
  if (MatchSeq(s, q, kTimesSym)) {
    after = q + kTimesSym.size();
  } else if (q < s.size() && (s[q] == 'x' || s[q] == 'X' || s[q] == '*')) {
    after = q + 1;
  } else {
    return p;
  }
  if (IsAt(kSpace, s, after)) ++after;
  if (!MatchSeq(s, after, "10^")) return p;
  after += 3;
  size_t e0 = after;
  if (IsAt(kSign, s, after)) ++after;
  size_t dend = after;
  while (IsAt(kDigit, s, dend)) ++dend;
  if (dend == after || dend - after > 4) return p;
  std::string exp(s.substr(e0, dend - e0));
  out->value = StrtodStr(mantissa.digits + "e" + exp);
  out->scientific = true;
  return dend;
}

// Restricted ASCII fraction denominators: the common cookbook set. Keeps
// "5/12"-style dates from reading as fractions.
bool AllowedDenominator(int den) {
  switch (den) {
    case 2:
    case 3:
    case 4:
    case 5:
    case 6:
    case 8:
    case 10:
    case 16:
      return true;
    default:
      return false;
  }
}

// Matches "N/D" at `pos` under the fraction rules (1-2 digit operands, no
// leading zeros, N < D, D in the allowed set, no further "/digit" chain).
bool MatchAsciiFraction(std::string_view s, size_t pos, int* num, int* den,
                        size_t* end) {
  size_t p = pos;
  size_t n0 = p;
  while (IsAt(kDigit, s, p) && p - n0 < 3) ++p;
  if (p == n0 || p - n0 > 2 || (s[n0] == '0' && p - n0 > 1)) return false;
  if (p >= s.size() || s[p] != '/') return false;
  const size_t slash = p;
  size_t d0 = ++p;
  while (IsAt(kDigit, s, p) && p - d0 < 3) ++p;
  if (p == d0 || p - d0 > 2 || s[d0] == '0') return false;
  if (p < s.size() && (s[p] == '/' || Is(kSep, s[p]))) return false;
  const int n = std::atoi(std::string(s.substr(n0, slash - n0)).c_str());
  const int d = std::atoi(std::string(s.substr(d0, p - d0)).c_str());
  if (n <= 0 || n >= d || !AllowedDenominator(d)) return false;
  *num = n;
  *den = d;
  *end = p;
  return true;
}

// Vulgar ("12½", "12 ½") and ASCII ("3/4", "2 3/4") fraction tails.
size_t TryFraction(std::string_view s, size_t p, size_t num_begin,
                   LexedNumber* out) {
  if (out->precision != 0) return p;

  // Glued or space-separated vulgar fraction => mixed number.
  for (size_t q : {p, p + 1}) {
    if (q == p + 1 && !IsAt(kSpace, s, p)) continue;
    if (const Vulgar* v = MatchVulgar(s, q)) {
      out->value += static_cast<double>(v->num) / v->den;
      out->precision = FractionPrecision(v->den);
      out->fraction = true;
      return q + v->seq.size();
    }
  }

  // "2 3/4": mixed number with an ASCII fraction part.
  if (IsAt(kSpace, s, p)) {
    int num = 0, den = 0;
    size_t end = 0;
    if (MatchAsciiFraction(s, p + 1, &num, &den, &end)) {
      out->value += static_cast<double>(num) / den;
      out->precision = FractionPrecision(den);
      out->fraction = true;
      return end;
    }
  }

  // "3/4": the number we just lexed is itself the numerator.
  if (p < s.size() && s[p] == '/' && !out->had_separators) {
    int num = 0, den = 0;
    size_t end = 0;
    if (MatchAsciiFraction(s, num_begin, &num, &den, &end)) {
      out->value = static_cast<double>(num) / den;
      out->precision = FractionPrecision(den);
      out->fraction = true;
      return end;
    }
  }
  return p;
}

// "5 ± 1" / "5 +/- 1": center with symmetric error -> [v-e, v+e].
size_t TryPlusMinus(std::string_view s, size_t p, const LexOptions& options,
                    LexedNumber* out) {
  size_t q = p;
  if (IsAt(kSpace, s, q)) ++q;
  size_t after;
  if (MatchSeq(s, q, kPlusMinusSym)) {
    after = q + kPlusMinusSym.size();
  } else if (MatchSeq(s, q, "+/-")) {
    after = q + 3;
  } else {
    return p;
  }
  if (IsAt(kSpace, s, after)) ++after;
  size_t end = 0;
  auto err = LexOperand(s, after, options.locale, &end);
  if (!err.ok() || err->value < 0) return p;
  out->value_lo = out->value - err->value;
  out->value_hi = out->value + err->value;
  out->is_interval = true;
  out->plus_minus = true;
  return end;
}

// "3–5" / "3 - 5" ranges (en dash, em dash, or hyphen). The second operand
// must be strictly larger, so "2020-01"-style identifiers don't match.
size_t TryRange(std::string_view s, size_t p, const LexOptions& options,
                LexedNumber* out) {
  size_t q = p;
  if (IsAt(kSpace, s, q)) ++q;
  size_t after;
  if (MatchSeq(s, q, kEnDash) || MatchSeq(s, q, kEmDash)) {
    after = q + kEnDash.size();
  } else if (q < s.size() && s[q] == '-') {
    after = q + 1;
  } else {
    return p;
  }
  if (IsAt(kSpace, s, after)) ++after;
  size_t end = 0;
  auto hi = LexOperand(s, after, options.locale, &end);
  if (!hi.ok() || hi->value <= out->value) return p;
  out->value_lo = out->value;
  out->value_hi = hi->value;
  out->value = (out->value_lo + out->value_hi) / 2.0;
  out->precision = std::max(out->precision, hi->precision);
  out->had_separators = out->had_separators || hi->had_separators;
  out->is_interval = true;
  return end;
}

}  // namespace

double Pow10(int exp) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "1e%d", exp);
  return std::strtod(buf, nullptr);
}

util::Result<LexedNumber> DisambiguateSeparators(std::string_view token,
                                                 LocaleHint hint) {
  auto r = DisambiguateImpl(token, hint);
  if (!r.ok()) return r.status();
  LexedNumber out;
  out.value = out.value_lo = out.value_hi = r->value;
  out.precision = r->precision;
  out.had_separators = r->had_separators;
  out.end = token.size();
  return out;
}

util::Result<LexedNumber> LexNumber(std::string_view s, size_t pos,
                                    const LexOptions& options) {
  if (pos >= s.size()) {
    return util::Status::ParseError("empty numeric input");
  }
  LexedNumber out;
  out.begin = pos;
  size_t p = pos;

  // Optional sign (ASCII or U+2212 minus), glued to the number.
  bool negative = false;
  bool signed_form = false;
  if (Is(kSign, s[p])) {
    negative = s[p] == '-';
    signed_form = true;
    ++p;
  } else if (MatchSeq(s, p, kMinusSign)) {
    negative = true;
    signed_form = true;
    p += kMinusSign.size();
  }

  // Standalone vulgar fraction: "½", "-¾".
  if (options.fractions) {
    if (const Vulgar* v = MatchVulgar(s, p)) {
      out.value = static_cast<double>(v->num) / v->den;
      out.precision = FractionPrecision(v->den);
      out.fraction = true;
      out.negative = negative;
      if (negative) out.value = -out.value;
      out.value_lo = out.value_hi = out.value;
      out.end = p + v->seq.size();
      return out;
    }
  }

  if (!IsAt(kDigit, s, p)) {
    return util::Status::ParseError(signed_form ? "dangling sign"
                                                : "no number at position");
  }

  const size_t num_begin = p;
  const size_t tok_end = ScanSimple(s, p);
  auto first = DisambiguateImpl(s.substr(p, tok_end - p), options.locale);
  if (!first.ok()) return first.status();
  out.value = first->value;
  out.precision = first->precision;
  out.had_separators = first->had_separators;
  p = tok_end;

  if (options.scientific) p = TryExponent(s, p, *first, &out);
  if (options.fractions && !out.scientific) {
    p = TryFraction(s, p, num_begin, &out);
  }
  if (options.ranges) {
    size_t q = TryPlusMinus(s, p, options, &out);
    if (q == p) q = TryRange(s, p, options, &out);
    p = q;
  }

  out.negative = negative;
  if (negative) {
    out.value = -out.value;
    if (out.is_interval) {
      const double lo = -out.value_hi;
      out.value_hi = -out.value_lo;
      out.value_lo = lo;
    }
  }
  if (!out.is_interval) {
    out.value_lo = out.value_hi = out.value;
  }
  out.end = p;
  return out;
}

}  // namespace briq::quantity
