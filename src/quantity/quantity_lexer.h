#ifndef BRIQ_QUANTITY_QUANTITY_LEXER_H_
#define BRIQ_QUANTITY_QUANTITY_LEXER_H_

#include <cstddef>
#include <string_view>

#include "util/result.h"

namespace briq::quantity {

/// How thousand/decimal separators are resolved. kAuto applies the
/// heuristics documented on ParseNumericLiteral (DESIGN.md §5k); kUS forces
/// comma-groups/dot-decimal; kEuropean forces dot-groups/comma-decimal.
enum class LocaleHint {
  kAuto = 0,
  kUS,
  kEuropean,
};

/// Feature switches for the lexer. The defaults enable everything; the
/// legacy ParseNumericLiteral wrapper runs with everything off so its
/// accepted language is exactly the historical one.
struct LexOptions {
  bool scientific = true;  // 3.2e6, 4×10^5
  bool fractions = true;   // ½, 3/4, 12 ½
  bool ranges = true;      // 3–5, 5 ± 1
  LocaleHint locale = LocaleHint::kAuto;
};

/// A number lexed from a raw character stream. Point values have
/// value_lo == value_hi == value; ranges ("3–5") and plus-minus forms
/// ("5 ± 1") carry the interval endpoints with `value` at the midpoint
/// (ranges) or the center (±).
struct LexedNumber {
  double value = 0.0;
  double value_lo = 0.0;
  double value_hi = 0.0;
  int precision = 0;          // digits after the decimal separator (mantissa)
  bool had_separators = false;
  bool is_interval = false;
  bool plus_minus = false;    // interval came from "±" / "+/-"
  bool fraction = false;      // a vulgar or ASCII fraction contributed
  bool scientific = false;    // an exponent contributed (e-notation or ×10^k)
  bool negative = false;
  size_t begin = 0;           // char range [begin, end) consumed from source
  size_t end = 0;
};

/// Lexes one number starting exactly at `s[pos]` (an optional sign, digit,
/// or vulgar-fraction byte must be there). Single pass over the bytes using
/// lookup-table char classes; multi-byte UTF-8 operators (×, –, ±, ½, ...)
/// are matched by bounded byte-sequence matchers and are safe against
/// truncated input. Returns ParseError if no number starts at `pos`.
util::Result<LexedNumber> LexNumber(std::string_view s, size_t pos = 0,
                                    const LexOptions& options = {});

/// The locale-disambiguation pass on an isolated digits-and-separators
/// token ("1,234.56", "2,29,866", "0,877", "1.234.567"). This is the exact
/// decision procedure ParseNumericLiteral has always used; the lexer calls
/// it on the separator-bearing span it scanned.
util::Result<LexedNumber> DisambiguateSeparators(std::string_view token,
                                                 LocaleHint hint);

/// Correctly-rounded power of ten (via strtod, not pow). Shared between the
/// lexer's exponent assembly and the corpus generator's ground truth so the
/// two always agree bit-for-bit.
double Pow10(int exp);

}  // namespace briq::quantity

#endif  // BRIQ_QUANTITY_QUANTITY_LEXER_H_
