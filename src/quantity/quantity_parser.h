#ifndef BRIQ_QUANTITY_QUANTITY_PARSER_H_
#define BRIQ_QUANTITY_QUANTITY_PARSER_H_

#include <optional>
#include <string_view>
#include <vector>

#include "quantity/quantity.h"
#include "quantity/quantity_lexer.h"

namespace briq::quantity {

/// Controls which non-informative numbers are filtered out of text
/// extraction (paper §II-A: "we eliminated date/time, headings, phone
/// numbers and references").
struct ExtractionOptions {
  bool filter_years = true;        // standalone 1900..2100 integers
  bool filter_times_dates = true;  // 10:30, 12/05/2014, "December 18"
  bool filter_identifiers = true;  // Win10, 2Q, [2]
  bool filter_phones = true;       // 555-123-4567
  bool filter_headings = true;     // "Section 1.1"
  bool spelled_numbers = true;     // "twenty pounds"
  /// CQE-grade surface forms via quantity::QuantityLexer: scientific
  /// notation, vulgar/ASCII fractions, ranges and plus-minus intervals.
  /// Off by default so legacy-corpus alignments stay bit-identical; the
  /// messy generator profiles turn it on through BriqConfig::extraction.
  bool extended_forms = false;
  /// Separator-locale hint for the lexer's disambiguation pass (only
  /// consulted when extended_forms is on).
  LocaleHint locale = LocaleHint::kAuto;
};

/// Extracts all quantity mentions from free-running text. Complex
/// quantities ("5 ± 1 km") are recognized first so they are not split into
/// multiple mentions; simple quantities (currency-prefixed, percent,
/// scale-suffixed, spelled-out) are extracted afterwards. Mentions carry
/// normalized values, units, precision, spans, and approximation indicators
/// inferred from nearby cue words.
std::vector<ParsedQuantity> ExtractQuantities(
    std::string_view txt, const ExtractionOptions& options = {});

/// Parses a table cell expected to hold (at most) one quantity, e.g.
/// "36900", "$232.8 Million", "$(9.49) Million" (negative), "12.7%",
/// "60 bps", "1,144,716", "--" (none). Returns nullopt when the cell does
/// not contain a usable quantity. `base_options` seeds the extraction
/// options (the cell-mode filters are applied on top), so callers can
/// enable extended_forms for cells too.
std::optional<ParsedQuantity> ParseCellQuantity(
    std::string_view cell, const ExtractionOptions& base_options = {});

/// Classifies the approximation cue conveyed by `word` ("about" ->
/// kApproximate, "exactly" -> kExact, "over" -> kLowerBound, ...); kNone if
/// the word is not a cue.
ApproxIndicator ApproxCue(std::string_view word);

}  // namespace briq::quantity

#endif  // BRIQ_QUANTITY_QUANTITY_PARSER_H_
