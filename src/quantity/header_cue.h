#ifndef BRIQ_QUANTITY_HEADER_CUE_H_
#define BRIQ_QUANTITY_HEADER_CUE_H_

#include <optional>
#include <string_view>

#include "quantity/unit.h"

namespace briq::quantity {

/// Unit/scale context extracted from a table header, footer, or caption.
/// "($ Millions)" yields unit=USD and scale=1e6; "Emission (g/km)" yields
/// unit=g/km; "Income gains (in Mio)" yields scale=1e6. Paper §III: "we also
/// attempt to extract information about the unit from each row and column
/// header, footer, and the caption."
struct HeaderCue {
  std::optional<UnitInfo> unit;
  double scale = 1.0;

  bool empty() const { return !unit.has_value() && scale == 1.0; }
};

/// Scans header/caption text for unit symbols/words and scale words.
HeaderCue ParseHeaderCue(std::string_view header_text);

}  // namespace briq::quantity

#endif  // BRIQ_QUANTITY_HEADER_CUE_H_
