#include "quantity/numeric_literal.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace briq::quantity {

namespace {

bool AllDigits(std::string_view s) { return util::IsDigits(s); }

// Splits on `sep`, requiring every field to be pure digits.
bool SplitGroups(std::string_view s, char sep, std::vector<std::string>* out) {
  out->clear();
  for (auto& part : util::Split(s, sep)) {
    if (!AllDigits(part)) return false;
    out->push_back(std::move(part));
  }
  return out->size() >= 1;
}

double JoinGroupsAsInteger(const std::vector<std::string>& groups) {
  std::string digits;
  for (const auto& g : groups) digits += g;
  return std::strtod(digits.c_str(), nullptr);
}

// True if groups after the first look like grouping separators: standard
// (all length 3) or Indian (middle groups length 2, final group length 3).
bool LooksLikeGrouping(const std::vector<std::string>& groups) {
  if (groups.size() < 2) return false;
  if (groups[0].empty() || groups[0].size() > 3) return false;
  bool all3 = true;
  for (size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].size() != 3) all3 = false;
  }
  if (all3) return true;
  // Indian system: 2,29,866 / 1,23,45,678 — interior groups of 2, last of 3.
  for (size_t i = 1; i + 1 < groups.size(); ++i) {
    if (groups[i].size() != 2) return false;
  }
  return groups.back().size() == 3;
}

}  // namespace

util::Result<NumericLiteral> ParseNumericLiteral(std::string_view token) {
  if (token.empty()) {
    return util::Status::ParseError("empty numeric token");
  }

  const bool has_comma = token.find(',') != std::string_view::npos;
  const bool has_dot = token.find('.') != std::string_view::npos;

  NumericLiteral lit;

  if (!has_comma && !has_dot) {
    if (!AllDigits(token)) {
      return util::Status::ParseError("not a number: " + std::string(token));
    }
    lit.value = std::strtod(std::string(token).c_str(), nullptr);
    return lit;
  }

  if (has_comma && has_dot) {
    // US style: commas group, single dot is the decimal point.
    size_t dot = token.rfind('.');
    std::string_view int_part = token.substr(0, dot);
    std::string_view frac = token.substr(dot + 1);
    if (!AllDigits(frac) || int_part.find('.') != std::string_view::npos) {
      return util::Status::ParseError("malformed number: " + std::string(token));
    }
    std::vector<std::string> groups;
    if (!SplitGroups(int_part, ',', &groups) || !LooksLikeGrouping(groups)) {
      return util::Status::ParseError("malformed grouping: " +
                                      std::string(token));
    }
    std::string digits;
    for (const auto& g : groups) digits += g;
    digits += '.';
    digits += frac;
    lit.value = std::strtod(digits.c_str(), nullptr);
    lit.precision = static_cast<int>(frac.size());
    lit.had_separators = true;
    return lit;
  }

  if (has_comma) {
    std::vector<std::string> groups;
    if (!SplitGroups(token, ',', &groups)) {
      return util::Status::ParseError("malformed number: " + std::string(token));
    }
    // Decimal-comma heuristics: leading "0" ("0,877") or a final group whose
    // length is not 3 ("3,26"); otherwise grouping separators.
    if (groups.size() == 2 &&
        (groups[0] == "0" || groups[1].size() != 3)) {
      std::string digits = groups[0] + "." + groups[1];
      lit.value = std::strtod(digits.c_str(), nullptr);
      lit.precision = static_cast<int>(groups[1].size());
      return lit;
    }
    if (!LooksLikeGrouping(groups)) {
      return util::Status::ParseError("ambiguous comma number: " +
                                      std::string(token));
    }
    lit.value = JoinGroupsAsInteger(groups);
    lit.had_separators = true;
    return lit;
  }

  // Dot(s) only.
  std::vector<std::string> groups;
  if (!SplitGroups(token, '.', &groups)) {
    return util::Status::ParseError("malformed number: " + std::string(token));
  }
  if (groups.size() == 2) {
    // Single dot: decimal point ("3.26"). European grouping with a single
    // separator ("1.234") is indistinguishable; we follow the US reading,
    // which matches the paper's corpora.
    std::string digits = groups[0] + "." + groups[1];
    lit.value = std::strtod(digits.c_str(), nullptr);
    lit.precision = static_cast<int>(groups[1].size());
    return lit;
  }
  // Multiple dots: European grouping ("1.234.567") if shaped like grouping,
  // otherwise a section-heading-style identifier ("1.2.3").
  if (LooksLikeGrouping(groups)) {
    lit.value = JoinGroupsAsInteger(groups);
    lit.had_separators = true;
    return lit;
  }
  return util::Status::ParseError("identifier-like number: " +
                                  std::string(token));
}

}  // namespace briq::quantity
