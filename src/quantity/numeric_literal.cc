#include "quantity/numeric_literal.h"

#include "quantity/quantity_lexer.h"

namespace briq::quantity {

// Thin wrapper over the lexer's locale-disambiguation pass: the accepted
// language and values are exactly the historical ones (the heuristics live
// in DisambiguateSeparators' kAuto branch, which this delegates to).
util::Result<NumericLiteral> ParseNumericLiteral(std::string_view token) {
  auto r = DisambiguateSeparators(token, LocaleHint::kAuto);
  if (!r.ok()) return r.status();
  NumericLiteral lit;
  lit.value = r->value;
  lit.precision = r->precision;
  lit.had_separators = r->had_separators;
  return lit;
}

}  // namespace briq::quantity
