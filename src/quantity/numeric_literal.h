#ifndef BRIQ_QUANTITY_NUMERIC_LITERAL_H_
#define BRIQ_QUANTITY_NUMERIC_LITERAL_H_

#include <string_view>

#include "util/result.h"

namespace briq::quantity {

/// A parsed numeric literal: value plus surface precision (digits after the
/// decimal separator).
struct NumericLiteral {
  double value = 0.0;
  int precision = 0;
  /// True when the literal used grouping separators ("1,234,567").
  bool had_separators = false;
};

/// Parses a numeric token as produced by the tokenizer. Handles:
///  - plain integers/decimals: "890", "3.26"
///  - US grouping: "1,234.56", "1,144,716"
///  - Indian grouping: "2,29,866"
///  - European decimal comma: "0,877" (leading-zero heuristic) and "3,26"
///    (final group shorter than 3)
///  - European grouping: "1.234.567"
/// Returns ParseError for anything else.
util::Result<NumericLiteral> ParseNumericLiteral(std::string_view token);

}  // namespace briq::quantity

#endif  // BRIQ_QUANTITY_NUMERIC_LITERAL_H_
