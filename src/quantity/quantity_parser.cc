#include "quantity/quantity_parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "quantity/numeric_literal.h"
#include "quantity/quantity_lexer.h"
#include "text/number_words.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace briq::quantity {

namespace {

using text::Token;
using text::TokenKind;

bool Adjacent(const Token& a, const Token& b) {
  return a.span.end == b.span.begin;
}

bool IsMonthWord(std::string_view w) {
  static const auto& kMonths = *new std::unordered_set<std::string>{
      "january", "february", "march",     "april",   "may",      "june",
      "july",    "august",   "september", "october", "november", "december",
      "jan",     "feb",      "mar",       "apr",     "jun",      "jul",
      "aug",     "sep",      "sept",      "oct",     "nov",      "dec"};
  return kMonths.count(util::ToLower(w)) > 0;
}

bool IsHeadingWord(std::string_view w) {
  static const auto& kWords = *new std::unordered_set<std::string>{
      "section", "chapter", "figure", "fig", "table", "page", "appendix",
      "part", "item", "question", "step", "no"};
  return kWords.count(util::ToLower(w)) > 0;
}

// Scale suffixes that may be glued to the number ("37K") or follow it.
std::optional<double> AdjacentScaleSuffix(std::string_view w) {
  static const auto& kSuffixes = *new std::unordered_map<std::string, double>{
      {"k", 1e3}, {"m", 1e6}, {"mm", 1e6}, {"b", 1e9},
      {"bn", 1e9}, {"t", 1e12},
  };
  auto it = kSuffixes.find(util::ToLower(w));
  if (it == kSuffixes.end()) return std::nullopt;
  return it->second;
}

// Full scale words usable with a space ("3.26 billion", "70 Mio").
std::optional<double> SpacedScaleWord(std::string_view w) {
  static const auto& kWords = *new std::unordered_map<std::string, double>{
      {"thousand", 1e3}, {"thousands", 1e3}, {"million", 1e6},
      {"millions", 1e6}, {"mio", 1e6},       {"mln", 1e6},
      {"billion", 1e9},  {"billions", 1e9},  {"bn", 1e9},
      {"trillion", 1e12}, {"trillions", 1e12}, {"lakh", 1e5},
      {"crore", 1e7},
  };
  auto it = kWords.find(util::ToLower(w));
  if (it == kWords.end()) return std::nullopt;
  return it->second;
}

bool IsPlusMinus(const Token& t) {
  return t.textual == "\xC2\xB1";  // ±
}

// Multiplies the quantity's (scale-applied) value and interval endpoints by
// `factor`; the surface value stays untouched. For legacy point quantities
// the endpoints are 0 and remain 0, so the operation is bit-preserving.
void ScaleQuantity(ParsedQuantity* q, double factor) {
  q->value *= factor;
  q->value_lo *= factor;
  q->value_hi *= factor;
}

// Negates value, surface value, and interval endpoints (swapping lo/hi so
// the interval stays ordered).
void NegateQuantity(ParsedQuantity* q) {
  q->value = -q->value;
  q->unnormalized = -q->unnormalized;
  const double lo = -q->value_hi;
  q->value_hi = -q->value_lo;
  q->value_lo = lo;
}

// Folds a resolved unit into the quantity. Percent-family surfaces fold
// their factor into the value (bps -> percent hundredths), and so do the
// scaled currency forms ("4 M$" == "$4 million"); dimensioned physical
// units keep their canonical name and carry the base-unit factor instead.
void AssignUnit(ParsedQuantity* q, const UnitInfo& unit) {
  if (unit.category == UnitCategory::kPercent) {
    ScaleQuantity(q, unit.to_base);
    q->unit = "percent";
    q->unit_to_base = 1.0;
  } else if (unit.category == UnitCategory::kCurrency) {
    ScaleQuantity(q, unit.to_base);
    q->unit = unit.canonical;
    q->unit_to_base = 1.0;
  } else {
    q->unit = unit.canonical;
    q->unit_to_base = unit.to_base;
  }
  q->unit_category = unit.category;
}

}  // namespace

ApproxIndicator ApproxCue(std::string_view word) {
  static const auto& kCues =
      *new std::unordered_map<std::string, ApproxIndicator>{
          {"about", ApproxIndicator::kApproximate},
          {"around", ApproxIndicator::kApproximate},
          {"approximately", ApproxIndicator::kApproximate},
          {"approx", ApproxIndicator::kApproximate},
          {"nearly", ApproxIndicator::kApproximate},
          {"almost", ApproxIndicator::kApproximate},
          {"roughly", ApproxIndicator::kApproximate},
          {"ca", ApproxIndicator::kApproximate},
          {"circa", ApproxIndicator::kApproximate},
          {"some", ApproxIndicator::kApproximate},
          {"~", ApproxIndicator::kApproximate},
          {"exactly", ApproxIndicator::kExact},
          {"precisely", ApproxIndicator::kExact},
          {"over", ApproxIndicator::kLowerBound},
          {"above", ApproxIndicator::kLowerBound},
          {"exceeding", ApproxIndicator::kLowerBound},
          {"under", ApproxIndicator::kUpperBound},
          {"below", ApproxIndicator::kUpperBound},
          {"within", ApproxIndicator::kUpperBound},
      };
  auto it = kCues.find(util::ToLower(word));
  return it == kCues.end() ? ApproxIndicator::kNone : it->second;
}

namespace {

/// Token-driven extraction shared by text and cell parsing.
class Extractor {
 public:
  Extractor(std::string_view txt, const ExtractionOptions& options,
            bool cell_mode)
      : source_(txt),
        options_(options),
        cell_mode_(cell_mode),
        tokens_(text::Tokenize(txt)) {}

  std::vector<ParsedQuantity> Run() {
    std::vector<ParsedQuantity> out;
    size_t i = 0;
    while (i < tokens_.size()) {
      size_t next = i;
      std::optional<ParsedQuantity> q = TryExtractAt(i, &next);
      if (q.has_value()) {
        out.push_back(std::move(*q));
        i = next;
      } else {
        i = next > i ? next : i + 1;
      }
    }
    return out;
  }

 private:
  const Token& tok(size_t i) const { return tokens_[i]; }
  bool valid(size_t i) const { return i < tokens_.size(); }

  bool IsCurrencyToken(size_t i, UnitInfo* unit) const {
    if (!valid(i)) return false;
    auto u = LookupUnit(tok(i).textual);
    if (u && u->category == UnitCategory::kCurrency) {
      // Only symbols and all-caps codes act as currency *prefixes*;
      // words like "pounds" follow the number instead.
      if (tok(i).kind == TokenKind::kSymbol ||
          tok(i).textual == util::ToUpper(tok(i).textual)) {
        *unit = *u;
        return true;
      }
    }
    return false;
  }

  // Returns the mention starting at token i, advancing *next past it.
  std::optional<ParsedQuantity> TryExtractAt(size_t i, size_t* next) {
    *next = i + 1;
    const Token& t = tok(i);

    UnitInfo prefix_unit;
    if (IsCurrencyToken(i, &prefix_unit) && t.kind != TokenKind::kNumber) {
      // Currency prefix: "$3.26 billion", "EUR 500", "$(9.49) Million".
      size_t j = i + 1;
      bool neg_paren = false;
      if (valid(j) && tok(j).textual == "(" && valid(j + 1) &&
          tok(j + 1).kind == TokenKind::kNumber) {
        neg_paren = true;
        ++j;
      }
      if (!valid(j) || tok(j).kind != TokenKind::kNumber) return std::nullopt;
      auto q = ParseNumberCore(j, i, &j);
      if (!q.has_value()) {
        *next = j;
        return std::nullopt;
      }
      if (neg_paren) {
        if (valid(j) && tok(j).textual == ")") ++j;
        NegateQuantity(&*q);
        // Trailing scale/unit words may follow the closing paren.
        ConsumeScaleAndUnit(&*q, &j);
      }
      if (q->unit.empty()) {
        q->unit = prefix_unit.canonical;
        q->unit_category = prefix_unit.category;
      }
      FinishMention(&*q, i, j);
      *next = j;
      return q;
    }

    if (t.kind == TokenKind::kNumber) {
      if (ShouldFilterNumber(i, next)) return std::nullopt;
      size_t j = i;
      size_t start = i;
      // Leading sign: "-5" with '-' directly attached (extended mode also
      // accepts the U+2212 minus sign).
      bool negative = false;
      if (i > 0 && Adjacent(tok(i - 1), t) &&
          (tok(i - 1).textual == "-" ||
           (options_.extended_forms &&
            tok(i - 1).textual == "\xE2\x88\x92")) &&
          (i < 2 || tok(i - 2).kind != TokenKind::kNumber)) {
        negative = true;
        start = i - 1;
      }
      // Currency code word right before: "EUR 500".
      UnitInfo pre_unit;
      bool has_pre_unit = i > 0 && IsCurrencyToken(i - 1, &pre_unit) &&
                          tok(i - 1).kind == TokenKind::kWord;
      if (has_pre_unit) start = i - 1;

      auto q = ParseNumberCore(i, start, &j);
      if (!q.has_value()) {
        *next = j;
        return std::nullopt;
      }
      if (negative) {
        NegateQuantity(&*q);
      }
      if (q->unit.empty() && has_pre_unit) {
        q->unit = pre_unit.canonical;
        q->unit_category = pre_unit.category;
      }
      FinishMention(&*q, start, j);
      *next = j;
      return q;
    }

    // Extended: standalone vulgar fractions ("½ a percent") that no number
    // token precedes — mixed numbers ("12 ½") are folded by the number path.
    if (options_.extended_forms && t.kind == TokenKind::kSymbol) {
      auto lex = LexNumber(source_, t.span.begin, LexerOptions());
      if (lex.ok() && lex->fraction) {
        ParsedQuantity q;
        q.value = lex->value;
        q.unnormalized = lex->value;
        q.value_lo = lex->value_lo;
        q.value_hi = lex->value_hi;
        q.precision = lex->precision;
        size_t j = i + 1;
        while (valid(j) && tok(j).span.begin < lex->end) ++j;
        ConsumeScaleAndUnit(&q, &j);
        FinishMention(&q, i, j);
        *next = j;
        return q;
      }
    }

    // Spelled-out numbers: "twenty pounds", "two million".
    if (options_.spelled_numbers && t.kind == TokenKind::kWord &&
        text::IsNumberWord(t.textual)) {
      return TryExtractSpelled(i, next);
    }

    return std::nullopt;
  }

  LexOptions LexerOptions() const {
    LexOptions lex_opts;
    lex_opts.locale = options_.locale;
    return lex_opts;
  }

  // Parses the numeric core + complex part + scale + unit, starting at the
  // number token `i`. `mention_start` is the first token of the mention
  // (may be a sign or currency prefix). Advances *j past consumed tokens.
  std::optional<ParsedQuantity> ParseNumberCore(size_t i, size_t mention_start,
                                                size_t* j) {
    (void)mention_start;
    if (options_.extended_forms) return ParseNumberExtended(i, j);
    auto lit = ParseNumericLiteral(tok(i).textual);
    *j = i + 1;
    if (!lit.ok()) return std::nullopt;  // e.g. "1.2.3" heading identifier

    ParsedQuantity q;
    q.value = lit->value;
    q.unnormalized = lit->value;
    q.precision = lit->precision;

    // Identifier glued to the number ("10x", "7th") — but scale suffixes
    // ("37K") are legitimate.
    if (valid(*j) && tok(*j).kind == TokenKind::kWord &&
        Adjacent(tok(*j - 1), tok(*j))) {
      auto suffix = AdjacentScaleSuffix(tok(*j).textual);
      if (suffix.has_value()) {
        q.value *= *suffix;
        ++*j;
      } else if (options_.filter_identifiers && !cell_mode_) {
        return std::nullopt;  // "7th", "10x"
      } else if (cell_mode_) {
        // In cells, a glued word is usually an annotation; stop the number.
      }
    }

    // Complex quantity: "5 ± 1".
    if (valid(*j) && IsPlusMinus(tok(*j)) && valid(*j + 1) &&
        tok(*j + 1).kind == TokenKind::kNumber) {
      q.is_complex = true;
      q.approx = ApproxIndicator::kApproximate;
      *j += 2;
    }

    ConsumeScaleAndUnit(&q, j);
    return q;
  }

  // Extended path: lex the raw character stream at the number token with
  // the QuantityLexer (scientific notation, fractions, ranges, ±, locale
  // hints), map the consumed span back onto tokens, then continue with the
  // shared glued-suffix and scale/unit tails.
  std::optional<ParsedQuantity> ParseNumberExtended(size_t i, size_t* j) {
    auto lex = LexNumber(source_, tok(i).span.begin, LexerOptions());
    *j = i + 1;
    if (!lex.ok()) return std::nullopt;

    ParsedQuantity q;
    q.value = lex->value;
    q.unnormalized = lex->value;
    q.value_lo = lex->value_lo;
    q.value_hi = lex->value_hi;
    q.precision = lex->precision;
    if (lex->is_interval) {
      q.is_complex = lex->plus_minus;
      q.approx = ApproxIndicator::kApproximate;
    }
    // Advance past every token the lexed span covers.
    while (valid(*j) && tok(*j).span.begin < lex->end) ++*j;

    // Glued word after the lexed span: scale suffix ("37K") or identifier
    // ("7th", "10x") — same policy as the legacy path.
    if (valid(*j) && tok(*j).kind == TokenKind::kWord &&
        Adjacent(tok(*j - 1), tok(*j))) {
      auto suffix = AdjacentScaleSuffix(tok(*j).textual);
      if (suffix.has_value()) {
        ScaleQuantity(&q, *suffix);
        ++*j;
      } else if (options_.filter_identifiers && !cell_mode_) {
        return std::nullopt;  // "7th", "10x"
      }
    }

    ConsumeScaleAndUnit(&q, j);
    return q;
  }

  // Consumes optional scale words and unit tokens following the number.
  void ConsumeScaleAndUnit(ParsedQuantity* q, size_t* j) {
    // Spaced scale word ("3.26 billion", "70 Mio"). Composes with interval
    // endpoints: "3–5 million" scales both ends.
    if (valid(*j) && tok(*j).kind == TokenKind::kWord) {
      if (auto mult = SpacedScaleWord(tok(*j).textual)) {
        ScaleQuantity(q, *mult);
        ++*j;
      }
    }
    // Unit (symbol, word, or multi-token like "per cent", "g / km").
    if (valid(*j)) {
      std::vector<std::string> tail;
      const size_t kLookahead = 3;
      for (size_t k = *j; k < tokens_.size() && k < *j + kLookahead; ++k) {
        tail.push_back(tok(k).textual);
      }
      size_t consumed = 0;
      auto unit = LookupUnitSequence(tail, 0, &consumed);
      if (unit.has_value()) {
        AssignUnit(q, *unit);
        *j += consumed;
        // Currency refinement: "$70 million CDN" — a currency word directly
        // after another currency assignment narrows it.
        if (valid(*j)) {
          auto refine = LookupUnit(tok(*j).textual);
          if (refine && refine->category == UnitCategory::kCurrency &&
              q->unit_category == UnitCategory::kCurrency) {
            q->unit = refine->canonical;
            ++*j;
          }
        }
      }
    }
  }

  std::optional<ParsedQuantity> TryExtractSpelled(size_t i, size_t* next) {
    std::vector<std::string> words;
    size_t j = i;
    while (valid(j) && tok(j).kind == TokenKind::kWord &&
           (text::IsNumberWord(tok(j).textual) ||
            (util::EqualsIgnoreCase(tok(j).textual, "and") && !words.empty()))) {
      words.push_back(tok(j).textual);
      ++j;
    }
    while (!words.empty() && util::EqualsIgnoreCase(words.back(), "and")) {
      words.pop_back();
      --j;
    }
    *next = j;
    auto value = text::ParseNumberWords(words);
    if (!value.has_value()) return std::nullopt;

    ParsedQuantity q;
    q.value = *value;
    q.unnormalized = *value;
    q.precision = 0;

    // Optional unit after the phrase.
    std::vector<std::string> tail;
    for (size_t k = j; k < tokens_.size() && k < j + 3; ++k) {
      tail.push_back(tok(k).textual);
    }
    size_t consumed = 0;
    auto unit = LookupUnitSequence(tail, 0, &consumed);
    bool has_unit = unit.has_value();
    if (has_unit) {
      AssignUnit(&q, *unit);
      j += consumed;
      *next = j;
    }

    // Acceptance rule: avoid firing on pronoun-like "one"/"no one" uses.
    if (!has_unit && words.size() < 2 && q.value < 13) return std::nullopt;

    FinishMention(&q, i, j);
    return q;
  }

  // Filters for non-informative numbers (text mode only unless noted).
  bool ShouldFilterNumber(size_t i, size_t* next) {
    const Token& t = tok(i);

    // Glued previous word: identifiers like "Win10", "CO2", "2Q"-reversed.
    if (options_.filter_identifiers && i > 0 &&
        tok(i - 1).kind == TokenKind::kWord && Adjacent(tok(i - 1), t)) {
      return true;
    }
    // Bracketed references "[2]".
    if (options_.filter_identifiers && i > 0 && valid(i + 1) &&
        tok(i - 1).textual == "[" && tok(i + 1).textual == "]") {
      *next = i + 2;
      return true;
    }
    // Heading numbers: "Section 1.1", "Table 2".
    if (options_.filter_headings && i > 0 &&
        tok(i - 1).kind == TokenKind::kWord &&
        IsHeadingWord(tok(i - 1).textual)) {
      return true;
    }
    if (!cell_mode_ && options_.filter_times_dates) {
      // Times "10:30(:59)".
      if (valid(i + 2) && tok(i + 1).textual == ":" &&
          tok(i + 2).kind == TokenKind::kNumber) {
        size_t j = i + 2;
        while (valid(j + 2) && tok(j + 1).textual == ":" &&
               tok(j + 2).kind == TokenKind::kNumber) {
          j += 2;
        }
        *next = j + 1;
        return true;
      }
      if (i > 0 && tok(i - 1).textual == ":" && i > 1 &&
          tok(i - 2).kind == TokenKind::kNumber) {
        return true;  // tail of a time already skipped
      }
      // Slashed dates "12/05/2014".
      if (valid(i + 4) && tok(i + 1).textual == "/" &&
          tok(i + 2).kind == TokenKind::kNumber &&
          tok(i + 3).textual == "/" &&
          tok(i + 4).kind == TokenKind::kNumber) {
        *next = i + 5;
        return true;
      }
      // Day-of-month next to a month word: "18 December", "August 7".
      if ((i > 0 && IsMonthWord(tok(i - 1).textual)) ||
          (valid(i + 1) && IsMonthWord(tok(i + 1).textual))) {
        return true;
      }
    }
    if (!cell_mode_ && options_.filter_phones) {
      // Chains of >= 3 dash-joined numbers: "555-123-4567".
      size_t j = i;
      int parts = 1;
      while (valid(j + 2) && tok(j + 1).textual == "-" &&
             tok(j + 2).kind == TokenKind::kNumber) {
        j += 2;
        ++parts;
      }
      if (parts >= 3) {
        *next = j + 1;
        return true;
      }
    }
    if (!cell_mode_ && options_.filter_years) {
      // Standalone 4-digit year 1900..2100: integer, no separators, no
      // decimal, not followed by scale/unit.
      auto lit = ParseNumericLiteral(t.textual);
      if (lit.ok() && !lit->had_separators && lit->precision == 0 &&
          lit->value >= 1900 && lit->value <= 2100 &&
          t.textual.size() == 4) {
        bool has_follow_unit = false;
        if (valid(i + 1)) {
          std::vector<std::string> tail = {tok(i + 1).textual};
          size_t consumed = 0;
          has_follow_unit =
              LookupUnitSequence(tail, 0, &consumed).has_value() ||
              SpacedScaleWord(tok(i + 1).textual).has_value();
        }
        if (!has_follow_unit) return true;
      }
    }
    return false;
  }

  void FinishMention(ParsedQuantity* q, size_t first_tok, size_t end_tok) {
    q->span = text::Span{tok(first_tok).span.begin,
                         tok(end_tok - 1).span.end};
    q->surface = std::string(
        source_.substr(q->span.begin, q->span.end - q->span.begin));
    if (q->approx == ApproxIndicator::kNone && !cell_mode_) {
      q->approx = LookBackForCue(first_tok);
    }
  }

  ApproxIndicator LookBackForCue(size_t mention_start) const {
    const size_t kWindow = 3;
    size_t lo = mention_start >= kWindow ? mention_start - kWindow : 0;
    for (size_t j = mention_start; j-- > lo;) {
      const Token& t = tok(j);
      if (t.kind == TokenKind::kPunctuation &&
          (t.textual == "." || t.textual == ";")) {
        // Don't cross sentence-ish boundaries — except the dot of an
        // abbreviated cue like "ca." or "approx.".
        bool abbreviation_dot =
            t.textual == "." && j > 0 &&
            tok(j - 1).kind == TokenKind::kWord &&
            ApproxCue(tok(j - 1).textual) != ApproxIndicator::kNone;
        if (!abbreviation_dot) break;
        continue;
      }
      // Two-word cues.
      if (valid(j + 1) && tok(j).kind == TokenKind::kWord &&
          tok(j + 1).kind == TokenKind::kWord) {
        std::string two = util::ToLower(tok(j).textual) + " " +
                          util::ToLower(tok(j + 1).textual);
        if (two == "more than" || two == "at least" || two == "no less") {
          return ApproxIndicator::kLowerBound;
        }
        if (two == "less than" || two == "at most" || two == "up to" ||
            two == "fewer than" || two == "no more") {
          return ApproxIndicator::kUpperBound;
        }
      }
      ApproxIndicator a = ApproxCue(t.textual);
      if (a != ApproxIndicator::kNone) return a;
    }
    return ApproxIndicator::kNone;
  }

  std::string_view source_;
  ExtractionOptions options_;
  bool cell_mode_;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<ParsedQuantity> ExtractQuantities(std::string_view txt,
                                              const ExtractionOptions& options) {
  return Extractor(txt, options, /*cell_mode=*/false).Run();
}

std::optional<ParsedQuantity> ParseCellQuantity(
    std::string_view cell, const ExtractionOptions& base_options) {
  std::string_view trimmed = util::Trim(cell);
  if (trimmed.empty()) return std::nullopt;

  // Accounting negatives: "(9.49)" / "$(9.49) Million" handled by the
  // extractor for the $ form; handle bare "(x)" here.
  bool negative = false;
  std::string owned(trimmed);
  if (owned.size() >= 3 && owned.front() == '(' && owned.back() == ')') {
    negative = true;
    owned = owned.substr(1, owned.size() - 2);
  }

  ExtractionOptions opts = base_options;
  opts.filter_years = false;
  opts.filter_times_dates = false;
  opts.filter_phones = false;
  opts.spelled_numbers = false;
  auto mentions = Extractor(owned, opts, /*cell_mode=*/true).Run();
  if (mentions.empty()) return std::nullopt;
  // A quantity cell holds exactly one number (the extractor may also see
  // footnote digits; take the first).
  ParsedQuantity q = std::move(mentions.front());
  if (negative) {
    NegateQuantity(&q);
    q.surface = std::string(trimmed);
  }
  return q;
}

}  // namespace briq::quantity
