#include "quantity/header_cue.h"

#include <string>
#include <vector>

#include "text/number_words.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace briq::quantity {

HeaderCue ParseHeaderCue(std::string_view header_text) {
  HeaderCue cue;
  std::vector<text::Token> tokens = text::Tokenize(header_text);
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (const auto& t : tokens) words.push_back(t.textual);

  for (size_t i = 0; i < words.size(); ++i) {
    // Scale words ("Millions", "Mio", "in Mio").
    if (cue.scale == 1.0) {
      if (auto mult = text::ScaleWordMultiplier(words[i])) {
        // Ignore bare "k"/"m"/"b"/"t" letters in headers: too ambiguous
        // ("M" could be "Male"). Require >= 2 chars or a known long form.
        if (words[i].size() >= 2 || words[i] == "K") {
          cue.scale = *mult;
          continue;
        }
      }
    }
    // Units: symbols and words; multi-token forms like "g / km".
    if (!cue.unit.has_value()) {
      size_t consumed = 0;
      auto unit = LookupUnitSequence(words, i, &consumed);
      if (unit.has_value()) {
        // Skip single ambiguous letters as units in headers too ("g" is a
        // real unit but "G" alone in "G 20" is not; require symbol or len>=2
        // or slash form).
        bool symbolish = tokens[i].kind == text::TokenKind::kSymbol;
        if (symbolish || consumed > 1 || words[i].size() >= 2) {
          cue.unit = unit;
          i += consumed - 1;
          continue;
        }
      }
    }
  }
  return cue;
}

}  // namespace briq::quantity
