#ifndef BRIQ_QUANTITY_QUANTITY_H_
#define BRIQ_QUANTITY_QUANTITY_H_

#include <cmath>
#include <string>

#include "quantity/unit.h"
#include "text/tokenizer.h"

namespace briq::quantity {

/// Modifier accompanying a text mention, inferred from cue words ("ca.",
/// "about", "more than", ...). Feature f11 and a tagger feature.
enum class ApproxIndicator {
  kNone = 0,
  kExact,
  kApproximate,
  kUpperBound,  // "less than", "under", "up to"
  kLowerBound,  // "more than", "over", "at least"
};

const char* ApproxIndicatorName(ApproxIndicator a);

/// A quantity with its scale-applied value expressed in a *base* unit of
/// its category (kg, m, percent, the currency itself, ...). Produced by
/// ParsedQuantity::normalized(); this is what value-compatibility features
/// and the candidate index compare.
struct NormalizedQuantity {
  double value = 0.0;
  double value_lo = 0.0;
  double value_hi = 0.0;
  std::string base_unit;  ///< "" when unitless
  UnitCategory category = UnitCategory::kNone;
};

/// A quantity recognized in text or in a table cell, with both its
/// normalized value (scale words and bps applied; "0.5 million" -> 500000,
/// "60 bps" -> 0.6 percent) and the raw surface-form value ("37" for "37K").
struct ParsedQuantity {
  double value = 0.0;         ///< normalized numeric value
  double unnormalized = 0.0;  ///< surface numeric value before scaling
  std::string unit;           ///< canonical unit name, empty if none
  UnitCategory unit_category = UnitCategory::kNone;
  int precision = 0;          ///< digits after the decimal point in surface
  ApproxIndicator approx = ApproxIndicator::kNone;
  bool is_complex = false;    ///< came from a complex pattern like "5 ± 1 km"
  std::string surface;        ///< raw matched text, trimmed
  text::Span span;            ///< char range in the source string
  // Interval endpoints (scale-applied, in `unit`): ranges ("3–5 million")
  // and plus-minus forms carry value_lo < value_hi; point quantities leave
  // both equal (legacy paths leave them 0, which also reads as a point).
  double value_lo = 0.0;
  double value_hi = 0.0;
  // Factor converting `value` from `unit` into the category's base unit
  // (tonne -> kg is 1e3). 1.0 for every legacy surface form.
  double unit_to_base = 1.0;

  bool has_unit() const { return !unit.empty(); }
  bool is_interval() const { return value_lo != value_hi; }

  /// The quantity expressed in its category's base unit.
  NormalizedQuantity normalized() const;

  /// Order of magnitude of the normalized value: floor(log10 |value|);
  /// 0 for value == 0.
  int Scale() const {
    if (value == 0.0 || !std::isfinite(value)) return 0;
    return static_cast<int>(std::floor(std::log10(std::fabs(value))));
  }

  /// Order of magnitude of the surface (unnormalized) value.
  int UnnormalizedScale() const {
    if (unnormalized == 0.0 || !std::isfinite(unnormalized)) return 0;
    return static_cast<int>(std::floor(std::log10(std::fabs(unnormalized))));
  }
};

/// Relative difference |a - b| / max(|a|, |b|); 0 when both are 0.
/// The paper's feature f6/f7 definition extended to handle signs and zeros.
double RelativeDifference(double a, double b);

/// Interval-aware relative difference between a normalized quantity and a
/// point value in base units: 0 when the point lies inside [lo, hi],
/// otherwise the RelativeDifference to the nearer endpoint. Collapses to
/// plain RelativeDifference for point quantities.
double IntervalRelativeDifference(double value_lo, double value_hi,
                                  double point);

/// Value distance between a parsed quantity and a point value, both
/// expressed in base units (t↔kg, M$↔$). Interval quantities measure the
/// distance to the nearer endpoint (0 inside the interval). Every legacy
/// surface form has unit_to_base == 1.0 and point endpoints, so for the
/// legacy corpus this is bit-identical to RelativeDifference(q.value,
/// point_value).
double BaseValueDistance(const ParsedQuantity& q, double point_value,
                         double point_to_base);

}  // namespace briq::quantity

#endif  // BRIQ_QUANTITY_QUANTITY_H_
