#ifndef BRIQ_QUANTITY_QUANTITY_H_
#define BRIQ_QUANTITY_QUANTITY_H_

#include <cmath>
#include <string>

#include "quantity/unit.h"
#include "text/tokenizer.h"

namespace briq::quantity {

/// Modifier accompanying a text mention, inferred from cue words ("ca.",
/// "about", "more than", ...). Feature f11 and a tagger feature.
enum class ApproxIndicator {
  kNone = 0,
  kExact,
  kApproximate,
  kUpperBound,  // "less than", "under", "up to"
  kLowerBound,  // "more than", "over", "at least"
};

const char* ApproxIndicatorName(ApproxIndicator a);

/// A quantity recognized in text or in a table cell, with both its
/// normalized value (scale words and bps applied; "0.5 million" -> 500000,
/// "60 bps" -> 0.6 percent) and the raw surface-form value ("37" for "37K").
struct ParsedQuantity {
  double value = 0.0;         ///< normalized numeric value
  double unnormalized = 0.0;  ///< surface numeric value before scaling
  std::string unit;           ///< canonical unit name, empty if none
  UnitCategory unit_category = UnitCategory::kNone;
  int precision = 0;          ///< digits after the decimal point in surface
  ApproxIndicator approx = ApproxIndicator::kNone;
  bool is_complex = false;    ///< came from a complex pattern like "5 ± 1 km"
  std::string surface;        ///< raw matched text, trimmed
  text::Span span;            ///< char range in the source string

  bool has_unit() const { return !unit.empty(); }

  /// Order of magnitude of the normalized value: floor(log10 |value|);
  /// 0 for value == 0.
  int Scale() const {
    if (value == 0.0 || !std::isfinite(value)) return 0;
    return static_cast<int>(std::floor(std::log10(std::fabs(value))));
  }

  /// Order of magnitude of the surface (unnormalized) value.
  int UnnormalizedScale() const {
    if (unnormalized == 0.0 || !std::isfinite(unnormalized)) return 0;
    return static_cast<int>(std::floor(std::log10(std::fabs(unnormalized))));
  }
};

/// Relative difference |a - b| / max(|a|, |b|); 0 when both are 0.
/// The paper's feature f6/f7 definition extended to handle signs and zeros.
double RelativeDifference(double a, double b);

}  // namespace briq::quantity

#endif  // BRIQ_QUANTITY_QUANTITY_H_
