#include "quantity/unit.h"

#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace briq::quantity {

const char* UnitCategoryName(UnitCategory c) {
  switch (c) {
    case UnitCategory::kNone:
      return "none";
    case UnitCategory::kCurrency:
      return "currency";
    case UnitCategory::kPercent:
      return "percent";
    case UnitCategory::kMass:
      return "mass";
    case UnitCategory::kLength:
      return "length";
    case UnitCategory::kSpeed:
      return "speed";
    case UnitCategory::kEnergy:
      return "energy";
    case UnitCategory::kEmission:
      return "emission";
    case UnitCategory::kFuelEconomy:
      return "fuel_economy";
    case UnitCategory::kData:
      return "data";
    case UnitCategory::kTime:
      return "time";
  }
  return "?";
}

namespace {

struct Entry {
  const char* surface;
  const char* canonical;
  UnitCategory category;
  double to_base;
};

// Surface forms are matched lowercased except pure symbols.
constexpr Entry kEntries[] = {
    // Currencies.
    {"$", "USD", UnitCategory::kCurrency, 1.0},
    {"usd", "USD", UnitCategory::kCurrency, 1.0},
    {"dollar", "USD", UnitCategory::kCurrency, 1.0},
    {"dollars", "USD", UnitCategory::kCurrency, 1.0},
    {"\xE2\x82\xAC", "EUR", UnitCategory::kCurrency, 1.0},  // €
    {"eur", "EUR", UnitCategory::kCurrency, 1.0},
    {"euro", "EUR", UnitCategory::kCurrency, 1.0},
    {"euros", "EUR", UnitCategory::kCurrency, 1.0},
    {"\xC2\xA3", "GBP", UnitCategory::kCurrency, 1.0},  // £
    {"gbp", "GBP", UnitCategory::kCurrency, 1.0},
    {"pound", "GBP", UnitCategory::kCurrency, 1.0},
    {"pounds", "GBP", UnitCategory::kCurrency, 1.0},
    {"cdn", "CAD", UnitCategory::kCurrency, 1.0},
    {"cad", "CAD", UnitCategory::kCurrency, 1.0},
    {"\xC2\xA5", "JPY", UnitCategory::kCurrency, 1.0},  // ¥
    {"jpy", "JPY", UnitCategory::kCurrency, 1.0},
    {"yen", "JPY", UnitCategory::kCurrency, 1.0},
    {"inr", "INR", UnitCategory::kCurrency, 1.0},
    {"rs", "INR", UnitCategory::kCurrency, 1.0},
    {"rupees", "INR", UnitCategory::kCurrency, 1.0},
    // Scaled currency forms ("4 M$", "1.2 bn$"): to_base carries the scale;
    // the parser folds it into the value so "4 M$" == "$4 million".
    {"k$", "USD", UnitCategory::kCurrency, 1e3},
    {"m$", "USD", UnitCategory::kCurrency, 1e6},
    {"mn$", "USD", UnitCategory::kCurrency, 1e6},
    {"b$", "USD", UnitCategory::kCurrency, 1e9},
    {"bn$", "USD", UnitCategory::kCurrency, 1e9},
    {"m\xE2\x82\xAC", "EUR", UnitCategory::kCurrency, 1e6},   // M€
    {"bn\xE2\x82\xAC", "EUR", UnitCategory::kCurrency, 1e9},  // bn€
    {"m\xC2\xA3", "GBP", UnitCategory::kCurrency, 1e6},       // M£
    {"bn\xC2\xA3", "GBP", UnitCategory::kCurrency, 1e9},      // bn£
    // Percent family (base: percent).
    {"%", "percent", UnitCategory::kPercent, 1.0},
    {"percent", "percent", UnitCategory::kPercent, 1.0},
    {"pct", "percent", UnitCategory::kPercent, 1.0},
    {"percentage", "percent", UnitCategory::kPercent, 1.0},
    {"bps", "bps", UnitCategory::kPercent, 0.01},
    {"bp", "bps", UnitCategory::kPercent, 0.01},
    // Mass (base: kg).
    {"kg", "kg", UnitCategory::kMass, 1.0},
    {"kilogram", "kg", UnitCategory::kMass, 1.0},
    {"kilograms", "kg", UnitCategory::kMass, 1.0},
    {"g", "g", UnitCategory::kMass, 1e-3},
    {"gram", "g", UnitCategory::kMass, 1e-3},
    {"grams", "g", UnitCategory::kMass, 1e-3},
    {"mg", "mg", UnitCategory::kMass, 1e-6},
    {"lb", "lb", UnitCategory::kMass, 0.4536},
    {"lbs", "lb", UnitCategory::kMass, 0.4536},
    {"tonne", "tonne", UnitCategory::kMass, 1e3},
    {"tonnes", "tonne", UnitCategory::kMass, 1e3},
    {"ton", "tonne", UnitCategory::kMass, 1e3},
    {"tons", "tonne", UnitCategory::kMass, 1e3},
    // Length (base: m).
    {"km", "km", UnitCategory::kLength, 1e3},
    {"kilometers", "km", UnitCategory::kLength, 1e3},
    {"kilometres", "km", UnitCategory::kLength, 1e3},
    {"mi", "mile", UnitCategory::kLength, 1609.34},
    {"mile", "mile", UnitCategory::kLength, 1609.34},
    {"miles", "mile", UnitCategory::kLength, 1609.34},
    {"meters", "m", UnitCategory::kLength, 1.0},
    {"metres", "m", UnitCategory::kLength, 1.0},
    // Speed.
    {"mph", "mph", UnitCategory::kSpeed, 0.447},
    {"km/h", "km/h", UnitCategory::kSpeed, 0.2778},
    {"kmh", "km/h", UnitCategory::kSpeed, 0.2778},
    // Energy.
    {"kwh", "kWh", UnitCategory::kEnergy, 1.0},
    {"mwh", "MWh", UnitCategory::kEnergy, 1e3},
    {"kwh/100km", "kWh/100km", UnitCategory::kEnergy, 1.0},
    // Emissions.
    {"g/km", "g/km", UnitCategory::kEmission, 1.0},
    // Fuel economy.
    {"mpge", "MPGe", UnitCategory::kFuelEconomy, 1.0},
    {"mpg", "mpg", UnitCategory::kFuelEconomy, 1.0},
    // Data.
    {"gb", "GB", UnitCategory::kData, 1.0},
    {"mb", "MB", UnitCategory::kData, 1e-3},
    {"tb", "TB", UnitCategory::kData, 1e3},
    // Time.
    {"hours", "hour", UnitCategory::kTime, 1.0},
    {"hour", "hour", UnitCategory::kTime, 1.0},
    {"minutes", "minute", UnitCategory::kTime, 1.0 / 60},
    {"seconds", "second", UnitCategory::kTime, 1.0 / 3600},
    {"days", "day", UnitCategory::kTime, 24.0},
    {"years", "year", UnitCategory::kTime, 24.0 * 365},
};

const std::unordered_map<std::string, UnitInfo>& UnitMap() {
  static const auto& kMap = [] {
    auto* m = new std::unordered_map<std::string, UnitInfo>();
    // Case-fold every surface once at startup and assert the table carries
    // no conflicting mappings (duplicate surfaces must agree on canonical,
    // category, and conversion factor).
    for (const Entry& e : kEntries) {
      const std::string key = util::ToLower(e.surface);
      const UnitInfo info{e.canonical, e.category, e.to_base};
      auto [it, inserted] = m->emplace(key, info);
      if (!inserted) {
        BRIQ_CHECK(it->second == info && it->second.to_base == e.to_base)
            << "conflicting unit table entries for surface '" << key << "': "
            << it->second.canonical << " vs " << e.canonical;
      }
    }
    return m;
  }();
  return *kMap;
}

}  // namespace

std::string BaseUnitName(UnitCategory category, std::string_view canonical) {
  switch (category) {
    case UnitCategory::kNone:
      return "";
    case UnitCategory::kCurrency:
      return std::string(canonical);  // each currency is its own base
    case UnitCategory::kPercent:
      return "percent";
    case UnitCategory::kMass:
      return "kg";
    case UnitCategory::kLength:
      return "m";
    case UnitCategory::kSpeed:
      return "m/s";
    case UnitCategory::kEnergy:
      return "kWh";
    case UnitCategory::kEmission:
      return "g/km";
    case UnitCategory::kFuelEconomy:
      return "mpg";
    case UnitCategory::kData:
      return "GB";
    case UnitCategory::kTime:
      return "hour";
  }
  return "";
}

bool ConvertibleUnits(UnitCategory cat_a, std::string_view canonical_a,
                      UnitCategory cat_b, std::string_view canonical_b) {
  if (cat_a != cat_b || cat_a == UnitCategory::kNone) return false;
  if (cat_a == UnitCategory::kCurrency) return canonical_a == canonical_b;
  return true;
}

std::optional<UnitInfo> LookupUnit(std::string_view token) {
  const auto& map = UnitMap();
  auto it = map.find(util::ToLower(token));
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::optional<UnitInfo> LookupUnitSequence(
    const std::vector<std::string>& tokens, size_t i, size_t* consumed) {
  *consumed = 0;
  if (i >= tokens.size()) return std::nullopt;

  // Multi-token forms first (longest match wins).
  std::string t0 = util::ToLower(tokens[i]);
  if (i + 1 < tokens.size()) {
    std::string t1 = util::ToLower(tokens[i + 1]);
    // "per cent".
    if (t0 == "per" && t1 == "cent") {
      *consumed = 2;
      return LookupUnit("percent");
    }
    // "basis points".
    if (t0 == "basis" && (t1 == "points" || t1 == "point")) {
      *consumed = 2;
      return LookupUnit("bps");
    }
    // Scale prefix + currency symbol: "4 M $", "1.2 bn €" (tokenizers split
    // the glued "M$" form into these two tokens).
    if (auto u = LookupUnit(t0 + tokens[i + 1])) {
      if (u->category == UnitCategory::kCurrency) {
        *consumed = 2;
        return u;
      }
    }
    // Slash-separated: "g / km", "km / h".
    if (i + 2 < tokens.size() && tokens[i + 1] == "/") {
      std::string joined = t0 + "/" + util::ToLower(tokens[i + 2]);
      if (auto u = LookupUnit(joined)) {
        *consumed = 3;
        return u;
      }
    }
  }
  if (auto u = LookupUnit(tokens[i])) {
    *consumed = 1;
    return u;
  }
  return std::nullopt;
}

}  // namespace briq::quantity
