#ifndef BRIQ_QUANTITY_UNIT_H_
#define BRIQ_QUANTITY_UNIT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace briq::quantity {

/// Coarse unit families. Two units in the same category are comparable in
/// principle (e.g., USD and EUR are both currencies) but only identical
/// canonical units yield a *strong* unit match (feature f8).
enum class UnitCategory {
  kNone = 0,
  kCurrency,
  kPercent,
  kMass,
  kLength,
  kSpeed,
  kEnergy,
  kEmission,     // g/km etc.
  kFuelEconomy,  // MPGe, mpg
  kData,         // GB, MB
  kTime,
};

const char* UnitCategoryName(UnitCategory c);

/// A resolved unit: canonical name plus category plus the factor that maps
/// a value expressed in this unit into the category's base unit (percent is
/// based in "percent", so bps has factor 0.01).
struct UnitInfo {
  std::string canonical;  // "USD", "EUR", "percent", "bps", "g/km", ...
  UnitCategory category = UnitCategory::kNone;
  double to_base = 1.0;

  bool operator==(const UnitInfo& other) const {
    return canonical == other.canonical && category == other.category;
  }
};

/// Name of the base unit a category's `to_base` factors convert into
/// ("kg", "m", "m/s", "percent", ...). Currencies are each their own base
/// (no FX table), so the canonical name is echoed back; kNone yields "".
std::string BaseUnitName(UnitCategory category, std::string_view canonical);

/// True when two resolved units are dimensionally comparable after
/// normalization: same category, and for currencies the same canonical
/// (USD and EUR share a category but no conversion factor).
bool ConvertibleUnits(UnitCategory cat_a, std::string_view canonical_a,
                      UnitCategory cat_b, std::string_view canonical_b);

/// Looks up a single token ("$", "EUR", "dollars", "%", "bps", "MPGe").
/// Case-insensitive for words; symbols matched exactly.
std::optional<UnitInfo> LookupUnit(std::string_view token);

/// Looks up a multi-token unit starting at `tokens[i]` ("per cent",
/// "basis points", "g / km", "km / h"). On success sets `*consumed` to the
/// number of tokens taken (>= 1) and returns the unit; otherwise falls back
/// to single-token lookup.
std::optional<UnitInfo> LookupUnitSequence(
    const std::vector<std::string>& tokens, size_t i, size_t* consumed);

}  // namespace briq::quantity

#endif  // BRIQ_QUANTITY_UNIT_H_
