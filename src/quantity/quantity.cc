#include "quantity/quantity.h"

#include <algorithm>

namespace briq::quantity {

const char* ApproxIndicatorName(ApproxIndicator a) {
  switch (a) {
    case ApproxIndicator::kNone:
      return "none";
    case ApproxIndicator::kExact:
      return "exact";
    case ApproxIndicator::kApproximate:
      return "approximate";
    case ApproxIndicator::kUpperBound:
      return "upper_bound";
    case ApproxIndicator::kLowerBound:
      return "lower_bound";
  }
  return "?";
}

double RelativeDifference(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  if (denom == 0.0) return 0.0;
  if (!std::isfinite(a) || !std::isfinite(b)) return 1.0;
  return std::min(1.0, std::fabs(a - b) / denom);
}

}  // namespace briq::quantity
