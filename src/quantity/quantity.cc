#include "quantity/quantity.h"

#include <algorithm>

namespace briq::quantity {

const char* ApproxIndicatorName(ApproxIndicator a) {
  switch (a) {
    case ApproxIndicator::kNone:
      return "none";
    case ApproxIndicator::kExact:
      return "exact";
    case ApproxIndicator::kApproximate:
      return "approximate";
    case ApproxIndicator::kUpperBound:
      return "upper_bound";
    case ApproxIndicator::kLowerBound:
      return "lower_bound";
  }
  return "?";
}

double RelativeDifference(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  if (denom == 0.0) return 0.0;
  if (!std::isfinite(a) || !std::isfinite(b)) return 1.0;
  return std::min(1.0, std::fabs(a - b) / denom);
}

double IntervalRelativeDifference(double value_lo, double value_hi,
                                  double point) {
  if (value_lo == value_hi) return RelativeDifference(value_lo, point);
  if (point >= value_lo && point <= value_hi) return 0.0;
  return std::min(RelativeDifference(value_lo, point),
                  RelativeDifference(value_hi, point));
}

double BaseValueDistance(const ParsedQuantity& q, double point_value,
                         double point_to_base) {
  const double point = point_value * point_to_base;
  if (q.is_interval()) {
    const double lo = q.value_lo * q.unit_to_base;
    const double hi = q.value_hi * q.unit_to_base;
    return IntervalRelativeDifference(std::min(lo, hi), std::max(lo, hi),
                                      point);
  }
  return RelativeDifference(q.value * q.unit_to_base, point);
}

NormalizedQuantity ParsedQuantity::normalized() const {
  NormalizedQuantity n;
  n.value = value * unit_to_base;
  if (is_interval()) {
    n.value_lo = value_lo * unit_to_base;
    n.value_hi = value_hi * unit_to_base;
    if (n.value_lo > n.value_hi) std::swap(n.value_lo, n.value_hi);
  } else {
    n.value_lo = n.value_hi = n.value;
  }
  n.category = unit_category;
  n.base_unit = BaseUnitName(unit_category, unit);
  return n;
}

}  // namespace briq::quantity
