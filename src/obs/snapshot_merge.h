#ifndef BRIQ_OBS_SNAPSHOT_MERGE_H_
#define BRIQ_OBS_SNAPSHOT_MERGE_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"
#include "util/result.h"

namespace briq::obs {

/// Fleet-wide metric aggregation (DESIGN.md §5j): the driver's collector
/// deserializes each worker's pushed MetricsSnapshot and folds it in
/// here. Unlike the instruments themselves, this is pure data — it works
/// identically under -DBRIQ_NO_METRICS (the snapshots arrive off the
/// wire, not from the local registry).

/// Strict inverse of MetricsToJson (obs/export.h): {"counters": {...},
/// "gauges": {...}, "histograms": {name: {"bounds", "counts", "sum",
/// "count"}}}. Rejects missing sections, non-numeric values, and
/// bounds/counts layouts that violate counts.size() == bounds.size() + 1.
util::Result<MetricsSnapshot> MetricsSnapshotFromJson(const util::Json& json);

/// Merges the latest cumulative snapshot of each worker into one
/// fleet-wide view. Update() REPLACES a worker's whole contribution (the
/// push protocol sends cumulative snapshots, so the newest one supersedes
/// everything that worker reported before — and a restarted worker's
/// fresh counters supersede its dead incarnation's partial ones, keeping
/// the merged totals equal to "sum over worker slots of the latest
/// snapshot").
///
/// Merge semantics:
///   - counters: summed across workers.
///   - histograms: bucket-wise count sums plus sum/count — bucket layouts
///     are identical by construction (every worker runs the same binary,
///     so a given instrument registers the same bounds everywhere). A
///     layout mismatch is tolerated defensively: the first-seen bounds
///     win and the divergent worker's buckets fold into the overflow
///     bucket (sum/count still merge exactly).
///   - gauges: summed in Merged() (queue depths and in-flight counts add
///     meaningfully across a fleet); per-worker values stay addressable
///     via WorkerSnapshots() for `worker="N"`-labelled export.
///
/// Thread-safe: the collector thread writes while HTTP workers read.
class SnapshotMerge {
 public:
  /// Replaces `worker`'s contribution with `snapshot`.
  void Update(int worker, MetricsSnapshot snapshot);

  /// Drops `worker`'s contribution entirely (unknown ids are a no-op).
  void Remove(int worker);

  /// The fleet-wide aggregate (see class comment for the semantics).
  /// capture_unix_seconds is the newest capture time across workers.
  MetricsSnapshot Merged() const;

  /// Each worker's latest snapshot, ascending by worker id.
  std::vector<std::pair<int, MetricsSnapshot>> WorkerSnapshots() const;

  size_t num_workers() const;

 private:
  mutable std::mutex mu_;
  std::map<int, MetricsSnapshot> workers_;
};

/// Bucket-wise histogram merge used by SnapshotMerge, exposed for the
/// fuzz tests: `into`'s bounds win; matching layouts add count-by-count,
/// divergent ones fold into the overflow bucket.
void MergeHistogram(HistogramSnapshot* into, const HistogramSnapshot& from);

}  // namespace briq::obs

#endif  // BRIQ_OBS_SNAPSHOT_MERGE_H_
