#include "obs/snapshot_merge.h"

#include <algorithm>

namespace briq::obs {

namespace {

util::Status NotNumeric(const std::string& section, const std::string& name) {
  return util::Status::ParseError("metrics snapshot: " + section + " '" +
                                  name + "' is not numeric");
}

}  // namespace

util::Result<MetricsSnapshot> MetricsSnapshotFromJson(const util::Json& json) {
  if (!json.is_object()) {
    return util::Status::ParseError("metrics snapshot is not a JSON object");
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (!json.Has(key) || !json.at(key).is_object()) {
      return util::Status::ParseError(
          "metrics snapshot is missing object section '" + std::string(key) +
          "'");
    }
  }
  MetricsSnapshot snapshot;
  for (const auto& [name, value] : json.at("counters").members()) {
    if (!value.is_number()) return NotNumeric("counter", name);
    snapshot.counters[name] = static_cast<uint64_t>(value.AsDouble());
  }
  for (const auto& [name, value] : json.at("gauges").members()) {
    if (!value.is_number()) return NotNumeric("gauge", name);
    snapshot.gauges[name] = static_cast<int64_t>(value.AsDouble());
  }
  for (const auto& [name, value] : json.at("histograms").members()) {
    if (!value.is_object()) {
      return util::Status::ParseError("metrics snapshot: histogram '" + name +
                                      "' is not an object");
    }
    for (const char* key : {"bounds", "counts", "sum", "count"}) {
      if (!value.Has(key)) {
        return util::Status::ParseError("metrics snapshot: histogram '" +
                                        name + "' is missing '" + key + "'");
      }
    }
    HistogramSnapshot h;
    for (const util::Json& b : value.at("bounds").items()) {
      if (!b.is_number()) return NotNumeric("histogram bound", name);
      h.bounds.push_back(b.AsDouble());
    }
    for (const util::Json& c : value.at("counts").items()) {
      if (!c.is_number()) return NotNumeric("histogram count", name);
      h.counts.push_back(static_cast<uint64_t>(c.AsDouble()));
    }
    if (!value.at("sum").is_number() || !value.at("count").is_number()) {
      return NotNumeric("histogram", name);
    }
    h.sum = value.at("sum").AsDouble();
    h.count = static_cast<uint64_t>(value.at("count").AsDouble());
    if (h.counts.size() != h.bounds.size() + 1) {
      return util::Status::ParseError(
          "metrics snapshot: histogram '" + name + "' has " +
          std::to_string(h.counts.size()) + " counts for " +
          std::to_string(h.bounds.size()) + " bounds");
    }
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MergeHistogram(HistogramSnapshot* into, const HistogramSnapshot& from) {
  into->sum += from.sum;
  into->count += from.count;
  if (into->bounds == from.bounds &&
      into->counts.size() == from.counts.size()) {
    for (size_t i = 0; i < from.counts.size(); ++i) {
      into->counts[i] += from.counts[i];
    }
    return;
  }
  // Divergent layout (should not happen in a homogeneous fleet): keep the
  // first-seen bounds and fold everything from the stranger into the
  // overflow bucket so totals stay exact even when shapes do not.
  uint64_t total = 0;
  for (uint64_t c : from.counts) total += c;
  if (!into->counts.empty()) into->counts.back() += total;
}

void SnapshotMerge::Update(int worker, MetricsSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_[worker] = std::move(snapshot);
}

void SnapshotMerge::Remove(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.erase(worker);
}

MetricsSnapshot SnapshotMerge::Merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot merged;
  for (const auto& [worker, snapshot] : workers_) {
    (void)worker;
    merged.capture_unix_seconds =
        std::max(merged.capture_unix_seconds, snapshot.capture_unix_seconds);
    for (const auto& [name, value] : snapshot.counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : snapshot.gauges) {
      merged.gauges[name] += value;
    }
    for (const auto& [name, h] : snapshot.histograms) {
      auto it = merged.histograms.find(name);
      if (it == merged.histograms.end()) {
        merged.histograms[name] = h;
      } else {
        MergeHistogram(&it->second, h);
      }
    }
  }
  return merged;
}

std::vector<std::pair<int, MetricsSnapshot>> SnapshotMerge::WorkerSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::pair<int, MetricsSnapshot>>(workers_.begin(),
                                                      workers_.end());
}

size_t SnapshotMerge::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

}  // namespace briq::obs
