#ifndef BRIQ_OBS_TRACE_H_
#define BRIQ_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace briq::obs {

/// Lightweight per-document trace spans: ScopedSpan RAII timers build a
/// tree per root scope (document → prepare / filter / classify / resolve)
/// on the current thread with zero locking; completed roots are parked in
/// a bounded in-memory ring (TraceRing) whose snapshot exports to JSON via
/// obs/export.h. With -DBRIQ_NO_METRICS, spans compile to no-ops and the
/// ring stays empty.

/// One completed span. `start_seconds` is the offset from the root span's
/// start; a value < 0 marks a synthetic leaf aggregated across scattered
/// code (see AttachLeafSpan). `trace_id` is set on root spans only, from
/// the thread's ambient ScopedTraceId at the moment the root completes;
/// empty when no trace context was active (e.g. batch alignment).
struct SpanNode {
  std::string name;
  std::string trace_id;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<SpanNode> children;
};

/// Receives every root span recorded into a TraceRing, before the ring
/// buffers it — the hook behind obs/trace_export.h's persistent sampled
/// sink. Called outside the ring mutex but potentially from many worker
/// threads at once; implementations synchronize themselves and must be
/// cheap (one root per document, not per pair).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnRootSpan(const SpanNode& root) = 0;
};

/// Bounded ring of completed root spans: recording the (capacity+1)-th
/// root evicts the oldest, so tracing every document costs O(capacity)
/// memory no matter how long the process streams.
class TraceRing {
 public:
  /// The process-wide ring used by ScopedSpan.
  static TraceRing& Global();

  explicit TraceRing(size_t capacity = 256);

  void Record(SpanNode root);

  /// Attaches (or, with nullptr, detaches) a persistent sink that sees
  /// every future root. The sink is not owned and must stay valid until
  /// detached; detach only while no spans are completing (end of a run).
  void SetSink(TraceSink* sink);

  /// Oldest-first copy of the retained roots.
  std::vector<SpanNode> Snapshot() const;

  /// Number of roots evicted (or dropped) since the last Clear().
  size_t dropped() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanNode> ring_;  // circular, `next_` is the write cursor
  size_t next_ = 0;
  size_t size_ = 0;
  size_t dropped_ = 0;
  TraceSink* sink_ = nullptr;
};

#ifndef BRIQ_NO_METRICS

/// RAII span: times its scope and attaches itself to the span opened
/// directly above it on the same thread, or — when it is the outermost
/// span of the thread — records the finished tree into
/// TraceRing::Global(). Must be stack-scoped (construction and destruction
/// on one thread, LIFO).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  friend void AttachLeafSpan(std::string_view, double);
  friend std::vector<std::pair<std::string, double>> OpenSpanStageSeconds();

  SpanNode node_;
  ScopedSpan* parent_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point root_start_;
};

/// Attaches a pre-aggregated leaf (e.g. classifier time summed over many
/// scattered calls) to the innermost open span of this thread; no-op when
/// no span is open. The leaf's start offset is -1 (synthetic).
void AttachLeafSpan(std::string_view name, double duration_seconds);

/// RAII ambient trace identity for the current thread: every root span
/// that completes while a ScopedTraceId is live is tagged with its id.
/// Nests (the previous id is restored on destruction) so a server worker
/// can wrap each request without clobbering outer context. Must be
/// stack-scoped on one thread, like ScopedSpan.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::string trace_id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  std::string previous_;
};

/// The thread's ambient trace id ("" outside any ScopedTraceId).
const std::string& CurrentTraceId();

/// Per-stage seconds of the innermost *open* span on this thread:
/// completed descendant spans, summed by name, in first-seen depth-first
/// order. Lets the code that opened a root span (e.g. the HTTP worker)
/// read its request's stage breakdown before the root closes — same
/// thread, no locking. Empty outside any span.
std::vector<std::pair<std::string, double>> OpenSpanStageSeconds();

#else  // BRIQ_NO_METRICS

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
};

inline void AttachLeafSpan(std::string_view, double) {}

class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::string) {}
};

inline const std::string& CurrentTraceId() {
  static const std::string kEmpty;
  return kEmpty;
}

inline std::vector<std::pair<std::string, double>> OpenSpanStageSeconds() {
  return {};
}

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs

#endif  // BRIQ_OBS_TRACE_H_
