#ifndef BRIQ_OBS_TRACE_EXPORT_H_
#define BRIQ_OBS_TRACE_EXPORT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/json.h"
#include "util/result.h"

namespace briq::obs {

/// Persistent sampled trace sink (DESIGN.md §5e): exports completed span
/// trees into Chrome trace-event JSON ("traceEvents" array of "X" complete
/// events with pid/tid/ts/dur) loadable in Perfetto / about:tracing. The
/// TraceRing keeps only the newest `capacity` roots; a TraceExporter
/// attached as the ring's sink survives arbitrarily long runs by keeping a
/// random fraction of roots plus — always — the slowest `slowest_per_window`
/// roots of each flush window (a tail-latency reservoir), under a bounded
/// total event budget.
///
/// Under -DBRIQ_NO_METRICS no spans are ever recorded, so the exporter is
/// inert by construction (its file holds an empty "traceEvents" array); the
/// class itself needs no stubbing.

/// Converts span trees to a Chrome trace-event JSON object:
///   {"traceEvents": [{"name", "cat", "ph": "X", "pid", "tid",
///                     "ts" (microseconds), "dur" (microseconds),
///                     "args": {...}}, ...],
///    "displayTimeUnit": "ms"}
/// Root i renders on its own track (tid = i + 1, pid = 1) at timeline
/// offset `base_ts_seconds[i]`; pass an empty vector to lay the roots out
/// sequentially (each starts where the previous ended). Synthetic
/// aggregated leaves (start_seconds < 0, see AttachLeafSpan) are emitted at
/// their parent's start with {"args": {"aggregated": true}}.
util::Json ChromeTraceJson(const std::vector<SpanNode>& roots,
                           const std::vector<double>& base_ts_seconds = {});

/// Tuning knobs of a TraceExporter.
struct TraceExportOptions {
  /// Output file, rewritten atomically (tmp + rename) on every flush.
  std::string path;
  /// Random fraction of roots kept regardless of speed, in [0, 1].
  double sample_fraction = 0.01;
  /// The slowest k roots of every flush window are always kept.
  size_t slowest_per_window = 4;
  /// Roots at least this slow (seconds) bypass sampling entirely and are
  /// always retained (still subject to `max_roots`). 0 disables. Lets a
  /// server pin every slow request's trace regardless of sample_fraction.
  double always_keep_slower_than_seconds = 0.0;
  /// Hard cap on retained roots across the run; once reached, further
  /// roots are dropped (counted, warned once per flush window).
  size_t max_roots = 2000;
  /// Seed of the deterministic sampling RNG.
  uint64_t seed = 1234;
};

class TraceExporter : public TraceSink {
 public:
  explicit TraceExporter(TraceExportOptions options);
  /// Detaches (if attached) and writes any pending window.
  ~TraceExporter() override;

  TraceExporter(const TraceExporter&) = delete;
  TraceExporter& operator=(const TraceExporter&) = delete;

  /// Registers this exporter as `ring`'s sink (default: the global ring).
  void Attach(TraceRing* ring = nullptr);
  /// Unregisters from the attached ring. Safe to call when not attached.
  void Detach();

  /// TraceSink: sample-or-reservoir one completed root. Thread-safe.
  void OnRootSpan(const SpanNode& root) override;

  /// Closes the current window (promoting its slowest-k reservoir) and
  /// rewrites `options.path` with everything retained so far. Called by
  /// MetricsFlusher once per flush when wired together, and by the
  /// destructor. Thread-safe; serializes with OnRootSpan.
  util::Status Flush();

  /// Roots retained (written on the next Flush) and dropped so far.
  size_t retained_roots() const;
  size_t dropped_roots() const;

 private:
  /// Moves the window's slowest-k reservoir into retained_. Caller holds
  /// mu_.
  void CloseWindowLocked();

  const TraceExportOptions options_;
  TraceRing* attached_ = nullptr;

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  /// Roots kept for export, with their arrival offset on the timeline.
  struct Kept {
    SpanNode root;
    double base_ts_seconds = 0.0;
    bool sampled = false;  // true: random sample; false: slowest-k
  };
  std::vector<Kept> retained_;
  /// Current window's slowest-k candidates (not randomly sampled), kept as
  /// a min-heap on duration so a window of any length holds at most k.
  std::vector<Kept> window_slowest_;
  size_t dropped_ = 0;
  size_t warned_dropped_ = 0;  // dropped_ value at the last warning
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace briq::obs

#endif  // BRIQ_OBS_TRACE_EXPORT_H_
