#include "obs/rolling.h"

#ifndef BRIQ_NO_METRICS

#include <algorithm>

namespace briq::obs {

namespace {
int64_t EpochOf(double now_seconds, double sub_seconds) {
  const int64_t epoch = static_cast<int64_t>(now_seconds / sub_seconds);
  return epoch < 0 ? 0 : epoch;
}

double MonotonicSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

// --- RollingHistogram -------------------------------------------------------

RollingHistogram::RollingHistogram(std::vector<double> bounds,
                                   double window_seconds, size_t sub_windows)
    : bounds_(std::move(bounds)),
      sub_seconds_(window_seconds / (sub_windows < 1 ? 1 : sub_windows)),
      num_slots_(sub_windows < 1 ? 1 : sub_windows),
      slots_(num_slots_),
      t0_(std::chrono::steady_clock::now()) {
  for (Slot& slot : slots_) {
    slot.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

double RollingHistogram::NowSeconds() const { return MonotonicSeconds(t0_); }

RollingHistogram::Slot* RollingHistogram::AcquireSlot(int64_t epoch) {
  Slot& slot = slots_[static_cast<size_t>(epoch) % num_slots_];
  const int64_t tenant = slot.epoch.load(std::memory_order_acquire);
  if (tenant == epoch) return &slot;
  if (tenant > epoch) return nullptr;  // laggard clock: drop, don't corrupt
  // First recorder of this sub-window recycles the slot: zero it, then
  // publish the new epoch. Racing recorders either wait here or, having
  // already loaded the new epoch, add after the release store — never into
  // half-zeroed state with a *newer* tenant.
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const int64_t again = slot.epoch.load(std::memory_order_relaxed);
  if (again == epoch) return &slot;
  if (again > epoch) return nullptr;
  for (auto& bucket : slot.buckets) {
    bucket.store(0, std::memory_order_relaxed);
  }
  slot.count.store(0, std::memory_order_relaxed);
  slot.sum.store(0.0, std::memory_order_relaxed);
  slot.epoch.store(epoch, std::memory_order_release);
  return &slot;
}

void RollingHistogram::RecordAt(double value, double now_seconds) {
  Slot* slot = AcquireSlot(EpochOf(now_seconds, sub_seconds_));
  if (slot == nullptr) return;
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  slot->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot RollingHistogram::SnapshotAt(double now_seconds) const {
  const int64_t current = EpochOf(now_seconds, sub_seconds_);
  const int64_t oldest = current - static_cast<int64_t>(num_slots_) + 1;
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Slot& slot : slots_) {
    const int64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > current) continue;  // expired or unused
    for (size_t i = 0; i < slot.buckets.size(); ++i) {
      snapshot.counts[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.count += slot.count.load(std::memory_order_relaxed);
    snapshot.sum += slot.sum.load(std::memory_order_relaxed);
  }
  return snapshot;
}

// --- RollingCounter ---------------------------------------------------------

RollingCounter::RollingCounter(double window_seconds, size_t sub_windows)
    : sub_seconds_(window_seconds / (sub_windows < 1 ? 1 : sub_windows)),
      num_slots_(sub_windows < 1 ? 1 : sub_windows),
      slots_(num_slots_),
      t0_(std::chrono::steady_clock::now()) {}

double RollingCounter::NowSeconds() const { return MonotonicSeconds(t0_); }

RollingCounter::Slot* RollingCounter::AcquireSlot(int64_t epoch) {
  Slot& slot = slots_[static_cast<size_t>(epoch) % num_slots_];
  const int64_t tenant = slot.epoch.load(std::memory_order_acquire);
  if (tenant == epoch) return &slot;
  if (tenant > epoch) return nullptr;
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const int64_t again = slot.epoch.load(std::memory_order_relaxed);
  if (again == epoch) return &slot;
  if (again > epoch) return nullptr;
  slot.count.store(0, std::memory_order_relaxed);
  slot.epoch.store(epoch, std::memory_order_release);
  return &slot;
}

void RollingCounter::AddAt(uint64_t n, double now_seconds) {
  Slot* slot = AcquireSlot(EpochOf(now_seconds, sub_seconds_));
  if (slot != nullptr) slot->count.fetch_add(n, std::memory_order_relaxed);
}

uint64_t RollingCounter::CountAt(double now_seconds) const {
  const int64_t current = EpochOf(now_seconds, sub_seconds_);
  const int64_t oldest = current - static_cast<int64_t>(num_slots_) + 1;
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const int64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > current) continue;
    total += slot.count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace briq::obs

#endif  // BRIQ_NO_METRICS
