#ifndef BRIQ_OBS_ACCESS_LOG_H_
#define BRIQ_OBS_ACCESS_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/status.h"

#ifndef BRIQ_NO_METRICS
#include <fstream>
#include <mutex>
#endif

namespace briq::obs {

/// Structured per-request access log (DESIGN.md §5i): one JSON object per
/// line, written append-only with the flusher's crash-safety contract —
/// every line is complete JSON flushed to the OS before Write returns, so
/// a crash loses at most the request being written, never tears a line.
///
/// Rotation is size-based: when the active file would exceed `max_bytes`,
/// it is atomically renamed to `<path>.1` (prior generations shift to
/// `.2`, `.3`, ... up to `max_rotated_files`, the oldest deleted) and a
/// fresh file is started. Renames are atomic within a filesystem, so every
/// line ever written is in exactly one generation — none are lost or
/// duplicated mid-rotation.
///
/// With -DBRIQ_NO_METRICS the class is an inert stub: Open() succeeds
/// without touching the filesystem and Write() is a no-op.

/// One request, as logged. `stage_seconds` carries the per-stage span
/// breakdown (obs::OpenSpanStageSeconds) in pipeline order.
struct AccessLogRecord {
  std::string trace_id;
  std::string method;
  std::string path;
  int status = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  double wall_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  /// Wall-clock time of the request (unix seconds, system_clock).
  double unix_seconds = 0.0;
  std::vector<std::pair<std::string, double>> stage_seconds;
};

/// Serialization used for every line; exposed so tests and offline readers
/// share one schema definition.
util::Json AccessLogRecordJson(const AccessLogRecord& record);

/// Tuning knobs of an AccessLog.
struct AccessLogOptions {
  /// Active log file; opened in append mode (a restart continues the file).
  std::string path;
  /// Rotate once the active file exceeds this size. 0 disables rotation.
  uint64_t max_bytes = 64ull << 20;
  /// Rotated generations kept (`<path>.1` newest ... `<path>.N` oldest).
  size_t max_rotated_files = 3;
};

#ifndef BRIQ_NO_METRICS

class AccessLog {
 public:
  explicit AccessLog(AccessLogOptions options);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens (or creates) the active file in append mode.
  util::Status Open();

  /// Serializes `record` as one JSONL line and flushes it. Thread-safe;
  /// write errors latch into status() and further writes are dropped
  /// (serving never fails because its log disk is full).
  void Write(const AccessLogRecord& record);

  /// Flushes and closes the active file. Idempotent; run by the destructor.
  void Close();

  /// Lines successfully written since Open (across rotations).
  size_t lines_written() const;
  /// Rotations performed since Open.
  size_t rotations() const;
  /// First write/rotate error, if any (sticky).
  util::Status status() const;

 private:
  /// Shifts generations and reopens a fresh active file. Caller holds mu_.
  void RotateLocked();

  const AccessLogOptions options_;
  mutable std::mutex mu_;
  std::ofstream out_;
  bool open_ = false;
  uint64_t active_bytes_ = 0;
  size_t lines_ = 0;
  size_t rotations_ = 0;
  util::Status status_;
};

#else  // BRIQ_NO_METRICS

class AccessLog {
 public:
  explicit AccessLog(AccessLogOptions) {}
  util::Status Open() { return util::Status::OK(); }
  void Write(const AccessLogRecord&) {}
  void Close() {}
  size_t lines_written() const { return 0; }
  size_t rotations() const { return 0; }
  util::Status status() const { return util::Status::OK(); }
};

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs

#endif  // BRIQ_OBS_ACCESS_LOG_H_
