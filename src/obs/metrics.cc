#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace briq::obs {

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

std::vector<double> DefaultLatencyBuckets() {
  return ExponentialBuckets(1e-5, 4.0, 10);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Smallest rank that satisfies the quantile; ceil keeps Percentile(1.0)
  // at the last populated edge rather than past it.
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return i < bounds.size() ? bounds[i]
                               : std::numeric_limits<double>::infinity();
    }
  }
  return bounds.empty() ? 0.0 : std::numeric_limits<double>::infinity();
}

#ifndef BRIQ_NO_METRICS

namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

// --- Counter ----------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge ------------------------------------------------------------------

void Gauge::SetMax(int64_t v) {
  int64_t current = value_.load(std::memory_order_relaxed);
  while (current < v && !value_.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kMetricShards) {
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  // lower_bound: bounds are inclusive upper edges (value <= bound), the
  // Prometheus `le` convention.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& shard = shards_[internal::ThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < shard.buckets.size(); ++i) {
      snapshot.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- MetricRegistry ---------------------------------------------------------

MetricRegistry& MetricRegistry::Global() {
  // Leaked: instrument pointers cached in function-local statics at call
  // sites must stay valid through static destruction.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  snapshot.capture_unix_seconds =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  return snapshot;
}

std::map<std::string, int64_t> MetricRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> values;
  for (const auto& [name, gauge] : gauges_) {
    values[name] = gauge->Value();
  }
  return values;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

// --- QueueTelemetry ---------------------------------------------------------

QueueTelemetry::QueueTelemetry(const std::string& prefix)
    : depth_(MetricRegistry::Global().GetGauge(prefix + ".queue_depth")),
      depth_peak_(
          MetricRegistry::Global().GetGauge(prefix + ".queue_depth_peak")),
      producer_blocked_(MetricRegistry::Global().GetHistogram(
          prefix + ".producer_blocked_seconds", DefaultLatencyBuckets())),
      consumer_blocked_(MetricRegistry::Global().GetHistogram(
          prefix + ".consumer_blocked_seconds", DefaultLatencyBuckets())) {}

void QueueTelemetry::OnDepth(size_t depth) {
  depth_->Set(static_cast<int64_t>(depth));
  depth_peak_->SetMax(static_cast<int64_t>(depth));
}

void QueueTelemetry::OnProducerBlocked(double seconds) {
  producer_blocked_->Observe(seconds);
}

void QueueTelemetry::OnConsumerBlocked(double seconds) {
  consumer_blocked_->Observe(seconds);
}

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs
