#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace briq::obs {

TraceRing& TraceRing::Global() {
  // Leaked for the same reason as MetricRegistry::Global().
  static TraceRing* ring = new TraceRing();
  return *ring;
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceRing::Record(SpanNode root) {
  // The sink runs outside the ring mutex so a sink that is mid-flush (e.g.
  // TraceExporter rewriting its file) never stalls other recording threads
  // on this ring's lock on top of its own.
  TraceSink* sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
  }
  if (sink != nullptr) sink->OnRootSpan(root);
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == capacity_) ++dropped_;
  ring_[next_] = std::move(root);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

void TraceRing::SetSink(TraceSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

std::vector<SpanNode> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanNode> out;
  out.reserve(size_);
  // Oldest element sits at `next_` once the ring has wrapped.
  const size_t first = size_ == capacity_ ? next_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

size_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (SpanNode& node : ring_) node = SpanNode{};
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

#ifndef BRIQ_NO_METRICS

namespace {
/// Innermost open span of this thread (nullptr outside any span).
thread_local ScopedSpan* t_current_span = nullptr;
/// Ambient trace id of this thread ("" outside any ScopedTraceId).
thread_local std::string t_trace_id;

void SumStages(const SpanNode& node,
               std::vector<std::pair<std::string, double>>* stages) {
  for (const SpanNode& child : node.children) {
    auto it = std::find_if(
        stages->begin(), stages->end(),
        [&](const auto& stage) { return stage.first == child.name; });
    if (it == stages->end()) {
      stages->emplace_back(child.name, child.duration_seconds);
    } else {
      it->second += child.duration_seconds;
    }
    SumStages(child, stages);
  }
}
}  // namespace

ScopedSpan::ScopedSpan(std::string_view name)
    : parent_(t_current_span), start_(std::chrono::steady_clock::now()) {
  node_.name = std::string(name);
  root_start_ = parent_ == nullptr ? start_ : parent_->root_start_;
  t_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  const auto now = std::chrono::steady_clock::now();
  node_.start_seconds =
      std::chrono::duration<double>(start_ - root_start_).count();
  node_.duration_seconds = std::chrono::duration<double>(now - start_).count();
  t_current_span = parent_;
  if (parent_ != nullptr) {
    parent_->node_.children.push_back(std::move(node_));
  } else {
    node_.trace_id = t_trace_id;
    TraceRing::Global().Record(std::move(node_));
  }
}

void AttachLeafSpan(std::string_view name, double duration_seconds) {
  if (t_current_span == nullptr) return;
  SpanNode leaf;
  leaf.name = std::string(name);
  leaf.start_seconds = -1.0;  // aggregated: no single start offset exists
  leaf.duration_seconds = duration_seconds;
  t_current_span->node_.children.push_back(std::move(leaf));
}

ScopedTraceId::ScopedTraceId(std::string trace_id)
    : previous_(std::move(t_trace_id)) {
  t_trace_id = std::move(trace_id);
}

ScopedTraceId::~ScopedTraceId() { t_trace_id = std::move(previous_); }

const std::string& CurrentTraceId() { return t_trace_id; }

std::vector<std::pair<std::string, double>> OpenSpanStageSeconds() {
  std::vector<std::pair<std::string, double>> stages;
  if (t_current_span != nullptr) SumStages(t_current_span->node_, &stages);
  return stages;
}

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs
