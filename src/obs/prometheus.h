#ifndef BRIQ_OBS_PROMETHEUS_H_
#define BRIQ_OBS_PROMETHEUS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

#ifndef BRIQ_NO_METRICS
#include <atomic>
#include <memory>
#include <thread>

#include "util/tcp_listener.h"
#endif

namespace briq::obs {

/// Prometheus text exposition (format 0.0.4) of BriQ metrics, plus the
/// minimal loopback HTTP responder behind `briq_tool ... --serve-port P`.
/// DESIGN.md §5e documents the naming contract.

/// Maps an instrument name to a valid Prometheus metric name:
/// `briq.<layer>.<name>` becomes `briq_<layer>_<name>`, and any character
/// outside [a-zA-Z0-9_:] becomes '_' (a leading digit gains a '_' prefix).
std::string PrometheusName(const std::string& name);

/// Renders a snapshot in Prometheus text format:
///   - counters as `<name>_total` with `# TYPE ... counter`,
///   - gauges verbatim with `# TYPE ... gauge`,
///   - histograms as cumulative `<name>_bucket{le="..."}` series (the
///     registry's inclusive-upper-edge buckets ARE `le` buckets — no
///     re-binning), a final `le="+Inf"` bucket equal to `_count`, plus
///     `_sum` and `_count`.
/// Every family gets `# HELP` and `# TYPE` lines. Works in both builds
/// (under -DBRIQ_NO_METRICS the snapshot is simply empty).
///
/// When `scrape_unix_seconds` >= 0 two freshness gauges are appended so a
/// scraper can tell a live exporter serving stale data from a fresh one:
///   briq_scrape_timestamp_seconds  wall-clock time this page was rendered
///   briq_snapshot_age_seconds      scrape time minus the snapshot's
///                                  capture_unix_seconds (clamped at 0;
///                                  omitted when the capture time is
///                                  unknown, i.e. 0)
/// The default -1 omits both — deterministic output for tests and diffs.
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot,
                                double scrape_unix_seconds = -1.0);

/// Fleet-wide exposition (DESIGN.md §5j): renders `merged` (the
/// SnapshotMerge aggregate) with, for every counter and gauge family, the
/// unlabelled fleet-total sample followed by one `{worker="N"}` sample per
/// worker that reports the instrument — one page answers both "how fast is
/// the fleet" and "which worker is the straggler". Histograms render
/// merged-only (per-worker bucket series would multiply the page size for
/// little diagnostic value; per-worker latency lives in /statusz). The
/// freshness gauges follow the MetricsToPrometheus contract, keyed on the
/// merged snapshot's capture time (the newest worker capture).
std::string FleetMetricsToPrometheus(
    const MetricsSnapshot& merged,
    const std::vector<std::pair<int, MetricsSnapshot>>& workers,
    double scrape_unix_seconds = -1.0);

/// Appends one double-valued gauge family to `out`: a single HELP/TYPE
/// pair followed by one sample line per (labels, value) entry, `%.9g`
/// value rendering. The registry's gauges are integral; families derived
/// from richer state — the serving layer's rolling-window percentiles and
/// rates — use this to join the same exposition page. `name` is mangled
/// via PrometheusName; each entry's labels must be pre-rendered
/// ('key="value",...') or empty for an unlabelled sample.
void AppendPrometheusGauge(
    std::string* out, const std::string& name, const std::string& help,
    const std::vector<std::pair<std::string, double>>& series);

/// Blocking single-threaded HTTP responder serving the global registry:
///   GET /metrics      -> 200 text/plain; version=0.0.4 exposition
///   GET /healthz      -> 200 "ok"
///   GET /quitquitquit -> 200; quit_requested() flips true (lets a linger
///                        loop end early)
///   anything else     -> 404
/// One connection at a time, accept loop polling a stop flag — deliberate:
/// this is a diagnostics endpoint scraped every few seconds, not a server.
/// Under -DBRIQ_NO_METRICS, Start() returns FailedPrecondition.
class MetricsHttpServer {
 public:
  MetricsHttpServer();
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  util::Status Start(uint16_t port);

  /// Stops the accept thread and closes the socket. Idempotent.
  void Stop();

  /// The bound port once Start() succeeded, else 0.
  uint16_t port() const;

  /// Requests answered so far (any path).
  size_t requests_served() const;

  /// True once a client hit /quitquitquit.
  bool quit_requested() const;

#ifndef BRIQ_NO_METRICS

 private:
  void Loop();
  void HandleConnection(int fd);

  std::unique_ptr<util::TcpListener> listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> requests_{0};
  std::atomic<bool> quit_{false};
#endif  // BRIQ_NO_METRICS
};

}  // namespace briq::obs

#endif  // BRIQ_OBS_PROMETHEUS_H_
