#include "obs/export.h"

#include <cstdio>
#include <fstream>

#include "util/table_printer.h"

namespace briq::obs {

namespace {

std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

util::Json MetricsToJson(const MetricsSnapshot& snapshot) {
  util::Json counters = util::Json::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
  }
  util::Json gauges = util::Json::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, static_cast<double>(value));
  }
  util::Json histograms = util::Json::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    util::Json bounds = util::Json::Array();
    for (double b : h.bounds) bounds.Append(b);
    util::Json counts = util::Json::Array();
    for (uint64_t c : h.counts) counts.Append(c);
    util::Json obj = util::Json::Object();
    obj.Set("bounds", std::move(bounds));
    obj.Set("counts", std::move(counts));
    obj.Set("sum", h.sum);
    obj.Set("count", h.count);
    histograms.Set(name, std::move(obj));
  }
  util::Json out = util::Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

util::Json SpanToJson(const SpanNode& span) {
  util::Json obj = util::Json::Object();
  obj.Set("name", span.name);
  obj.Set("start_seconds", span.start_seconds);
  obj.Set("duration_seconds", span.duration_seconds);
  util::Json children = util::Json::Array();
  for (const SpanNode& child : span.children) {
    children.Append(SpanToJson(child));
  }
  obj.Set("children", std::move(children));
  return obj;
}

util::Json TracesToJson(const std::vector<SpanNode>& roots) {
  util::Json out = util::Json::Array();
  for (const SpanNode& root : roots) out.Append(SpanToJson(root));
  return out;
}

util::Result<SpanNode> SpanFromJson(const util::Json& json) {
  if (!json.is_object()) {
    return util::Status::ParseError("span is not a JSON object");
  }
  for (const char* key :
       {"name", "start_seconds", "duration_seconds", "children"}) {
    if (!json.Has(key)) {
      return util::Status::ParseError("span is missing '" + std::string(key) +
                                      "'");
    }
  }
  SpanNode span;
  span.name = json.at("name").AsString();
  span.start_seconds = json.at("start_seconds").AsDouble();
  span.duration_seconds = json.at("duration_seconds").AsDouble();
  for (const util::Json& child : json.at("children").items()) {
    BRIQ_ASSIGN_OR_RETURN(SpanNode node, SpanFromJson(child));
    span.children.push_back(std::move(node));
  }
  return span;
}

std::string MetricsTable(const MetricsSnapshot& snapshot) {
  util::TablePrinter printer("metrics snapshot");
  printer.SetHeader({"instrument", "type", "count", "value / mean", "sum"});
  for (const auto& [name, value] : snapshot.counters) {
    printer.AddRow({name, "counter", "", std::to_string(value), ""});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    printer.AddRow({name, "gauge", "", std::to_string(value), ""});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    printer.AddRow({name, "histogram", std::to_string(h.count),
                    FmtDouble(h.Mean()), FmtDouble(h.sum)});
  }
  return printer.ToString();
}

util::Json ObservabilitySnapshotJson() {
  util::Json out = util::Json::Object();
  out.Set("metrics", MetricsToJson(MetricRegistry::Global().Snapshot()));
  out.Set("traces", TracesToJson(TraceRing::Global().Snapshot()));
  return out;
}

util::Status WriteMetricsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return util::Status::NotFound("cannot open metrics output: " + path);
  }
  out << ObservabilitySnapshotJson().Dump(/*indent=*/2) << "\n";
  if (!out.good()) {
    return util::Status::Internal("metrics write failed: " + path);
  }
  return util::Status::OK();
}

std::map<std::string, double> AlignStageSecondsDelta(
    const MetricsSnapshot& before, const MetricsSnapshot& after) {
  constexpr char kPrefix[] = "briq.align.";
  constexpr char kSuffix[] = "_seconds";
  std::map<std::string, double> stages;
  for (const auto& [name, h] : after.histograms) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1 ||
        name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                     kSuffix) != 0) {
      continue;
    }
    const std::string stage = name.substr(
        sizeof(kPrefix) - 1,
        name.size() - (sizeof(kPrefix) - 1) - (sizeof(kSuffix) - 1));
    double delta = h.sum;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) delta -= it->second.sum;
    if (delta > 0.0) stages[stage] = delta;
  }
  return stages;
}

}  // namespace briq::obs
