#include "obs/prometheus.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <string>

#include "util/logging.h"

#ifndef BRIQ_NO_METRICS
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#endif

namespace briq::obs {

namespace {

/// Shortest round-trippable rendering of a double for le labels and sums.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot,
                                double scrape_unix_seconds) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name) + "_total";
    out += "# HELP " + prom + " BriQ counter " + name + "\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# HELP " + prom + " BriQ gauge " + name + "\n";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# HELP " + prom + " BriQ histogram " + name + "\n";
    out += "# TYPE " + prom + " histogram\n";
    // The registry's buckets are inclusive upper edges, exactly the
    // Prometheus `le` convention, so the cumulative sum maps directly.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += prom + "_bucket{le=\"" + FormatDouble(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum " + FormatDouble(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  if (scrape_unix_seconds >= 0.0) {
    out +=
        "# HELP briq_scrape_timestamp_seconds Wall-clock time this "
        "exposition was rendered\n";
    out += "# TYPE briq_scrape_timestamp_seconds gauge\n";
    out += "briq_scrape_timestamp_seconds " +
           FormatDouble(scrape_unix_seconds) + "\n";
    if (snapshot.capture_unix_seconds > 0.0) {
      const double age = scrape_unix_seconds - snapshot.capture_unix_seconds;
      out +=
          "# HELP briq_snapshot_age_seconds Seconds between the metrics "
          "snapshot and this scrape\n";
      out += "# TYPE briq_snapshot_age_seconds gauge\n";
      out += "briq_snapshot_age_seconds " +
             FormatDouble(age > 0.0 ? age : 0.0) + "\n";
    }
  }
  return out;
}

std::string FleetMetricsToPrometheus(
    const MetricsSnapshot& merged,
    const std::vector<std::pair<int, MetricsSnapshot>>& workers,
    double scrape_unix_seconds) {
  std::string out;
  for (const auto& [name, value] : merged.counters) {
    const std::string prom = PrometheusName(name) + "_total";
    out += "# HELP " + prom + " BriQ counter " + name + " (fleet)\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
    for (const auto& [worker, snapshot] : workers) {
      auto it = snapshot.counters.find(name);
      if (it == snapshot.counters.end()) continue;
      out += prom + "{worker=\"" + std::to_string(worker) + "\"} " +
             std::to_string(it->second) + "\n";
    }
  }
  for (const auto& [name, value] : merged.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# HELP " + prom + " BriQ gauge " + name + " (fleet)\n";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
    for (const auto& [worker, snapshot] : workers) {
      auto it = snapshot.gauges.find(name);
      if (it == snapshot.gauges.end()) continue;
      out += prom + "{worker=\"" + std::to_string(worker) + "\"} " +
             std::to_string(it->second) + "\n";
    }
  }
  for (const auto& [name, h] : merged.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# HELP " + prom + " BriQ histogram " + name + " (fleet)\n";
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += prom + "_bucket{le=\"" + FormatDouble(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum " + FormatDouble(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  if (scrape_unix_seconds >= 0.0) {
    out +=
        "# HELP briq_scrape_timestamp_seconds Wall-clock time this "
        "exposition was rendered\n";
    out += "# TYPE briq_scrape_timestamp_seconds gauge\n";
    out += "briq_scrape_timestamp_seconds " +
           FormatDouble(scrape_unix_seconds) + "\n";
    if (merged.capture_unix_seconds > 0.0) {
      const double age = scrape_unix_seconds - merged.capture_unix_seconds;
      out +=
          "# HELP briq_snapshot_age_seconds Seconds between the newest "
          "worker snapshot and this scrape\n";
      out += "# TYPE briq_snapshot_age_seconds gauge\n";
      out += "briq_snapshot_age_seconds " +
             FormatDouble(age > 0.0 ? age : 0.0) + "\n";
    }
  }
  return out;
}

void AppendPrometheusGauge(
    std::string* out, const std::string& name, const std::string& help,
    const std::vector<std::pair<std::string, double>>& series) {
  const std::string prom = PrometheusName(name);
  *out += "# HELP " + prom + " " + help + "\n";
  *out += "# TYPE " + prom + " gauge\n";
  for (const auto& [labels, value] : series) {
    *out += prom;
    if (!labels.empty()) *out += "{" + labels + "}";
    *out += " " + FormatDouble(value) + "\n";
  }
}

#ifndef BRIQ_NO_METRICS

MetricsHttpServer::MetricsHttpServer() = default;

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

util::Status MetricsHttpServer::Start(uint16_t port) {
  if (running_.load()) {
    return util::Status::FailedPrecondition("metrics server already started");
  }
  util::Result<util::TcpListener> listener = util::TcpListener::Listen(port);
  if (!listener.ok()) return listener.status();
  listener_ = std::make_unique<util::TcpListener>(std::move(listener).value());
  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return util::Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

uint16_t MetricsHttpServer::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

size_t MetricsHttpServer::requests_served() const { return requests_.load(); }

bool MetricsHttpServer::quit_requested() const { return quit_.load(); }

void MetricsHttpServer::Loop() {
  while (!stop_.load()) {
    const int fd = listener_->AcceptOnce(/*timeout_seconds=*/0.1);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Read until the end of the request head (we ignore any body). A pollable
  // 2s budget keeps a stalled client from wedging the single thread.
  std::string request;
  char buf[2048];
  for (int spins = 0; spins < 20; ++spins) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      break;
    }
  }

  std::string method;
  std::string path;
  const size_t sp1 = request.find(' ');
  if (sp1 != std::string::npos) {
    method = request.substr(0, sp1);
    const size_t sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  }

  std::string status_line = "HTTP/1.1 200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status_line = "HTTP/1.1 405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    const double now = std::chrono::duration<double>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
    body = MetricsToPrometheus(MetricRegistry::Global().Snapshot(), now);
  } else if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/quitquitquit") {
    quit_.store(true);
    body = "quitting\n";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
  }

  const std::string response = status_line +
                               "\r\nContent-Type: " + content_type +
                               "\r\nContent-Length: " +
                               std::to_string(body.size()) +
                               "\r\nConnection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  requests_.fetch_add(1);
}

#else  // BRIQ_NO_METRICS: no sockets, no thread.

MetricsHttpServer::MetricsHttpServer() = default;
MetricsHttpServer::~MetricsHttpServer() = default;

util::Status MetricsHttpServer::Start(uint16_t) {
  return util::Status::FailedPrecondition(
      "metrics server unavailable: built with BRIQ_NO_METRICS");
}

void MetricsHttpServer::Stop() {}
uint16_t MetricsHttpServer::port() const { return 0; }
size_t MetricsHttpServer::requests_served() const { return 0; }
bool MetricsHttpServer::quit_requested() const { return false; }

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs
