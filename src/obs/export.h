#ifndef BRIQ_OBS_EXPORT_H_
#define BRIQ_OBS_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/result.h"

namespace briq::obs {

/// Serialization of metric and trace snapshots: JSON for machines
/// (`--metrics-out`, BENCH_throughput.json stage breakdowns) and a
/// util::TablePrinter view for humans.

/// {"counters": {name: value}, "gauges": {name: value},
///  "histograms": {name: {"bounds": [...], "counts": [...], "sum": s,
///                        "count": n}}}
util::Json MetricsToJson(const MetricsSnapshot& snapshot);

/// {"name": n, "start_seconds": s, "duration_seconds": d,
///  "children": [...]} — `start_seconds` is -1 for aggregated leaves.
util::Json SpanToJson(const SpanNode& span);
util::Json TracesToJson(const std::vector<SpanNode>& roots);

/// Inverse of SpanToJson (strict; used by trace round-trip tests).
util::Result<SpanNode> SpanFromJson(const util::Json& json);

/// Aligned ASCII table of a snapshot: counters and gauges with their
/// values, histograms with count / mean / sum.
std::string MetricsTable(const MetricsSnapshot& snapshot);

/// {"metrics": ..., "traces": [...]} from the global registry and ring.
util::Json ObservabilitySnapshotJson();

/// Writes ObservabilitySnapshotJson() to `path` (pretty-printed).
util::Status WriteMetricsJson(const std::string& path);

/// Per-stage wall-clock deltas between two snapshots, keyed by stage name
/// ("prepare", "filter", "classify", "resolve", ...): the sum delta of
/// every `briq.align.<stage>_seconds` histogram. Stages that did not move
/// are omitted.
std::map<std::string, double> AlignStageSecondsDelta(
    const MetricsSnapshot& before, const MetricsSnapshot& after);

}  // namespace briq::obs

#endif  // BRIQ_OBS_EXPORT_H_
