#include "obs/access_log.h"

#include <filesystem>
#include <string>

namespace briq::obs {

util::Json AccessLogRecordJson(const AccessLogRecord& record) {
  util::Json line = util::Json::Object();
  line.Set("trace_id", record.trace_id);
  line.Set("method", record.method);
  line.Set("path", record.path);
  line.Set("status", record.status);
  line.Set("bytes_in", static_cast<double>(record.bytes_in));
  line.Set("bytes_out", static_cast<double>(record.bytes_out));
  line.Set("wall_seconds", record.wall_seconds);
  line.Set("queue_wait_seconds", record.queue_wait_seconds);
  line.Set("unix_seconds", record.unix_seconds);
  util::Json stages = util::Json::Object();
  for (const auto& [name, seconds] : record.stage_seconds) {
    stages.Set(name, seconds);
  }
  line.Set("stages", std::move(stages));
  return line;
}

#ifndef BRIQ_NO_METRICS

namespace {
std::string GenerationPath(const std::string& path, size_t generation) {
  return path + "." + std::to_string(generation);
}
}  // namespace

AccessLog::AccessLog(AccessLogOptions options)
    : options_(std::move(options)) {}

AccessLog::~AccessLog() { Close(); }

util::Status AccessLog::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return util::Status::Internal("access log already open");
  out_.open(options_.path, std::ios::app);
  if (!out_) {
    return util::Status::NotFound("cannot open access log: " + options_.path);
  }
  std::error_code ec;
  const auto existing = std::filesystem::file_size(options_.path, ec);
  active_bytes_ = ec ? 0 : static_cast<uint64_t>(existing);
  open_ = true;
  return util::Status::OK();
}

void AccessLog::RotateLocked() {
  out_.close();
  std::error_code ec;
  // Shift generations oldest-first so each rename lands on a free name.
  const size_t keep = options_.max_rotated_files < 1
                          ? 1
                          : options_.max_rotated_files;
  std::filesystem::remove(GenerationPath(options_.path, keep), ec);
  for (size_t g = keep; g > 1; --g) {
    ec.clear();
    std::filesystem::rename(GenerationPath(options_.path, g - 1),
                            GenerationPath(options_.path, g), ec);
    // A missing older generation is normal early in a run; ignore.
  }
  ec.clear();
  std::filesystem::rename(options_.path, GenerationPath(options_.path, 1),
                          ec);
  if (ec && status_.ok()) {
    status_ =
        util::Status::Internal("access log rotation failed: " + ec.message());
  }
  out_.open(options_.path, std::ios::app);
  if (!out_ && status_.ok()) {
    status_ = util::Status::Internal("access log reopen failed: " +
                                     options_.path);
  }
  active_bytes_ = 0;
  ++rotations_;
}

void AccessLog::Write(const AccessLogRecord& record) {
  const std::string line = AccessLogRecordJson(record).Dump(/*indent=*/-1);
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || !status_.ok()) return;
  if (options_.max_bytes > 0 &&
      active_bytes_ + line.size() + 1 > options_.max_bytes &&
      active_bytes_ > 0) {
    RotateLocked();
    if (!status_.ok()) return;
  }
  out_ << line << '\n';
  out_.flush();  // crash-safety: the line is in the OS before we return
  if (!out_.good()) {
    status_ = util::Status::Internal("access log write failed: " +
                                     options_.path);
    return;
  }
  active_bytes_ += line.size() + 1;
  ++lines_;
}

void AccessLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return;
  out_.flush();
  out_.close();
  open_ = false;
}

size_t AccessLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

size_t AccessLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

util::Status AccessLog::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs
