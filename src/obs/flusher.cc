#include "obs/flusher.h"

#include <algorithm>
#include <utility>

#include "obs/export.h"
#include "obs/trace_export.h"
#include "util/framing.h"
#include "util/json.h"
#include "util/logging.h"

namespace briq::obs {

#ifndef BRIQ_NO_METRICS

namespace {

const char* TriggerName(int trigger) {
  switch (trigger) {
    case 0: return "start";
    case 1: return "interval";
    case 2: return "docs";
    default: return "final";
  }
}

/// Counter deltas between two snapshots (only moved counters appear).
util::Json CounterDeltas(const MetricsSnapshot& before,
                         const MetricsSnapshot& after) {
  util::Json out = util::Json::Object();
  for (const auto& [name, value] : after.counters) {
    uint64_t prior = 0;
    auto it = before.counters.find(name);
    if (it != before.counters.end()) prior = it->second;
    if (value != prior) out.Set(name, value - prior);
  }
  return out;
}

uint64_t CounterValue(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

}  // namespace

MetricsFlusher::MetricsFlusher(FlusherOptions options,
                               MetricRegistry* registry,
                               TraceExporter* exporter)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry : &MetricRegistry::Global()),
      exporter_(exporter) {}

MetricsFlusher::~MetricsFlusher() { Stop(); }

util::Status MetricsFlusher::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) {
    return util::Status::FailedPrecondition("flusher already started");
  }
  if (!options_.path.empty()) {
    out_.open(options_.path, std::ios::out | std::ios::trunc);
    if (!out_) {
      return util::Status::NotFound("cannot open metrics flush output: " +
                                    options_.path);
    }
  }
  docs_counter_ = registry_->GetCounter(options_.docs_counter);
  start_time_ = std::chrono::steady_clock::now();
  last_push_time_ = start_time_;
  status_ = util::Status::OK();
  stop_requested_ = false;
  // Baseline record: even a run shorter than one interval yields a
  // (baseline, final) pair of snapshots.
  last_snapshot_ = MetricsSnapshot();
  last_docs_ = 0;
  FlushLocked(Trigger::kStart);
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return util::Status::OK();
}

void MetricsFlusher::Stop() {
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) return;  // idempotent
    running_ = false;
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  wake_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::unique_lock<std::mutex> lock(mu_);
  FlushLocked(Trigger::kFinal);
  if (out_.is_open()) out_.close();
}

void MetricsFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    wake_.wait_for(lock,
                   std::chrono::duration<double>(options_.poll_seconds));
    if (stop_requested_) break;
    SampleGaugesLocked();
    const auto now = std::chrono::steady_clock::now();
    const double since_flush =
        std::chrono::duration<double>(now - last_flush_time_).count();
    // Polling the relaxed document counter is the whole doc-count
    // protocol: the emitter pays nothing beyond the Add it already does.
    const uint64_t docs = docs_counter_->Value();
    if (options_.interval_seconds > 0.0 &&
        since_flush >= options_.interval_seconds) {
      FlushLocked(Trigger::kInterval);
    } else if (options_.every_docs > 0 &&
               docs - last_docs_ >= options_.every_docs) {
      FlushLocked(Trigger::kDocs);
    } else if (options_.push_port != 0 && options_.heartbeat_seconds > 0.0 &&
               std::chrono::duration<double>(now - last_push_time_).count() >=
                   options_.heartbeat_seconds) {
      // Liveness beacon between flushes: the collector's missed-heartbeat
      // detector keys off these, so a wedged worker (thread alive, pipeline
      // stuck) still reads as unhealthy even though its process exists.
      util::Json beat = util::Json::Object();
      beat.Set("type", "heartbeat");
      beat.Set("worker", options_.push_worker_id);
      beat.Set("docs_total", docs);
      beat.Set("ts_monotonic_sec",
               std::chrono::duration<double>(now - start_time_).count());
      PushFrameLocked(beat.Dump(/*indent=*/-1));
    }
  }
}

void MetricsFlusher::SampleGaugesLocked() {
  for (const auto& [name, value] : registry_->GaugeValues()) {
    auto [it, inserted] = gauge_window_.emplace(name, std::make_pair(value, value));
    if (!inserted) {
      it->second.first = std::min(it->second.first, value);
      it->second.second = std::max(it->second.second, value);
    }
  }
}

void MetricsFlusher::FlushLocked(Trigger trigger) {
  const auto now = std::chrono::steady_clock::now();
  const double ts =
      std::chrono::duration<double>(now - start_time_).count();
  const double dt =
      std::chrono::duration<double>(now - last_flush_time_).count();
  const MetricsSnapshot snapshot = registry_->Snapshot();
  const uint64_t docs = CounterValue(snapshot, options_.docs_counter);

  util::Json record = util::Json::Object();
  record.Set("flush_index", flush_count_.load(std::memory_order_relaxed));
  record.Set("trigger", TriggerName(static_cast<int>(trigger)));
  record.Set("ts_monotonic_sec", ts);
  record.Set("docs_total", docs);
  record.Set("cumulative", MetricsToJson(snapshot));

  util::Json delta = util::Json::Object();
  delta.Set("counters", CounterDeltas(last_snapshot_, snapshot));
  util::Json histogram_counts = util::Json::Object();
  util::Json histogram_sums = util::Json::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    uint64_t prior_count = 0;
    double prior_sum = 0.0;
    auto it = last_snapshot_.histograms.find(name);
    if (it != last_snapshot_.histograms.end()) {
      prior_count = it->second.count;
      prior_sum = it->second.sum;
    }
    if (h.count != prior_count) {
      histogram_counts.Set(name, h.count - prior_count);
      histogram_sums.Set(name, h.sum - prior_sum);
    }
  }
  delta.Set("histogram_counts", std::move(histogram_counts));
  delta.Set("histogram_sums", std::move(histogram_sums));

  // Gauge deltas: last value plus the window's min/max envelope from the
  // poll-tick samples, for gauges that moved since the previous flush.
  // "Moved" means the value changed or the envelope shows an excursion —
  // a queue depth that spiked and fell back inside one window still
  // appears, with min/max telling the spike's size.
  SampleGaugesLocked();
  util::Json gauge_deltas = util::Json::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    int64_t prior = 0;
    auto prior_it = last_snapshot_.gauges.find(name);
    if (prior_it != last_snapshot_.gauges.end()) prior = prior_it->second;
    int64_t window_min = value;
    int64_t window_max = value;
    auto window_it = gauge_window_.find(name);
    if (window_it != gauge_window_.end()) {
      window_min = std::min(window_it->second.first, value);
      window_max = std::max(window_it->second.second, value);
    }
    if (value == prior && window_min == window_max) continue;
    util::Json entry = util::Json::Object();
    entry.Set("last", value);
    entry.Set("min", window_min);
    entry.Set("max", window_max);
    gauge_deltas.Set(name, std::move(entry));
  }
  delta.Set("gauges", std::move(gauge_deltas));
  record.Set("delta", std::move(delta));

  // Reseed the envelope so the next window starts at the flush-time values.
  gauge_window_.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    gauge_window_.emplace(name, std::make_pair(value, value));
  }

  util::Json rates = util::Json::Object();
  if (trigger != Trigger::kStart && dt > 0.0) {
    rates.Set("docs_per_sec",
              static_cast<double>(docs - CounterValue(last_snapshot_,
                                                      options_.docs_counter)) /
                  dt);
    const uint64_t pruned =
        (CounterValue(snapshot, "briq.filter.pairs_before") -
         CounterValue(last_snapshot_, "briq.filter.pairs_before")) -
        (CounterValue(snapshot, "briq.filter.pairs_kept") -
         CounterValue(last_snapshot_, "briq.filter.pairs_kept"));
    rates.Set("pairs_pruned_per_sec", static_cast<double>(pruned) / dt);
  }
  record.Set("rates", std::move(rates));

  util::Json stages = util::Json::Object();
  for (const auto& [stage, seconds] :
       AlignStageSecondsDelta(last_snapshot_, snapshot)) {
    stages.Set(stage, seconds);
  }
  record.Set("stages_delta_seconds", std::move(stages));

  if (out_.is_open()) {
    // One complete JSON document per line, flushed before the next window
    // starts: a killed run keeps every line already written.
    out_ << record.Dump(/*indent=*/-1) << "\n" << std::flush;
    if (!out_.good() && status_.ok()) {
      status_ = util::Status::Internal("metrics flush write failed: " +
                                       options_.path);
      BRIQ_LOG(Warning) << status_.ToString();
    }
  }
  if (exporter_ != nullptr) {
    util::Status trace_status = exporter_->Flush();
    if (!trace_status.ok() && status_.ok()) {
      status_ = trace_status;
      BRIQ_LOG(Warning) << "trace flush failed: " << trace_status.ToString();
    }
  }
  if (options_.push_port != 0) {
    // The frame carries the full cumulative snapshot (not the delta): the
    // collector's merge is latest-wins per worker, so a dropped frame only
    // costs freshness, never correctness.
    util::Json frame = util::Json::Object();
    frame.Set("type", "snapshot");
    frame.Set("worker", options_.push_worker_id);
    frame.Set("flush_index", flush_count_.load(std::memory_order_relaxed));
    frame.Set("trigger", TriggerName(static_cast<int>(trigger)));
    frame.Set("docs_total", docs);
    frame.Set("ts_monotonic_sec", ts);
    frame.Set("snapshot", MetricsToJson(snapshot));
    PushFrameLocked(frame.Dump(/*indent=*/-1));
  }

  last_snapshot_ = snapshot;
  last_docs_ = docs;
  last_flush_time_ = now;
  flush_count_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsFlusher::PushFrameLocked(const std::string& payload) {
  last_push_time_ = std::chrono::steady_clock::now();
  if (!push_socket_.valid()) {
    util::Result<util::ClientSocket> connected =
        util::ClientSocket::Connect(options_.push_port);
    if (!connected.ok()) {
      if (!push_warned_) {
        push_warned_ = true;
        BRIQ_LOG(Warning) << "metrics push: collector on port "
                          << options_.push_port
                          << " unreachable; pushing is best-effort ("
                          << connected.status().ToString() << ")";
      }
      return;
    }
    push_socket_ = std::move(connected).value();
  }
  if (!util::SendFrame(push_socket_, payload)) {
    // Reconnect on the next frame — the collector may have restarted.
    push_socket_.Close();
    if (!push_warned_) {
      push_warned_ = true;
      BRIQ_LOG(Warning) << "metrics push: send to collector port "
                        << options_.push_port << " failed; will reconnect";
    }
  }
}

size_t MetricsFlusher::flush_count() const {
  return flush_count_.load(std::memory_order_relaxed);
}

util::Status MetricsFlusher::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

#else  // BRIQ_NO_METRICS: inert stub — no thread, no file, no snapshots.

MetricsFlusher::MetricsFlusher(FlusherOptions, MetricRegistry*,
                               TraceExporter*) {}

MetricsFlusher::~MetricsFlusher() = default;

util::Status MetricsFlusher::Start() {
  if (started_) {
    return util::Status::FailedPrecondition("flusher already started");
  }
  started_ = true;
  return util::Status::OK();
}

void MetricsFlusher::Stop() { started_ = false; }

size_t MetricsFlusher::flush_count() const { return 0; }

util::Status MetricsFlusher::status() const { return util::Status::OK(); }

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs
