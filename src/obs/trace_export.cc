#include "obs/trace_export.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/logging.h"

namespace briq::obs {

namespace {

/// Recursively appends one "X" (complete) event per span node.
/// `base_us` is the absolute timeline position of the node's root.
void AppendEvents(const SpanNode& node, double base_us, double parent_ts_us,
                  int tid, util::Json* events) {
  const bool aggregated = node.start_seconds < 0.0;
  const double ts_us =
      aggregated ? parent_ts_us : base_us + node.start_seconds * 1e6;
  util::Json event = util::Json::Object();
  event.Set("name", node.name);
  event.Set("cat", "briq");
  event.Set("ph", "X");
  event.Set("pid", 1);
  event.Set("tid", tid);
  event.Set("ts", ts_us);
  event.Set("dur", node.duration_seconds * 1e6);
  if (aggregated || !node.trace_id.empty()) {
    util::Json args = util::Json::Object();
    if (aggregated) args.Set("aggregated", true);
    if (!node.trace_id.empty()) args.Set("trace_id", node.trace_id);
    event.Set("args", std::move(args));
  }
  events->Append(std::move(event));
  for (const SpanNode& child : node.children) {
    AppendEvents(child, base_us, ts_us, tid, events);
  }
}

}  // namespace

util::Json ChromeTraceJson(const std::vector<SpanNode>& roots,
                           const std::vector<double>& base_ts_seconds) {
  util::Json events = util::Json::Array();
  double sequential_base = 0.0;
  for (size_t i = 0; i < roots.size(); ++i) {
    const double base_us = i < base_ts_seconds.size()
                               ? base_ts_seconds[i] * 1e6
                               : sequential_base;
    AppendEvents(roots[i], base_us, base_us, static_cast<int>(i) + 1,
                 &events);
    sequential_base = base_us + roots[i].duration_seconds * 1e6;
  }
  util::Json out = util::Json::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", "ms");
  return out;
}

TraceExporter::TraceExporter(TraceExportOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      t0_(std::chrono::steady_clock::now()) {}

TraceExporter::~TraceExporter() {
  Detach();
  util::Status status = Flush();
  if (!status.ok()) {
    BRIQ_LOG(Warning) << "final trace export failed: " << status.ToString();
  }
}

void TraceExporter::Attach(TraceRing* ring) {
  if (ring == nullptr) ring = &TraceRing::Global();
  Detach();
  attached_ = ring;
  ring->SetSink(this);
}

void TraceExporter::Detach() {
  if (attached_ != nullptr) {
    attached_->SetSink(nullptr);
    attached_ = nullptr;
  }
}

void TraceExporter::OnRootSpan(const SpanNode& root) {
  std::lock_guard<std::mutex> lock(mu_);
  const double arrival =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  // Place the root at its (approximate) start time so the exported
  // timeline reflects real concurrency.
  const double base = std::max(0.0, arrival - root.duration_seconds);
  const size_t window_retained =
      retained_.size() + window_slowest_.size();
  // Slow-request override: anything past the threshold is kept outright
  // (tail traces are exactly what the export exists for), budget allowing.
  if (options_.always_keep_slower_than_seconds > 0.0 &&
      root.duration_seconds >= options_.always_keep_slower_than_seconds) {
    if (window_retained < options_.max_roots) {
      retained_.push_back(Kept{root, base, /*sampled=*/false});
    } else {
      ++dropped_;
    }
    return;
  }
  if (uniform_(rng_) < options_.sample_fraction) {
    if (window_retained < options_.max_roots) {
      retained_.push_back(Kept{root, base, /*sampled=*/true});
      return;
    }
    ++dropped_;  // budget exhausted: even a sampled root is dropped
    return;
  }
  // Tail-latency reservoir: keep the window's slowest k in a min-heap.
  const auto slower = [](const Kept& a, const Kept& b) {
    return a.root.duration_seconds > b.root.duration_seconds;  // min-heap
  };
  if (window_slowest_.size() < options_.slowest_per_window &&
      window_retained < options_.max_roots) {
    window_slowest_.push_back(Kept{root, base, /*sampled=*/false});
    std::push_heap(window_slowest_.begin(), window_slowest_.end(), slower);
  } else if (!window_slowest_.empty() &&
             root.duration_seconds >
                 window_slowest_.front().root.duration_seconds) {
    std::pop_heap(window_slowest_.begin(), window_slowest_.end(), slower);
    window_slowest_.back() = Kept{root, base, /*sampled=*/false};
    std::push_heap(window_slowest_.begin(), window_slowest_.end(), slower);
    ++dropped_;  // the evicted faster root
  } else {
    ++dropped_;
  }
}

void TraceExporter::CloseWindowLocked() {
  for (Kept& kept : window_slowest_) {
    retained_.push_back(std::move(kept));
  }
  window_slowest_.clear();
}

util::Status TraceExporter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseWindowLocked();
  if (dropped_ > warned_dropped_) {
    BRIQ_LOG(Warning) << "trace export dropped "
                      << (dropped_ - warned_dropped_)
                      << " span tree(s) this window (sampling/budget; "
                      << retained_.size() << " retained, cap "
                      << options_.max_roots << ")";
    warned_dropped_ = dropped_;
  }
  if (options_.path.empty()) return util::Status::OK();

  // Chronological order keeps the exported timeline readable.
  std::sort(retained_.begin(), retained_.end(),
            [](const Kept& a, const Kept& b) {
              return a.base_ts_seconds < b.base_ts_seconds;
            });
  std::vector<SpanNode> roots;
  std::vector<double> bases;
  roots.reserve(retained_.size());
  bases.reserve(retained_.size());
  for (const Kept& kept : retained_) {
    roots.push_back(kept.root);
    bases.push_back(kept.base_ts_seconds);
  }
  const util::Json trace = ChromeTraceJson(roots, bases);

  // tmp + rename: a scraper or crash mid-flush never sees a torn file.
  const std::string tmp = options_.path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      return util::Status::NotFound("cannot open trace output: " + tmp);
    }
    out << trace.Dump(/*indent=*/-1) << "\n";
    if (!out.good()) {
      return util::Status::Internal("trace write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, options_.path, ec);
  if (ec) {
    return util::Status::Internal("trace rename failed: " + ec.message());
  }
  return util::Status::OK();
}

size_t TraceExporter::retained_roots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_.size() + window_slowest_.size();
}

size_t TraceExporter::dropped_roots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace briq::obs
