#ifndef BRIQ_OBS_FLUSHER_H_
#define BRIQ_OBS_FLUSHER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

#ifndef BRIQ_NO_METRICS
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/tcp_listener.h"
#endif

namespace briq::obs {

class TraceExporter;

/// Tuning knobs of a MetricsFlusher.
struct FlusherOptions {
  /// Wall-clock trigger: flush every `interval_seconds` (<= 0 disables).
  double interval_seconds = 1.0;
  /// Document-count trigger: flush every `every_docs` documents counted by
  /// `docs_counter` (0 disables). Whichever trigger fires first wins; both
  /// reset on every flush.
  uint64_t every_docs = 0;
  /// JSONL sink; one complete JSON line per flush. Empty keeps the flusher
  /// snapshotting (flush_count still advances, a wired TraceExporter still
  /// flushes) without writing a file — used by benches that only need the
  /// cadence.
  std::string path;
  /// Counter polled for the document trigger and the docs/sec rate. The
  /// producer side stays lock-free: the pipeline's existing relaxed
  /// counters are read from the flusher thread, never the other way round.
  std::string docs_counter = "briq.stream.documents";
  /// Trigger-check cadence of the background thread. Also bounds how stale
  /// a document-count trigger can be.
  double poll_seconds = 0.05;
  /// Push sink (the fleet protocol, DESIGN.md §5j): when nonzero, every
  /// flush also sends one length-prefixed JSON frame to a collector on
  /// 127.0.0.1:`push_port`, with heartbeat frames between flushes. Best
  /// effort: an unreachable or vanished collector costs one warning, never
  /// the run. 0 disables.
  uint16_t push_port = 0;
  /// Worker id stamped into every pushed frame (the fleet driver's slot
  /// index for this worker).
  int push_worker_id = 0;
  /// Heartbeat cadence: a {"type":"heartbeat"} frame whenever
  /// `heartbeat_seconds` pass without any frame being pushed (<= 0
  /// disables; only meaningful with push_port set).
  double heartbeat_seconds = 0.5;
};

/// Background thread that snapshots a MetricRegistry on a time or
/// document-count cadence and appends one line-buffered JSONL record per
/// flush (DESIGN.md §5e):
///
///   {"flush_index": i, "trigger": "start|interval|docs|final",
///    "ts_monotonic_sec": seconds since Start(),
///    "docs_total": N, "cumulative": <MetricsToJson snapshot>,
///    "delta": {"counters": {...}, "histogram_counts": {...},
///              "histogram_sums": {...},
///              "gauges": {name: {"last": v, "min": m, "max": M}}},
///    "rates": {"docs_per_sec": d, "pairs_pruned_per_sec": p},
///    "stages_delta_seconds": {<AlignStageSecondsDelta>}}
///
/// Crash-safe: every line is complete JSON flushed to the OS before the
/// next is started, a run killed mid-stream loses at most the current
/// window. Start() writes a baseline record and Stop() a final one, so
/// even a sub-interval run yields two monotonically non-decreasing
/// snapshots. Stop() is idempotent and joins the thread; the whole class
/// is TSan-clean.
///
/// With -DBRIQ_NO_METRICS the flusher is an inert stub: Start() succeeds
/// without a thread or file, flush_count() stays 0.
class MetricsFlusher {
 public:
  /// Neither `registry` (nullptr: the global registry) nor `exporter`
  /// (optional; its Flush() is called once per metrics flush, giving the
  /// trace file the same cadence) is owned; both must outlive Stop().
  explicit MetricsFlusher(FlusherOptions options,
                          MetricRegistry* registry = nullptr,
                          TraceExporter* exporter = nullptr);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Opens the sink, writes the baseline record, and starts the thread.
  /// Fails if the sink cannot be opened or Start() was already called.
  util::Status Start();

  /// Final flush + thread join. Idempotent; also run by the destructor.
  void Stop();

  /// Flushes completed so far (including baseline and final records).
  size_t flush_count() const;

  /// First write error, if any (sticky; flushing continues best-effort).
  util::Status status() const;

#ifndef BRIQ_NO_METRICS

 private:
  enum class Trigger { kStart, kInterval, kDocs, kFinal };

  void Loop();
  /// Folds the registry's current gauge values into the per-window min/max
  /// envelope. Called every poll tick (gauges are instantaneous, so a
  /// flush-time read alone would miss every excursion inside the window)
  /// and once more inside FlushLocked. Caller holds mu_.
  void SampleGaugesLocked();
  /// Snapshots, diffs against the previous flush, writes one line. Caller
  /// holds mu_.
  void FlushLocked(Trigger trigger);
  /// Sends one framed payload to the push collector (lazy connect,
  /// reconnect after a send failure, one warning ever). Caller holds mu_.
  void PushFrameLocked(const std::string& payload);

  const FlusherOptions options_;
  MetricRegistry* const registry_;
  TraceExporter* const exporter_;
  Counter* docs_counter_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::atomic<size_t> flush_count_{0};
  util::Status status_;

  std::ofstream out_;
  util::ClientSocket push_socket_;
  bool push_warned_ = false;
  std::chrono::steady_clock::time_point last_push_time_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_flush_time_;
  uint64_t last_docs_ = 0;
  MetricsSnapshot last_snapshot_;
  /// Per-window gauge envelope: name -> (min, max) over the poll-tick
  /// samples since the previous flush. Reseeded from the flush-time values
  /// at every flush, so each window's envelope starts where the last ended.
  std::map<std::string, std::pair<int64_t, int64_t>> gauge_window_;
#else

 public:
  // Inert stub: see class comment.

 private:
  bool started_ = false;
#endif  // BRIQ_NO_METRICS
};

}  // namespace briq::obs

#endif  // BRIQ_OBS_FLUSHER_H_
