#ifndef BRIQ_OBS_ROLLING_H_
#define BRIQ_OBS_ROLLING_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace briq::obs {

/// Rolling-window instruments (DESIGN.md §5i): answer "what is p99 / QPS
/// *right now*" where the cumulative registry instruments only answer
/// "since process start".
///
/// A RollingHistogram is a ring of `sub_windows` bucketed sub-window
/// slots, each tagged with the epoch (floor(now / sub_seconds)) it
/// currently holds. The record path is the same shape as
/// obs::Histogram::Observe — relaxed atomic adds on the slot's buckets —
/// plus one relaxed epoch load; a mutex is taken only by the first
/// recorder to enter a new sub-window (to zero the recycled slot), i.e.
/// once per sub-window per instrument, never per event. Snapshot()
/// aggregates only slots whose epoch lies inside the live window, so
/// idle gaps age out correctly without a background thread.
///
/// Clocks are injectable: every operation has an `*At(..., now_seconds)`
/// variant taking monotonic seconds on any caller-chosen origin, which the
/// tests use for deterministic expiry/rotation coverage. The plain
/// variants use a steady clock anchored at construction.
///
/// Concurrency: records are atomic, so the structure is data-race free
/// (TSan-clean); a record racing a slot recycle may land in (or be zeroed
/// out of) the adjacent sub-window, which skews one sub-window's counts by
/// at most the events in flight at the boundary — noise for an SLO window,
/// never a torn read. Records from a "laggard" clock (an epoch older than
/// the slot's current tenant) are dropped rather than corrupting a newer
/// sub-window.
///
/// Under -DBRIQ_NO_METRICS both classes compile to inert inline stubs.

#ifndef BRIQ_NO_METRICS

class RollingHistogram {
 public:
  /// `bounds` are inclusive upper edges (the Prometheus `le` convention),
  /// sorted ascending, with an implicit overflow bucket; the live window
  /// spans `window_seconds`, split into `sub_windows` equal slots.
  explicit RollingHistogram(std::vector<double> bounds,
                            double window_seconds = 60.0,
                            size_t sub_windows = 12);

  void Record(double value) { RecordAt(value, NowSeconds()); }
  void RecordAt(double value, double now_seconds);

  /// Aggregation of the sub-windows still inside the live window ending at
  /// `now_seconds`. The current (partial) sub-window is included.
  HistogramSnapshot Snapshot() const { return SnapshotAt(NowSeconds()); }
  HistogramSnapshot SnapshotAt(double now_seconds) const;

  double window_seconds() const { return sub_seconds_ * num_slots_; }
  /// Monotonic seconds since construction — the clock behind the
  /// non-injected entry points, exposed so companion instruments can share
  /// a timeline with this one in tests.
  double NowSeconds() const;

 private:
  struct alignas(64) Slot {
    /// Epoch this slot currently holds, -1 while never used. Written under
    /// rotate_mu_ after the slot is zeroed; read relaxed on every record.
    std::atomic<int64_t> epoch{-1};
    std::vector<std::atomic<uint64_t>> buckets;  // bounds.size() + 1
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  /// Slot for `epoch`, recycling it under rotate_mu_ if a new sub-window
  /// just began; nullptr when `epoch` is older than the slot's tenant.
  Slot* AcquireSlot(int64_t epoch);

  const std::vector<double> bounds_;
  const double sub_seconds_;
  const size_t num_slots_;
  std::vector<Slot> slots_;
  std::mutex rotate_mu_;
  const std::chrono::steady_clock::time_point t0_;
};

/// Rolling event counter over the same sub-window ring; backs windowed
/// QPS and error-rate gauges.
class RollingCounter {
 public:
  explicit RollingCounter(double window_seconds = 60.0,
                          size_t sub_windows = 12);

  void Add(uint64_t n = 1) { AddAt(n, NowSeconds()); }
  void AddAt(uint64_t n, double now_seconds);

  /// Events inside the live window ending at `now_seconds`.
  uint64_t Count() const { return CountAt(NowSeconds()); }
  uint64_t CountAt(double now_seconds) const;

  /// CountAt / window_seconds — the windowed rate (e.g. QPS).
  double RatePerSecondAt(double now_seconds) const {
    return static_cast<double>(CountAt(now_seconds)) / window_seconds();
  }

  double window_seconds() const { return sub_seconds_ * num_slots_; }
  double NowSeconds() const;

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> count{0};
  };

  Slot* AcquireSlot(int64_t epoch);

  const double sub_seconds_;
  const size_t num_slots_;
  std::vector<Slot> slots_;
  std::mutex rotate_mu_;
  const std::chrono::steady_clock::time_point t0_;
};

#else  // BRIQ_NO_METRICS

class RollingHistogram {
 public:
  explicit RollingHistogram(std::vector<double> = {}, double = 60.0,
                            size_t = 12) {}
  void Record(double) {}
  void RecordAt(double, double) {}
  HistogramSnapshot Snapshot() const { return {}; }
  HistogramSnapshot SnapshotAt(double) const { return {}; }
  double window_seconds() const { return 0.0; }
  double NowSeconds() const { return 0.0; }
};

class RollingCounter {
 public:
  explicit RollingCounter(double = 60.0, size_t = 12) {}
  void Add(uint64_t = 1) {}
  void AddAt(uint64_t, double) {}
  uint64_t Count() const { return 0; }
  uint64_t CountAt(double) const { return 0; }
  double RatePerSecondAt(double) const { return 0.0; }
  double window_seconds() const { return 0.0; }
  double NowSeconds() const { return 0.0; }
};

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs

#endif  // BRIQ_OBS_ROLLING_H_
