#ifndef BRIQ_OBS_METRICS_H_
#define BRIQ_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/bounded_queue.h"

namespace briq::obs {

/// Process-wide metrics for the BriQ pipeline.
///
/// Naming contract (DESIGN.md §5d): every instrument is named
/// `briq.<layer>.<name>` where <layer> is one of `align`, `classify`,
/// `filter`, `rwr`, `stream`, `shard`, or `train`; latency histograms end
/// in `_seconds`.
///
/// Hot paths pay one relaxed atomic add per event: counters and histogram
/// buckets are sharded across `kMetricShards` cache-line-padded slots
/// (threads hash to a slot), so concurrent writers never contend on a
/// cache line; readers aggregate the shards on Snapshot(). Registry
/// lookups take a mutex — call sites cache the returned pointer in a
/// function-local static (instruments live for the process lifetime).
///
/// Compiling with -DBRIQ_NO_METRICS reduces every instrument to an inline
/// no-op (and the registry to an empty shell), for measuring the
/// instrumentation's own cost and for minimal builds.

/// Shard count of the per-thread sharded instruments (power of two).
inline constexpr size_t kMetricShards = 16;

/// Exponential histogram bucket upper bounds: start, start*factor, ...
/// (`count` bounds; values above the last bound land in the overflow
/// bucket).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// Evenly spaced bucket upper bounds: start, start+width, ...
std::vector<double> LinearBuckets(double start, double width, size_t count);

/// Default buckets for `*_seconds` latency histograms: 10 exponential
/// bounds from 10 microseconds to ~2.6 seconds (factor 4).
std::vector<double> DefaultLatencyBuckets();

/// Aggregated view of one histogram at snapshot time. `counts` has
/// `bounds.size() + 1` entries; the last is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  double sum = 0.0;
  uint64_t count = 0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Value at quantile `q` in (0, 1], approximated by the inclusive bucket
  /// upper edges: the smallest `le` edge whose cumulative count reaches
  /// q * count. Quantiles that land in the overflow bucket return +infinity
  /// (consistent with the Prometheus `+Inf` edge); an empty histogram
  /// returns 0.
  double Percentile(double q) const;
};

/// Point-in-time aggregation of every registered instrument.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Wall-clock capture time (unix seconds, system_clock). 0 on
  /// default-constructed snapshots; consumers (the /metrics freshness
  /// gauge) treat 0 as "unknown".
  double capture_unix_seconds = 0.0;
};

#ifndef BRIQ_NO_METRICS

namespace internal {
/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};
};

/// Index of the calling thread's shard; threads are assigned round-robin
/// on first use, which spreads a thread pool evenly across the shards.
size_t ThreadShard();
}  // namespace internal

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards (each read relaxed; exact once writers are
  /// quiescent).
  uint64_t Value() const;

  /// Zeroes all shards. Only meaningful while no writer is active.
  void Reset();

 private:
  internal::CounterShard shards_[kMetricShards];
};

/// Current-value instrument (queue depths, window sizes). A single atomic:
/// Set semantics do not shard, and gauges sit off the per-pair hot paths.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below (CAS loop) — used for peaks.
  void SetMax(int64_t v);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Observe() costs one relaxed add on the bucket,
/// one on the count, and one floating add on the shard's sum.
class Histogram {
 public:
  /// `bounds` must be sorted ascending; an implicit overflow bucket
  /// catches values above the last bound.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Owner of every instrument. Instruments are created on first lookup and
/// never destroyed; pointers remain valid for the process lifetime.
class MetricRegistry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  static MetricRegistry& Global();

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Returns the existing histogram when `name` is already registered
  /// (its original bounds win); otherwise creates one with `bounds`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Gauge values only — much cheaper than a full Snapshot() (no histogram
  /// shard aggregation). The flusher samples this every poll tick to build
  /// per-window gauge min/max envelopes.
  std::map<std::string, int64_t> GaugeValues() const;

  /// Zeroes every instrument (names stay registered). For benches and
  /// tests, between runs; not safe against concurrent writers.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII latency recorder: observes the scope's wall time (seconds) into a
/// histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    histogram_->Observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// util::QueueObserver implementation backed by registry instruments, the
/// bridge that gives a util::BoundedQueue streaming telemetry without a
/// util -> obs dependency. Registers, under `prefix` (e.g. "briq.stream"):
///   <prefix>.queue_depth            gauge, current buffered items
///   <prefix>.queue_depth_peak       gauge, high-water mark
///   <prefix>.producer_blocked_seconds  histogram, per blocking Push
///   <prefix>.consumer_blocked_seconds  histogram, per blocking Pop
/// Gauges describe the single queue currently observed; run one observed
/// queue at a time per prefix.
class QueueTelemetry : public util::QueueObserver {
 public:
  explicit QueueTelemetry(const std::string& prefix);

  void OnDepth(size_t depth) override;
  void OnProducerBlocked(double seconds) override;
  void OnConsumerBlocked(double seconds) override;

  /// Pass this to the queue: the real observer here, nullptr when metrics
  /// are compiled out (so the queue skips its wait stopwatches entirely).
  util::QueueObserver* observer() { return this; }

 private:
  Gauge* depth_;
  Gauge* depth_peak_;
  Histogram* producer_blocked_;
  Histogram* consumer_blocked_;
};

#else  // BRIQ_NO_METRICS: every instrument is an inline no-op.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  void SetMax(int64_t) {}
  int64_t Value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}) {}
  void Observe(double) {}
  HistogramSnapshot Snapshot() const { return {}; }
  const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  void Reset() {}
};

class MetricRegistry {
 public:
  static MetricRegistry& Global() {
    static MetricRegistry* registry = new MetricRegistry();
    return *registry;
  }
  Counter* GetCounter(const std::string&) {
    static Counter counter;
    return &counter;
  }
  Gauge* GetGauge(const std::string&) {
    static Gauge gauge;
    return &gauge;
  }
  Histogram* GetHistogram(const std::string&, std::vector<double>) {
    static Histogram histogram;
    return &histogram;
  }
  MetricsSnapshot Snapshot() const { return {}; }
  std::map<std::string, int64_t> GaugeValues() const { return {}; }
  void Reset() {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*) {}
};

class QueueTelemetry : public util::QueueObserver {
 public:
  explicit QueueTelemetry(const std::string&) {}
  /// nullptr: the queue never starts a wait stopwatch when compiled out.
  util::QueueObserver* observer() { return nullptr; }
};

#endif  // BRIQ_NO_METRICS

}  // namespace briq::obs

#endif  // BRIQ_OBS_METRICS_H_
