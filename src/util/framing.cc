#include "util/framing.h"

#include <cstring>

namespace briq::util {

std::string EncodeFrame(const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out += payload;
  return out;
}

bool SendFrame(ClientSocket& socket, const std::string& payload) {
  if (payload.size() > kMaxFramePayloadBytes) return false;
  return socket.SendAll(EncodeFrame(payload));
}

void FrameReader::Append(const char* data, size_t len) {
  // Compact lazily: only when the consumed prefix dominates the buffer,
  // so steady-state appends stay O(len).
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, len);
}

Result<std::optional<std::string>> FrameReader::Next() {
  if (poisoned_) {
    return Status::ParseError("frame stream desynchronized (oversized frame)");
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::optional<std::string>(std::nullopt);
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const uint32_t len = (static_cast<uint32_t>(p[0]) << 24) |
                       (static_cast<uint32_t>(p[1]) << 16) |
                       (static_cast<uint32_t>(p[2]) << 8) |
                       static_cast<uint32_t>(p[3]);
  if (len > kMaxFramePayloadBytes) {
    poisoned_ = true;
    return Status::ParseError("frame declares " + std::to_string(len) +
                              " bytes, over the " +
                              std::to_string(kMaxFramePayloadBytes) +
                              " byte cap");
  }
  if (available - 4 < len) return std::optional<std::string>(std::nullopt);
  std::string payload = buffer_.substr(consumed_ + 4, len);
  consumed_ += 4 + len;
  return std::optional<std::string>(std::move(payload));
}

}  // namespace briq::util
