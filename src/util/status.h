#ifndef BRIQ_UTIL_STATUS_H_
#define BRIQ_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace briq::util {

/// Canonical error codes used across the BriQ library. Modeled after the
/// Arrow/Abseil status vocabulary; only codes the library actually produces
/// are included.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kParseError,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for a status code (e.g., "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Functions in BriQ that can fail
/// return `Status` (or `Result<T>`, see result.h) instead of throwing;
/// exceptions never cross public API boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace briq::util

/// Propagates a non-OK Status from the evaluated expression.
#define BRIQ_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::briq::util::Status _briq_status = (expr);      \
    if (!_briq_status.ok()) return _briq_status;     \
  } while (false)

#endif  // BRIQ_UTIL_STATUS_H_
