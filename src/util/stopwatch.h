#ifndef BRIQ_UTIL_STOPWATCH_H_
#define BRIQ_UTIL_STOPWATCH_H_

#include <chrono>

namespace briq::util {

/// Monotonic wall-clock stopwatch for throughput measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_STOPWATCH_H_
