#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace briq::util {

bool Json::AsBool() const {
  BRIQ_CHECK(type_ == Type::kBool) << "not a bool";
  return bool_;
}

double Json::AsDouble() const {
  BRIQ_CHECK(type_ == Type::kNumber) << "not a number";
  return number_;
}

int Json::AsInt() const {
  return static_cast<int>(std::llround(AsDouble()));
}

const std::string& Json::AsString() const {
  BRIQ_CHECK(type_ == Type::kString) << "not a string";
  return string_;
}

void Json::Append(Json value) {
  BRIQ_CHECK(type_ == Type::kArray) << "Append on non-array";
  array_.push_back(std::move(value));
}

size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  BRIQ_CHECK(false) << "size() on scalar";
  return 0;
}

const Json& Json::at(size_t i) const {
  BRIQ_CHECK(type_ == Type::kArray) << "index on non-array";
  BRIQ_CHECK(i < array_.size()) << "index out of range";
  return array_[i];
}

const std::vector<Json>& Json::items() const {
  BRIQ_CHECK(type_ == Type::kArray) << "items() on non-array";
  return array_;
}

void Json::Set(const std::string& key, Json value) {
  BRIQ_CHECK(type_ == Type::kObject) << "Set on non-object";
  object_[key] = std::move(value);
}

bool Json::Has(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  BRIQ_CHECK(type_ == Type::kObject) << "key lookup on non-object";
  auto it = object_.find(key);
  BRIQ_CHECK(it != object_.end()) << "missing key: " << key;
  return it->second;
}

const Json& Json::Get(const std::string& key, const Json& fallback) const {
  if (!Has(key)) return fallback;
  return object_.at(key);
}

const std::map<std::string, Json>& Json::members() const {
  BRIQ_CHECK(type_ == Type::kObject) << "members() on non-object";
  return object_;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string NumberToString(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += NumberToString(number_);
      return;
    case Type::kString:
      EscapeInto(string_, out);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        EscapeInto(key, out);
        *out += indent < 0 ? ":" : ": ";
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view txt) : txt_(txt) {}

  Result<Json> Run() {
    SkipWhitespace();
    BRIQ_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != txt_.size()) {
      return Error("trailing content");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < txt_.size() &&
           std::isspace(static_cast<unsigned char>(txt_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < txt_.size() && txt_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= txt_.size()) return Error("unexpected end");
    char c = txt_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      BRIQ_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (txt_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (txt_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    if (txt_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json();
    }
    return ParseNumber();
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < txt_.size() &&
           (std::isdigit(static_cast<unsigned char>(txt_[pos_])) ||
            txt_[pos_] == '.' || txt_[pos_] == 'e' || txt_[pos_] == 'E' ||
            txt_[pos_] == '+' || txt_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    std::string s(txt_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) return Error("invalid number");
    return Json(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < txt_.size()) {
      char c = txt_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= txt_.size()) break;
      char esc = txt_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > txt_.size()) return Error("bad \\u escape");
          std::string hex(txt_.substr(pos_, 4));
          pos_ += 4;
          uint32_t cp =
              static_cast<uint32_t>(std::strtoul(hex.c_str(), nullptr, 16));
          // BMP only (sufficient for our own output).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      SkipWhitespace();
      BRIQ_ASSIGN_OR_RETURN(Json v, ParseValue());
      out.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      BRIQ_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      BRIQ_ASSIGN_OR_RETURN(Json v, ParseValue());
      out.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view txt_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view txt) { return Parser(txt).Run(); }

}  // namespace briq::util
