#include "util/table_printer.h"

#include <algorithm>
#include <ostream>

#include "util/logging.h"

namespace briq::util {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    BRIQ_CHECK(row.size() == header_.size())
        << "row has " << row.size() << " cells, header has " << header_.size();
  }
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string TablePrinter::ToString() const {
  // Column widths over header and all rows.
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<size_t> width(ncols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  account(header_);
  for (const auto& r : rows_) {
    if (!r.separator) account(r.cells);
  }

  auto rule = [&]() {
    std::string s = "+";
    for (size_t i = 0; i < ncols; ++i) {
      s += std::string(width[i] + 2, '-');
      s += "+";
    }
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      s += " " + c + std::string(width[i] - c.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_) {
    out += r.separator ? rule() : line(r.cells);
  }
  out += rule();
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace briq::util
