#ifndef BRIQ_UTIL_BOUNDED_QUEUE_H_
#define BRIQ_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace briq::util {

/// A blocking FIFO queue with a fixed capacity, the back-pressure primitive
/// of the streaming ingestion path: a producer that outruns its consumers
/// blocks in Push() once `capacity` items are buffered, so pipeline memory
/// stays bounded no matter how large the input stream is.
///
/// Shutdown follows the usual channel protocol: Close() wakes everyone,
/// Push() on a closed queue returns false, and Pop() drains the remaining
/// items before reporting end-of-stream with std::nullopt. All members are
/// safe to call from any number of producer and consumer threads.
template <typename T>
class BoundedQueue {
 public:
  /// Queues of capacity < 1 are clamped to 1 (a zero-capacity rendezvous
  /// channel is not supported).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns true if
  /// the value was enqueued, false if the queue was closed first — the
  /// value is dropped in that case.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// std::nullopt means no item will ever arrive again.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Irreversibly marks the end of the stream and wakes every blocked
  /// producer and consumer. Already-buffered items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

  /// Snapshot of the current buffer depth (racy by nature; for tests and
  /// diagnostics only).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_BOUNDED_QUEUE_H_
