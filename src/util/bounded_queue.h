#ifndef BRIQ_UTIL_BOUNDED_QUEUE_H_
#define BRIQ_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace briq::util {

/// Optional instrumentation hooks of a BoundedQueue (implemented by
/// briq::obs::QueueTelemetry; an interface here so util does not depend on
/// the observability layer). All callbacks fire under the queue mutex —
/// implementations must be cheap and must not touch the queue.
class QueueObserver {
 public:
  virtual ~QueueObserver() = default;
  /// Buffer depth after every push and pop (and 0 at end-of-stream).
  virtual void OnDepth(size_t /*depth*/) {}
  /// A Push() actually blocked on a full queue for `seconds`.
  virtual void OnProducerBlocked(double /*seconds*/) {}
  /// A Pop() actually blocked on an empty queue for `seconds`.
  virtual void OnConsumerBlocked(double /*seconds*/) {}
};

/// A blocking FIFO queue with a fixed capacity, the back-pressure primitive
/// of the streaming ingestion path: a producer that outruns its consumers
/// blocks in Push() once `capacity` items are buffered, so pipeline memory
/// stays bounded no matter how large the input stream is.
///
/// Shutdown follows the usual channel protocol: Close() wakes everyone,
/// Push() on a closed queue returns false, and Pop() drains the remaining
/// items before reporting end-of-stream with std::nullopt. All members are
/// safe to call from any number of producer and consumer threads.
template <typename T>
class BoundedQueue {
 public:
  /// Queues of capacity < 1 are clamped to 1 (a zero-capacity rendezvous
  /// channel is not supported). `observer` (optional, not owned) receives
  /// depth and blocked-time telemetry; it must outlive the queue. Passing
  /// nullptr keeps the queue entirely instrumentation-free — no clocks are
  /// ever read.
  explicit BoundedQueue(size_t capacity, QueueObserver* observer = nullptr)
      : capacity_(capacity < 1 ? 1 : capacity), observer_(observer) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns true if
  /// the value was enqueued, false if the queue was closed first — the
  /// value is dropped in that case.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto can_push = [this] {
      return closed_ || items_.size() < capacity_;
    };
    if (observer_ != nullptr && !can_push()) {
      const auto start = std::chrono::steady_clock::now();
      not_full_.wait(lock, can_push);
      observer_->OnProducerBlocked(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    } else {
      not_full_.wait(lock, can_push);
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    if (observer_ != nullptr) observer_->OnDepth(items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push, the admission-control primitive of the serving
  /// layer: enqueues (moving from `value`) and returns true when there is
  /// room; returns false immediately — leaving `value` untouched — when
  /// the queue is full or closed. A caller that gets false still owns the
  /// item and can shed load explicitly (e.g. reply 503 on a connection)
  /// instead of buffering unboundedly.
  bool TryPush(T& value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    if (observer_ != nullptr) observer_->OnDepth(items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// std::nullopt means no item will ever arrive again.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    const auto can_pop = [this] { return closed_ || !items_.empty(); };
    if (observer_ != nullptr && !can_pop()) {
      const auto start = std::chrono::steady_clock::now();
      not_empty_.wait(lock, can_pop);
      observer_->OnConsumerBlocked(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    } else {
      not_empty_.wait(lock, can_pop);
    }
    if (items_.empty()) {
      if (observer_ != nullptr) observer_->OnDepth(0);
      return std::nullopt;
    }
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    if (observer_ != nullptr) observer_->OnDepth(items_.size());
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Irreversibly marks the end of the stream and wakes every blocked
  /// producer and consumer. Already-buffered items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

  /// Snapshot of the current buffer depth (racy by nature; for tests and
  /// diagnostics only).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  QueueObserver* const observer_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_BOUNDED_QUEUE_H_
