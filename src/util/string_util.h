#ifndef BRIQ_UTIL_STRING_UTIL_H_
#define BRIQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace briq::util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every char is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Very light English stemmer for context-vocabulary matching: strips a
/// possessive "'s" and a plural "s" (but not "ss"/"us"/"is" endings) from
/// words longer than 3 characters. "disorders" -> "disorder",
/// "patients" -> "patient", "basis" -> "basis".
std::string StemLight(std::string_view word);

/// Formats a double trimming trailing zeros ("3.50" -> "3.5", "4.0" -> "4").
std::string FormatDouble(double v, int max_decimals = 6);

/// Formats an integer part with thousands separators ("1234567" ->
/// "1,234,567"). Negative values keep their sign.
std::string WithThousandsSeparators(int64_t v);

}  // namespace briq::util

#endif  // BRIQ_UTIL_STRING_UTIL_H_
