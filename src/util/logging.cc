#include "util/logging.h"

namespace briq::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}
LogLevel GetLogThreshold() {
  return g_threshold.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= g_threshold.load(std::memory_order_relaxed) ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    // Keep only the basename for readability.
    std::string f = file;
    auto pos = f.find_last_of('/');
    if (pos != std::string::npos) f = f.substr(pos + 1);
    stream_ << "[" << LevelName(level_) << " " << f << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace briq::util
