#ifndef BRIQ_UTIL_RESULT_H_
#define BRIQ_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace briq::util {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. The BriQ analogue of `arrow::Result` / `absl::StatusOr`.
///
/// Typical use:
///
///     Result<ParsedQuantity> r = ParseQuantity("37K EUR");
///     if (!r.ok()) return r.status();
///     Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    BRIQ_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    BRIQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    BRIQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    BRIQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace briq::util

/// Assigns the value of a `Result<T>` expression to `lhs`, or returns its
/// error status from the enclosing function.
#define BRIQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define BRIQ_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define BRIQ_ASSIGN_OR_RETURN_NAME(a, b) BRIQ_ASSIGN_OR_RETURN_CONCAT(a, b)
#define BRIQ_ASSIGN_OR_RETURN(lhs, expr) \
  BRIQ_ASSIGN_OR_RETURN_IMPL(            \
      BRIQ_ASSIGN_OR_RETURN_NAME(_briq_result_, __LINE__), lhs, expr)

#endif  // BRIQ_UTIL_RESULT_H_
