#ifndef BRIQ_UTIL_BINARY_IO_H_
#define BRIQ_UTIL_BINARY_IO_H_

#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

namespace briq::util {

/// Minimal raw-byte stream serialization for the versioned binary formats
/// (util/sample_file.h, ml model persistence). Values are written in host
/// byte order: model and sample files are machine-local artifacts like the
/// build tree, not interchange formats — and doubles round-trip bit-exact,
/// which the training determinism contract requires.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "WritePod requires a trivially copyable type");
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Returns false when the stream ran out before `sizeof(T)` bytes.
template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "ReadPod requires a trivially copyable type");
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == static_cast<std::streamsize>(sizeof(T));
}

}  // namespace briq::util

#endif  // BRIQ_UTIL_BINARY_IO_H_
