#ifndef BRIQ_UTIL_JSON_H_
#define BRIQ_UTIL_JSON_H_

#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace briq::util {

/// A minimal JSON document model with a writer and a strict recursive-
/// descent parser. Used to serialize corpora, alignments, and experiment
/// results; deliberately small (no SAX, no comments, UTF-8 passthrough).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructors for each type.
  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}           // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                  // NOLINT
  Json(int64_t v) : Json(static_cast<double>(v)) {}              // NOLINT
  Json(size_t v) : Json(static_cast<double>(v)) {}               // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Value accessors (check-fail on type mismatch).
  bool AsBool() const;
  double AsDouble() const;
  int AsInt() const;
  const std::string& AsString() const;

  /// Array operations.
  void Append(Json value);
  size_t size() const;
  const Json& at(size_t i) const;
  const std::vector<Json>& items() const;

  /// Object operations.
  void Set(const std::string& key, Json value);
  bool Has(const std::string& key) const;
  /// Member lookup; check-fails if absent (use Has first or Get).
  const Json& at(const std::string& key) const;
  /// Member lookup with fallback.
  const Json& Get(const std::string& key, const Json& fallback) const;
  const std::map<std::string, Json>& members() const;

  /// Serializes; `indent` < 0 means compact single-line output.
  std::string Dump(int indent = -1) const;

  /// Strict parse of a complete JSON document.
  static Result<Json> Parse(std::string_view txt);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_JSON_H_
