#ifndef BRIQ_UTIL_HASH_H_
#define BRIQ_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace briq::util {

/// FNV-1a 64-bit parameters. Both the briq-shard-v1 JSONL format
/// (corpus/shard_io.h) and the briq-samples-v1 binary sample file
/// (util/sample_file.h) checksum their payload with this hash.
inline constexpr uint64_t kFnv1a64OffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnv1a64Prime = 1099511628211ull;

/// Incremental FNV-1a 64-bit hash over a raw byte range; pass the previous
/// return value as `state` to chain calls.
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t state = kFnv1a64OffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnv1a64Prime;
  }
  return state;
}

/// String-view convenience overload.
inline uint64_t Fnv1a64(std::string_view data,
                        uint64_t state = kFnv1a64OffsetBasis) {
  return Fnv1a64(data.data(), data.size(), state);
}

}  // namespace briq::util

#endif  // BRIQ_UTIL_HASH_H_
