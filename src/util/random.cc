#include "util/random.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace briq::util {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  BRIQ_CHECK(bound > 0) << "UniformInt bound must be positive";
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BRIQ_CHECK(lo <= hi) << "UniformInt range inverted";
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    BRIQ_CHECK(w >= 0.0) << "Discrete weights must be non-negative";
    total += w;
  }
  BRIQ_CHECK(total > 0.0) << "Discrete needs at least one positive weight";
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace briq::util
