#include "util/shutdown.h"

#include <csignal>

namespace briq::util {

namespace {

volatile std::sig_atomic_t g_shutdown_signal = 0;

void HandleShutdownSignal(int signum) {
  g_shutdown_signal = signum;
  // One signal requests a drain; the next one kills: restoring the default
  // disposition here keeps a wedged drain interruptible.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void InstallShutdownHandler() {
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
}

bool ShutdownRequested() { return g_shutdown_signal != 0; }

int ShutdownSignal() { return static_cast<int>(g_shutdown_signal); }

void ResetShutdownForTest() { g_shutdown_signal = 0; }

}  // namespace briq::util
