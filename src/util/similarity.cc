#include "util/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace briq::util {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int match_window = std::max(0, std::max(la, lb) / 2 - 1);

  std::vector<bool> a_matched(la, false);
  std::vector<bool> b_matched(lb, false);

  int matches = 0;
  for (int i = 0; i < la; ++i) {
    int lo = std::max(0, i - match_window);
    int hi = std::min(lb - 1, i + match_window);
    for (int j = lo; j <= hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  for (size_t i = 0; i < max_prefix; ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

namespace {
std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return {v.begin(), v.end()};
}
}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  auto sa = ToSet(a);
  auto sb = ToSet(b);
  size_t inter = 0;
  for (const auto& w : sa) {
    if (sb.count(w)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  auto sa = ToSet(a);
  auto sb = ToSet(b);
  size_t inter = 0;
  for (const auto& w : sa) {
    if (sb.count(w)) ++inter;
  }
  size_t denom = std::min(sa.size(), sb.size());
  return denom == 0 ? 0.0 : static_cast<double>(inter) / denom;
}

double WeightedOverlapCoefficient(const WeightedBag& a, const WeightedBag& b) {
  if (a.empty() || b.empty()) return 0.0;
  double total_a = 0.0;
  double total_b = 0.0;
  for (const auto& [w, weight] : a) total_a += weight;
  for (const auto& [w, weight] : b) total_b += weight;
  const double denom = std::min(total_a, total_b);
  if (denom <= 0.0) return 0.0;

  double shared = 0.0;
  // Iterate the smaller map for efficiency.
  const WeightedBag& small = a.size() <= b.size() ? a : b;
  const WeightedBag& big = a.size() <= b.size() ? b : a;
  for (const auto& [word, weight] : small) {
    auto it = big.find(word);
    if (it != big.end()) shared += std::min(weight, it->second);
  }
  return shared / denom;
}

}  // namespace briq::util
