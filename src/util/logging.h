#ifndef BRIQ_UTIL_LOGGING_H_
#define BRIQ_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace briq::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level that is actually emitted; messages below are dropped.
/// Defaults to kInfo. The threshold is an atomic: setting it from any
/// thread (e.g. a signal-driven verbosity toggle) while others log is
/// safe.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// Internal: stream-style log sink. Flushes on destruction; aborts the
/// process for kFatal messages (used by BRIQ_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Converts a LogMessage stream chain to void so it can appear on one arm of
/// a ternary (the glog "voidify" idiom behind BRIQ_CHECK).
class LogMessageVoidify {
 public:
  // operator& binds looser than operator<<, so the whole chain runs first.
  void operator&(LogMessage&) {}
};

}  // namespace briq::util

#define BRIQ_LOG(level)                                             \
  ::briq::util::LogMessage(::briq::util::LogLevel::k##level, __FILE__, \
                           __LINE__)

/// Emits on the 1st, (n+1)th, (2n+1)th, ... execution of this statement.
/// Each expansion owns a distinct occurrence counter (the static lives in
/// the lambda), so independent call sites sample independently. The
/// counter is atomic: safe to hit from many threads, though under
/// contention two threads may both see a "due" tick and emit twice.
#define BRIQ_LOG_EVERY_N(level, n)                                           \
  if ([]() noexcept {                                                        \
        static ::std::atomic<::std::uint64_t> briq_internal_occurrences{0};  \
        return briq_internal_occurrences.fetch_add(                          \
                   1, ::std::memory_order_relaxed) %                         \
                   static_cast<::std::uint64_t>(n) ==                        \
               0;                                                            \
      }())                                                                   \
  BRIQ_LOG(level)

/// Fatal-on-failure invariant check. Usage:
///   BRIQ_CHECK(x > 0) << "x must be positive, got " << x;
#define BRIQ_CHECK(cond)                                            \
  (cond) ? (void)0                                                  \
         : ::briq::util::LogMessageVoidify() &                      \
               ::briq::util::LogMessage(::briq::util::LogLevel::kFatal, \
                                        __FILE__, __LINE__)         \
                   << "Check failed: " #cond " "

#define BRIQ_CHECK_OK(expr)                                         \
  do {                                                              \
    ::briq::util::Status _briq_s = (expr);                          \
    BRIQ_CHECK(_briq_s.ok()) << _briq_s.ToString();                 \
  } while (false)

#endif  // BRIQ_UTIL_LOGGING_H_
