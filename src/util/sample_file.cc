#include "util/sample_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "util/hash.h"

namespace briq::util {

namespace {

// Header layout: magic[16], uint32 version, int32 num_features,
// uint64 num_rows, uint64 checksum.
constexpr size_t kHeaderBytes = 16 + 4 + 4 + 8 + 8;

void PackHeader(char* buf, int num_features, uint64_t num_rows,
                uint64_t checksum) {
  std::memcpy(buf, kSampleFileMagic, 16);
  const uint32_t version = kSampleFileVersion;
  const int32_t features = static_cast<int32_t>(num_features);
  std::memcpy(buf + 16, &version, 4);
  std::memcpy(buf + 20, &features, 4);
  std::memcpy(buf + 24, &num_rows, 8);
  std::memcpy(buf + 32, &checksum, 8);
}

}  // namespace

// --- SampleFileWriter -------------------------------------------------------

SampleFileWriter::SampleFileWriter(std::string path, int num_features)
    : path_(std::move(path)),
      num_features_(num_features),
      row_buf_(SampleRowBytes(num_features)),
      checksum_(kFnv1a64OffsetBasis) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    status_ = Status::NotFound("cannot open sample file for writing: " + path_);
    return;
  }
  WriteHeader();  // placeholder; Finish() patches the real counts in
}

void SampleFileWriter::WriteHeader() {
  char header[kHeaderBytes];
  PackHeader(header, num_features_, num_rows_, checksum_);
  out_.write(header, kHeaderBytes);
}

Status SampleFileWriter::Append(const double* x, int32_t label,
                                double weight) {
  if (!status_.ok()) return status_;
  if (finished_) {
    return Status::FailedPrecondition("SampleFileWriter::Append after Finish: " +
                                      path_);
  }
  char* p = row_buf_.data();
  std::memcpy(p, x, sizeof(double) * static_cast<size_t>(num_features_));
  p += sizeof(double) * static_cast<size_t>(num_features_);
  std::memcpy(p, &label, sizeof(label));
  p += sizeof(label);
  std::memcpy(p, &weight, sizeof(weight));
  checksum_ = Fnv1a64(row_buf_.data(), row_buf_.size(), checksum_);
  out_.write(row_buf_.data(), static_cast<std::streamsize>(row_buf_.size()));
  if (!out_.good()) {
    status_ = Status::Internal("sample file write failed: " + path_);
    return status_;
  }
  ++num_rows_;
  return Status::OK();
}

Status SampleFileWriter::Finish() {
  if (!status_.ok()) return status_;
  if (finished_) return Status::OK();
  finished_ = true;
  out_.seekp(0);
  WriteHeader();
  out_.flush();
  if (!out_.good()) {
    status_ = Status::Internal("sample file header patch failed: " + path_);
    return status_;
  }
  out_.close();
  return Status::OK();
}

uint64_t SampleFileWriter::bytes_written() const {
  return kHeaderBytes + static_cast<uint64_t>(num_rows_) *
                            SampleRowBytes(num_features_);
}

// --- SampleFileReader -------------------------------------------------------

SampleFileReader::SampleFileReader(SampleFileReader&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      num_features_(other.num_features_),
      num_rows_(other.num_rows_) {
  other.fd_ = -1;
}

SampleFileReader& SampleFileReader::operator=(
    SampleFileReader&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    num_features_ = other.num_features_;
    num_rows_ = other.num_rows_;
    other.fd_ = -1;
  }
  return *this;
}

SampleFileReader::~SampleFileReader() {
  if (fd_ >= 0) ::close(fd_);
}

Result<SampleFileReader> SampleFileReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open sample file: " + path);
  }
  SampleFileReader reader;
  reader.path_ = path;
  reader.fd_ = fd;

  char header[kHeaderBytes];
  const ssize_t got = ::pread(fd, header, kHeaderBytes, 0);
  if (got != static_cast<ssize_t>(kHeaderBytes)) {
    return Status::ParseError(
        "sample file truncated before the 40-byte header: " + path);
  }
  if (std::memcmp(header, kSampleFileMagic, 16) != 0) {
    return Status::ParseError("not a briq-samples-v1 file (bad magic): " +
                              path);
  }
  uint32_t version = 0;
  int32_t features = 0;
  uint64_t rows = 0;
  uint64_t checksum = 0;
  std::memcpy(&version, header + 16, 4);
  std::memcpy(&features, header + 20, 4);
  std::memcpy(&rows, header + 24, 8);
  std::memcpy(&checksum, header + 32, 8);
  if (version != kSampleFileVersion) {
    return Status::ParseError("unsupported sample file version " +
                              std::to_string(version) + ": " + path);
  }
  if (features <= 0) {
    return Status::ParseError("sample file declares non-positive feature "
                              "count " + std::to_string(features) + ": " +
                              path);
  }
  reader.num_features_ = features;
  reader.num_rows_ = static_cast<size_t>(rows);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    return Status::Internal("fstat failed on sample file: " + path);
  }
  const uint64_t expected =
      kHeaderBytes + rows * static_cast<uint64_t>(SampleRowBytes(features));
  if (static_cast<uint64_t>(st.st_size) < expected) {
    return Status::ParseError(
        "sample file truncated: header declares " + std::to_string(rows) +
        " rows (" + std::to_string(expected) + " bytes), file has " +
        std::to_string(st.st_size) + " bytes: " + path);
  }
  if (static_cast<uint64_t>(st.st_size) > expected) {
    return Status::ParseError(
        "sample file has trailing data beyond the " + std::to_string(rows) +
        " rows its header declares: " + path);
  }

  // Checksum scan: one sequential pass over the rows. A writer that died
  // before Finish() left the placeholder header (0 rows, empty-hash
  // checksum) with rows behind it, which the size check above rejects.
  const size_t row_bytes = SampleRowBytes(features);
  std::vector<char> buf(row_bytes * 256);
  uint64_t state = kFnv1a64OffsetBasis;
  uint64_t remaining = rows * static_cast<uint64_t>(row_bytes);
  uint64_t offset = kHeaderBytes;
  while (remaining > 0) {
    const size_t want =
        remaining < buf.size() ? static_cast<size_t>(remaining) : buf.size();
    const ssize_t n = ::pread(fd, buf.data(), want,
                              static_cast<off_t>(offset));
    if (n <= 0) {
      return Status::Internal("sample file read failed during checksum "
                              "scan: " + path);
    }
    state = Fnv1a64(buf.data(), static_cast<size_t>(n), state);
    offset += static_cast<uint64_t>(n);
    remaining -= static_cast<uint64_t>(n);
  }
  if (state != checksum) {
    char want_hex[17];
    char got_hex[17];
    std::snprintf(want_hex, sizeof(want_hex), "%016llx",
                  static_cast<unsigned long long>(checksum));
    std::snprintf(got_hex, sizeof(got_hex), "%016llx",
                  static_cast<unsigned long long>(state));
    return Status::ParseError("sample file checksum mismatch: header says " +
                              std::string(want_hex) + ", content hashes to " +
                              std::string(got_hex) + ": " + path);
  }
  return reader;
}

Status SampleFileReader::Read(size_t row, double* x, int32_t* label,
                              double* weight) const {
  if (row >= num_rows_) {
    return Status::OutOfRange("sample row " + std::to_string(row) +
                              " out of range (file has " +
                              std::to_string(num_rows_) + "): " + path_);
  }
  const size_t row_bytes = SampleRowBytes(num_features_);
  // Stack buffer for typical feature counts; training rows are small.
  char stack[512];
  std::vector<char> heap;
  char* buf = stack;
  if (row_bytes > sizeof(stack)) {
    heap.resize(row_bytes);
    buf = heap.data();
  }
  const off_t offset =
      static_cast<off_t>(kHeaderBytes + row * row_bytes);
  const ssize_t n = ::pread(fd_, buf, row_bytes, offset);
  if (n != static_cast<ssize_t>(row_bytes)) {
    return Status::Internal("sample file read failed at row " +
                            std::to_string(row) + ": " + path_);
  }
  std::memcpy(x, buf, sizeof(double) * static_cast<size_t>(num_features_));
  const char* p = buf + sizeof(double) * static_cast<size_t>(num_features_);
  std::memcpy(label, p, sizeof(*label));
  std::memcpy(weight, p + sizeof(*label), sizeof(*weight));
  return Status::OK();
}

}  // namespace briq::util
