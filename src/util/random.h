#ifndef BRIQ_UTIL_RANDOM_H_
#define BRIQ_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace briq::util {

/// Deterministic pseudo-random generator (xoshiro256**). Every source of
/// randomness in BriQ flows through an explicitly seeded Rng so that corpora,
/// model training, and benchmark results are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`
  /// (non-negative; at least one must be positive).
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks one element uniformly at random. Container must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[UniformInt(v.size())];
  }

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_RANDOM_H_
