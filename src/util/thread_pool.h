#ifndef BRIQ_UTIL_THREAD_POOL_H_
#define BRIQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace briq::util {

/// A fixed-size worker pool over a single task queue. All intra-process
/// parallelism in BriQ (batch alignment, forest training, corpus
/// preparation) flows through this class so that thread creation is
/// bounded and exception propagation is uniform.
///
/// Tasks submitted via Submit() return a std::future; an exception thrown
/// by the task is captured and rethrown from future::get(). ParallelFor()
/// blocks until the whole range is processed and rethrows the first chunk
/// exception on the calling thread.
///
/// ParallelFor must not be called from inside a pool task of the same
/// pool (the caller would block a worker slot it is waiting on).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; values <= 0 mean
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. The future's
  /// get() rethrows any exception the task threw.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Splits [begin, end) into contiguous chunks of at most `grain`
  /// elements (grain < 1 is clamped to 1), runs fn(chunk_begin, chunk_end)
  /// across the workers, and blocks until every chunk finished. The first
  /// exception thrown by any chunk is rethrown here. Ranges that fit into
  /// a single chunk — and all work on a 1-thread pool — run inline on the
  /// calling thread.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// One-shot ParallelFor: runs inline when `num_threads` <= 1 (or the range
/// fits a single chunk), otherwise spins up a transient pool. Use a
/// long-lived ThreadPool instead when calls are frequent and small.
void ParallelFor(int num_threads, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace briq::util

#endif  // BRIQ_UTIL_THREAD_POOL_H_
