#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace briq::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads = std::max(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(grain, 1);
  if (num_threads() <= 1 || end - begin <= grain) {
    fn(begin, end);
    return;
  }

  std::vector<std::future<void>> chunks;
  chunks.reserve((end - begin + grain - 1) / grain);
  for (size_t lo = begin; lo < end; lo += grain) {
    const size_t hi = std::min(end, lo + grain);
    chunks.push_back(Submit([&fn, lo, hi] { fn(lo, hi); }));
  }

  // Wait on every chunk; surface the first failure only after all chunks
  // finished, so no task is left referencing `fn` when we rethrow.
  std::exception_ptr first_error;
  for (std::future<void>& chunk : chunks) {
    try {
      chunk.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(int num_threads, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(grain, 1);
  if (num_threads == 1 || end - begin <= grain) {
    fn(begin, end);
    return;
  }
  ThreadPool pool(num_threads);
  pool.ParallelFor(begin, end, grain, fn);
}

}  // namespace briq::util
