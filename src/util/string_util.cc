#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace briq::util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StemLight(std::string_view word) {
  std::string w(word);
  if (EndsWith(w, "'s")) w.erase(w.size() - 2);
  if (w.size() > 3 && w.back() == 's') {
    char prev = w[w.size() - 2];
    if (prev != 's' && prev != 'u' && prev != 'i') w.pop_back();
  }
  return w;
}

std::string FormatDouble(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  if (s == "-0") s = "0";
  return s;
}

std::string WithThousandsSeparators(int64_t v) {
  bool neg = v < 0;
  // Build digit string of |v| without overflowing on INT64_MIN.
  uint64_t mag = neg ? (~static_cast<uint64_t>(v) + 1) : static_cast<uint64_t>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace briq::util
