#ifndef BRIQ_UTIL_FRAMING_H_
#define BRIQ_UTIL_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/result.h"
#include "util/tcp_listener.h"

namespace briq::util {

/// Length-prefixed message framing over a byte stream (the fleet push
/// protocol's wire format, DESIGN.md §5j). Every frame is
///
///     [4-byte big-endian payload length][payload bytes]
///
/// so a reader can always tell a complete message from a torn one: bytes
/// still short of the declared length are "pending", never delivered. The
/// payload is opaque here; the fleet layer puts one compact JSON line in
/// each frame ("length-prefixed JSONL").

/// Upper bound on a single frame's payload. A declared length above this
/// is a protocol violation (a desynchronized or hostile peer), surfaced
/// as an error rather than a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayloadBytes = 16u * 1024u * 1024u;

/// Renders the 4-byte length prefix + payload as one contiguous string
/// (one SendAll per frame keeps writes atomic w.r.t. the peer's reader).
std::string EncodeFrame(const std::string& payload);

/// Encodes and sends one frame. Returns false when the peer closed or the
/// payload exceeds kMaxFramePayloadBytes.
bool SendFrame(ClientSocket& socket, const std::string& payload);

/// Incremental frame decoder: feed raw bytes in any chunking, pull
/// complete payloads out. A truncated trailing frame simply stays
/// pending; an impossible declared length poisons only this reader (the
/// caller drops the connection), never the process.
class FrameReader {
 public:
  /// Appends raw bytes received from the peer.
  void Append(const char* data, size_t len);

  /// Next complete payload, std::nullopt when no full frame is buffered,
  /// or an error when the stream declares an oversized frame. After an
  /// error every subsequent call returns the same error — a desynced
  /// length prefix makes all later bytes meaningless.
  Result<std::optional<std::string>> Next();

  /// Bytes buffered but not yet returned (a nonzero value at EOF means
  /// the peer died mid-frame — the torn remainder is dropped).
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

  /// True once Next() reported a protocol error.
  bool poisoned() const { return poisoned_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_FRAMING_H_
