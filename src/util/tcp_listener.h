#ifndef BRIQ_UTIL_TCP_LISTENER_H_
#define BRIQ_UTIL_TCP_LISTENER_H_

#include <cstdint>

#include "util/result.h"

namespace briq::util {

/// Thin RAII wrapper over a listening POSIX socket bound to 127.0.0.1.
/// Exists so the observability layer can expose /metrics without any
/// third-party HTTP dependency; loopback-only by design — this is a
/// diagnostics port, not a service mesh.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port`. Port 0 asks the kernel for an
  /// ephemeral port; read the actual one back from port().
  static Result<TcpListener> Listen(uint16_t port);

  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolved even when Listen was called with port 0).
  uint16_t port() const { return port_; }

  /// Waits up to `timeout_seconds` for one connection. Returns the accepted
  /// socket fd (caller owns, must ::close), or -1 on timeout. The timeout
  /// is what keeps an accept loop responsive to a stop flag without
  /// signals.
  int AcceptOnce(double timeout_seconds);

  /// Closes the listening socket early (also done by the destructor).
  void Close();

 private:
  explicit TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_TCP_LISTENER_H_
