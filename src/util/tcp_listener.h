#ifndef BRIQ_UTIL_TCP_LISTENER_H_
#define BRIQ_UTIL_TCP_LISTENER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"

namespace briq::util {

/// RAII owner of one accepted (or connected) client socket. Move-only;
/// the fd is closed exactly once, on destruction or an explicit Close().
/// The blocking Send/Recv helpers cover what a loopback HTTP exchange
/// needs without exposing raw POSIX calls to every caller.
class ClientSocket {
 public:
  ClientSocket() = default;
  /// Takes ownership of `fd` (pass -1 for an empty socket).
  explicit ClientSocket(int fd) : fd_(fd) {}
  ~ClientSocket();
  ClientSocket(ClientSocket&& other) noexcept;
  ClientSocket& operator=(ClientSocket&& other) noexcept;
  ClientSocket(const ClientSocket&) = delete;
  ClientSocket& operator=(const ClientSocket&) = delete;

  /// Connects to 127.0.0.1:`port` (the client half of the loopback pair).
  static Result<ClientSocket> Connect(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data`, looping over partial sends (SIGPIPE is
  /// suppressed). Returns false when the peer closed or an error occurred.
  bool SendAll(const std::string& data);

  /// Waits up to `timeout_seconds` for readability, then performs one
  /// recv into `buf`. Returns the byte count, 0 on orderly peer close,
  /// -1 on timeout or error.
  ssize_t RecvSome(char* buf, size_t len, double timeout_seconds);

  /// Closes the fd early (also done by the destructor). Safe to call
  /// repeatedly.
  void Close();

 private:
  int fd_ = -1;
};

/// Thin RAII wrapper over a listening POSIX socket bound to 127.0.0.1.
/// Originally the observability layer's diagnostics port; the serving
/// layer (src/serve/) builds its accept loop on the same primitive.
/// Loopback-only by design — deployments front it with a real proxy.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port`. Port 0 asks the kernel for an
  /// ephemeral port; read the actual one back from port().
  static Result<TcpListener> Listen(uint16_t port);

  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolved even when Listen was called with port 0).
  uint16_t port() const { return port_; }

  /// Waits up to `timeout_seconds` for one connection. Returns the accepted
  /// socket fd (caller owns, must ::close), or -1 on timeout. The timeout
  /// is what keeps an accept loop responsive to a stop flag without
  /// signals.
  int AcceptOnce(double timeout_seconds);

  /// AcceptOnce, but the returned socket is owned: an invalid() socket
  /// means timeout (or a closed listener).
  ClientSocket AcceptClient(double timeout_seconds) {
    return ClientSocket(AcceptOnce(timeout_seconds));
  }

  /// Closes the listening socket early (also done by the destructor).
  /// Safe to call repeatedly.
  void Close();

 private:
  explicit TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_TCP_LISTENER_H_
