#ifndef BRIQ_UTIL_SAMPLE_FILE_H_
#define BRIQ_UTIL_SAMPLE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace briq::util {

/// Fixed-width binary sample file ("briq-samples-v1") for out-of-core
/// training. One file holds the labeled feature rows of a single dataset:
///
///     header  (40 bytes): magic[16] "briq-samples-v1\0",
///                         uint32 version, int32 num_features,
///                         uint64 num_rows, uint64 checksum
///     row i   (8*num_features + 4 + 8 bytes):
///                         double x[num_features], int32 label,
///                         double weight
///
/// The checksum is FNV-1a 64 over all row bytes (like briq-shard-v1, so
/// truncation and byte-level corruption are detected before any training
/// run consumes the file). Rows are fixed width: row `i` lives at a
/// computable offset, which makes seeded bootstrap draws over the file
/// random-access without an index. Values are host byte order; doubles
/// round-trip bit-exact, which the training determinism contract relies
/// on. Sample files are local scratch artifacts, not interchange files.

inline constexpr char kSampleFileMagic[16] = "briq-samples-v1";
inline constexpr uint32_t kSampleFileVersion = 1;

/// Bytes of one row for `num_features` features.
inline size_t SampleRowBytes(int num_features) {
  return sizeof(double) * static_cast<size_t>(num_features) + sizeof(int32_t) +
         sizeof(double);
}

/// Streams rows to a sample file. The header (row count + checksum) is
/// back-patched by Finish(); a file whose writer died before Finish()
/// fails the reader's checksum, it cannot be mistaken for complete.
class SampleFileWriter {
 public:
  /// Opens `path` for writing (truncates). Errors are sticky: they
  /// surface from the next Append()/Finish().
  SampleFileWriter(std::string path, int num_features);

  SampleFileWriter(const SampleFileWriter&) = delete;
  SampleFileWriter& operator=(const SampleFileWriter&) = delete;

  /// Appends one row; `x` must have num_features entries.
  Status Append(const double* x, int32_t label, double weight);

  /// Patches the header and closes the file. Idempotent.
  Status Finish();

  int num_features() const { return num_features_; }
  size_t num_rows() const { return num_rows_; }
  /// Total file size so far, header included (spill telemetry).
  uint64_t bytes_written() const;
  const std::string& path() const { return path_; }

 private:
  void WriteHeader();

  std::string path_;
  int num_features_ = 0;
  std::ofstream out_;
  std::vector<char> row_buf_;
  size_t num_rows_ = 0;
  uint64_t checksum_ = 0;
  bool finished_ = false;
  Status status_;
};

/// Random-access reader over a sample file. Open() validates the header,
/// the file size against the declared row count, and the checksum (one
/// sequential scan), so Read() afterwards only fails on I/O errors.
/// Read() uses positional reads (pread) and is safe to call from many
/// threads concurrently — parallel tree fits draw bootstrap rows without
/// any locking.
class SampleFileReader {
 public:
  static Result<SampleFileReader> Open(const std::string& path);

  SampleFileReader(SampleFileReader&& other) noexcept;
  SampleFileReader& operator=(SampleFileReader&& other) noexcept;
  SampleFileReader(const SampleFileReader&) = delete;
  SampleFileReader& operator=(const SampleFileReader&) = delete;
  ~SampleFileReader();

  /// Copies row `row` into x[0 .. num_features). Thread-safe.
  Status Read(size_t row, double* x, int32_t* label, double* weight) const;

  int num_features() const { return num_features_; }
  size_t num_rows() const { return num_rows_; }
  const std::string& path() const { return path_; }

 private:
  SampleFileReader() = default;

  std::string path_;
  int fd_ = -1;
  int num_features_ = 0;
  size_t num_rows_ = 0;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_SAMPLE_FILE_H_
