#ifndef BRIQ_UTIL_SIMILARITY_H_
#define BRIQ_UTIL_SIMILARITY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace briq::util {

/// Jaro similarity in [0, 1]; 1 means identical strings.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1]. Boosts matches sharing a common prefix
/// (up to 4 chars), which the paper adopts because agreement at the start of
/// a quantity surface form ("26.7$" vs "26.65$") is the strongest signal.
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Jaccard similarity |A∩B| / |A∪B| over token multiset supports (sets).
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Overlap coefficient |A∩B| / min(|A|, |B|) over token sets.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// A bag of words with per-word non-negative weights. Ordered on purpose:
/// WeightedOverlapCoefficient accumulates floating-point sums in iteration
/// order, and key order — unlike a hash map's bucket order — does not
/// depend on the container's rehash history, so scores are bit-identical
/// whether bags are freshly built or reused scratch across threads.
using WeightedBag = std::map<std::string, double>;

/// Weighted overlap coefficient: sum over shared words of min(w_a, w_b),
/// divided by min(total weight of a, total weight of b). Used by the paper's
/// local-context feature f2, where word weights decay with distance from the
/// text mention. Returns 0 when either bag is empty/zero-weight.
double WeightedOverlapCoefficient(const WeightedBag& a, const WeightedBag& b);

}  // namespace briq::util

#endif  // BRIQ_UTIL_SIMILARITY_H_
