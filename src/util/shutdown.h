#ifndef BRIQ_UTIL_SHUTDOWN_H_
#define BRIQ_UTIL_SHUTDOWN_H_

namespace briq::util {

/// Process-wide graceful-shutdown latch over SIGTERM/SIGINT. Long-running
/// commands (`briq_tool serve`, the fleet driver) install the handler once
/// and poll ShutdownRequested() from their main loop: the first signal
/// flips the latch (drain: stop accepting, finish in-flight work, write
/// final records), the second restores the default disposition so a stuck
/// drain can still be killed the ordinary way.

/// Installs the SIGTERM/SIGINT handler. Idempotent; async-signal-safe
/// handler (it only writes a sig_atomic_t flag).
void InstallShutdownHandler();

/// True once SIGTERM or SIGINT arrived after InstallShutdownHandler().
bool ShutdownRequested();

/// The signal number that triggered the latch (0 when none did).
int ShutdownSignal();

/// Resets the latch (tests only; production drains exit instead).
void ResetShutdownForTest();

}  // namespace briq::util

#endif  // BRIQ_UTIL_SHUTDOWN_H_
