#ifndef BRIQ_UTIL_TABLE_PRINTER_H_
#define BRIQ_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace briq::util {

/// Renders aligned ASCII tables for the experiment harness so every bench
/// binary prints paper-style rows (paper value next to measured value).
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row. Column count is fixed by this call.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Must match the header's column count (checked).
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line between data rows.
  void AddSeparator();

  /// Renders the full table.
  std::string ToString() const;

  /// Convenience: renders to a stream.
  void Print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace briq::util

#endif  // BRIQ_UTIL_TABLE_PRINTER_H_
