#include "util/tcp_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace briq::util {

ClientSocket::~ClientSocket() { Close(); }

ClientSocket::ClientSocket(ClientSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ClientSocket& ClientSocket::operator=(ClientSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<ClientSocket> ClientSocket::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  return ClientSocket(fd);
}

bool ClientSocket::SendAll(const std::string& data) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

ssize_t ClientSocket::RecvSome(char* buf, size_t len, double timeout_seconds) {
  if (fd_ < 0) return -1;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int timeout_ms =
      timeout_seconds <= 0.0 ? 0 : static_cast<int>(timeout_seconds * 1000.0);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return -1;  // timeout or (transient) poll error
  return ::recv(fd_, buf, len, 0);
}

void ClientSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  if (::listen(fd, /*backlog=*/16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen(): " + err);
  }
  // Resolve the ephemeral port the kernel picked for port 0.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname(): " + err);
  }
  return TcpListener(fd, ntohs(bound.sin_port));
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

int TcpListener::AcceptOnce(double timeout_seconds) {
  if (fd_ < 0) return -1;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int timeout_ms =
      timeout_seconds <= 0.0 ? 0 : static_cast<int>(timeout_seconds * 1000.0);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return -1;  // timeout or (transient) poll error
  const int client = ::accept(fd_, nullptr, nullptr);
  return client < 0 ? -1 : client;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace briq::util
