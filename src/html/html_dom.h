#ifndef BRIQ_HTML_HTML_DOM_H_
#define BRIQ_HTML_HTML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "html/html_lexer.h"

namespace briq::html {

/// A node of the lightweight DOM: either an element (tag + attributes +
/// children) or a text node.
struct Node {
  enum class Type { kElement, kText };

  Type type = Type::kElement;
  std::string tag;      // elements
  std::string textual;  // text nodes
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<Node>> children;

  bool IsElement(std::string_view name) const {
    return type == Type::kElement && tag == name;
  }

  std::string Attribute(std::string_view name) const;

  /// Concatenated text of this subtree, whitespace-collapsed, with block
  /// boundaries rendered as single spaces.
  std::string InnerText() const;

  /// Depth-first search for all descendant elements with the given tag
  /// (not entering matched subtrees when `nested` is false).
  std::vector<const Node*> FindAll(std::string_view name,
                                   bool nested = true) const;

  /// First descendant with the tag, or nullptr.
  const Node* FindFirst(std::string_view name) const;
};

/// Parses an HTML document into a DOM tree rooted at a synthetic
/// "#document" element. Tolerant of missing end tags via HTML5-style
/// implied-close rules for p/li/tr/td/th/thead/tbody/option and void
/// elements (br, img, hr, ...).
std::unique_ptr<Node> ParseHtml(std::string_view html);

}  // namespace briq::html

#endif  // BRIQ_HTML_HTML_DOM_H_
