#include "html/html_dom.h"

#include <unordered_set>

#include "util/string_util.h"

namespace briq::html {

std::string Node::Attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (util::EqualsIgnoreCase(k, name)) return v;
  }
  return "";
}

namespace {

void CollectText(const Node& node, std::string* out) {
  if (node.type == Node::Type::kText) {
    if (!out->empty() && out->back() != ' ') out->push_back(' ');
    out->append(node.textual);
    return;
  }
  for (const auto& child : node.children) CollectText(*child, out);
}

}  // namespace

std::string Node::InnerText() const {
  std::string raw;
  CollectText(*this, &raw);
  // Collapse whitespace runs.
  std::string out;
  out.reserve(raw.size());
  bool in_space = true;
  for (char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<const Node*> Node::FindAll(std::string_view name,
                                       bool nested) const {
  std::vector<const Node*> out;
  for (const auto& child : children) {
    if (child->IsElement(name)) {
      out.push_back(child.get());
      if (!nested) continue;
    }
    auto sub = child->FindAll(name, nested);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

const Node* Node::FindFirst(std::string_view name) const {
  for (const auto& child : children) {
    if (child->IsElement(name)) return child.get();
    if (const Node* found = child->FindFirst(name)) return found;
  }
  return nullptr;
}

namespace {

bool IsVoidElement(const std::string& tag) {
  static const auto& kVoid = *new std::unordered_set<std::string>{
      "br", "hr", "img", "input", "meta", "link", "col", "area", "base",
      "embed", "source", "track", "wbr"};
  return kVoid.count(tag) > 0;
}

// Tags that an opening `tag` implicitly closes when currently open.
// Approximation of the HTML5 tree-construction rules for the subset of
// structure that matters for table/paragraph extraction.
bool ImpliesClose(const std::string& open, const std::string& incoming) {
  if (open == "p") {
    static const auto& kBlocks = *new std::unordered_set<std::string>{
        "p", "div", "table", "ul", "ol", "h1", "h2", "h3", "h4", "h5",
        "h6", "blockquote", "pre", "section", "article"};
    return kBlocks.count(incoming) > 0;
  }
  if (open == "li") return incoming == "li";
  if (open == "option") return incoming == "option";
  if (open == "tr") return incoming == "tr" || incoming == "tbody" ||
                            incoming == "thead" || incoming == "tfoot";
  if (open == "td" || open == "th") {
    return incoming == "td" || incoming == "th" || incoming == "tr" ||
           incoming == "tbody" || incoming == "thead" || incoming == "tfoot";
  }
  if (open == "thead" || open == "tbody" || open == "tfoot") {
    return incoming == "tbody" || incoming == "tfoot" || incoming == "thead";
  }
  return false;
}

}  // namespace

std::unique_ptr<Node> ParseHtml(std::string_view html) {
  auto root = std::make_unique<Node>();
  root->type = Node::Type::kElement;
  root->tag = "#document";

  std::vector<Node*> stack = {root.get()};

  for (HtmlToken& tok : LexHtml(html)) {
    switch (tok.kind) {
      case HtmlTokenKind::kText: {
        auto node = std::make_unique<Node>();
        node->type = Node::Type::kText;
        node->textual = std::move(tok.textual);
        stack.back()->children.push_back(std::move(node));
        break;
      }
      case HtmlTokenKind::kStartTag: {
        // Apply implied-close rules.
        while (stack.size() > 1 && ImpliesClose(stack.back()->tag, tok.tag)) {
          stack.pop_back();
        }
        auto node = std::make_unique<Node>();
        node->type = Node::Type::kElement;
        node->tag = tok.tag;
        node->attributes = std::move(tok.attributes);
        Node* raw = node.get();
        stack.back()->children.push_back(std::move(node));
        if (!tok.self_closing && !IsVoidElement(tok.tag)) {
          stack.push_back(raw);
        }
        break;
      }
      case HtmlTokenKind::kEndTag: {
        // Pop to the nearest matching open element; ignore stray end tags.
        for (size_t k = stack.size(); k-- > 1;) {
          if (stack[k]->tag == tok.tag) {
            stack.resize(k);
            break;
          }
        }
        break;
      }
    }
  }
  return root;
}

}  // namespace briq::html
