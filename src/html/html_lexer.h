#ifndef BRIQ_HTML_HTML_LEXER_H_
#define BRIQ_HTML_HTML_LEXER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace briq::html {

/// Lexical token kinds of the HTML stream.
enum class HtmlTokenKind {
  kStartTag,  // <p ...> or self-closing <br/>
  kEndTag,    // </p>
  kText,      // character data with entities decoded
};

/// One lexed HTML token. Tag names are lowercased; attribute values are
/// entity-decoded. Comments, doctypes, and processing instructions are
/// skipped by the lexer.
struct HtmlToken {
  HtmlTokenKind kind = HtmlTokenKind::kText;
  std::string tag;   // for start/end tags
  std::string textual;  // for text tokens (decoded)
  std::vector<std::pair<std::string, std::string>> attributes;
  bool self_closing = false;

  /// Returns the attribute value or "" if absent.
  std::string Attribute(std::string_view name) const;
};

/// Tokenizes an HTML document. Tolerant of real-world sloppiness: unquoted
/// attributes, missing end tags (handled by the parser), stray '<'.
/// Contents of <script> and <style> are skipped entirely.
std::vector<HtmlToken> LexHtml(std::string_view html);

/// Decodes HTML character references in `s` (&amp;, &#233;, &#x20AC;, and
/// the named entities common on data-bearing pages: nbsp, euro, pound,
/// plusmn, mdash, ndash, times, quot, apos, lt, gt).
std::string DecodeEntities(std::string_view s);

}  // namespace briq::html

#endif  // BRIQ_HTML_HTML_LEXER_H_
