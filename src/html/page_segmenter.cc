#include "html/page_segmenter.h"

#include <unordered_set>

#include "html/html_dom.h"
#include "html/table_extractor.h"
#include "util/string_util.h"

namespace briq::html {

size_t Page::ParagraphCount() const {
  size_t n = 0;
  for (const auto& b : blocks) {
    if (b.kind == PageBlock::Kind::kParagraph) ++n;
  }
  return n;
}

size_t Page::TableCount() const {
  size_t n = 0;
  for (const auto& b : blocks) {
    if (b.kind == PageBlock::Kind::kTable) ++n;
  }
  return n;
}

namespace {

bool IsHeadingTag(const std::string& tag) {
  return tag.size() == 2 && tag[0] == 'h' && tag[1] >= '1' && tag[1] <= '6';
}

// True if the subtree contains block-level structure that we walk into
// instead of flattening.
bool HasNestedBlocks(const Node& node) {
  static const auto& kBlockTags = *new std::unordered_set<std::string>{
      "p", "div", "table", "ul", "ol", "section", "article", "h1", "h2",
      "h3", "h4", "h5", "h6", "blockquote"};
  for (const auto& child : node.children) {
    if (child->type == Node::Type::kElement &&
        kBlockTags.count(child->tag) > 0) {
      return true;
    }
  }
  return false;
}

void Walk(const Node& node, Page* page) {
  for (const auto& child : node.children) {
    if (child->type == Node::Type::kText) {
      // Bare text directly inside body/div containers: its own paragraph.
      std::string txt(util::Trim(child->textual));
      if (!txt.empty()) {
        PageBlock b;
        b.kind = PageBlock::Kind::kParagraph;
        b.textual = std::move(txt);
        page->blocks.push_back(std::move(b));
      }
      continue;
    }
    const std::string& tag = child->tag;
    if (tag == "script" || tag == "style" || tag == "head" || tag == "nav" ||
        tag == "footer") {
      if (tag == "head") {
        if (const Node* title = child->FindFirst("title")) {
          page->title = title->InnerText();
        }
      }
      continue;
    }
    if (tag == "table") {
      auto t = ExtractTable(*child);
      if (t.ok() && !t->empty()) {
        PageBlock b;
        b.kind = PageBlock::Kind::kTable;
        b.table = std::move(t).value();
        page->blocks.push_back(std::move(b));
      }
      continue;
    }
    if (tag == "p" || tag == "li" || tag == "blockquote") {
      std::string txt = child->InnerText();
      if (!txt.empty()) {
        PageBlock b;
        b.kind = PageBlock::Kind::kParagraph;
        b.textual = std::move(txt);
        page->blocks.push_back(std::move(b));
      }
      continue;
    }
    if (IsHeadingTag(tag)) {
      std::string txt = child->InnerText();
      if (!txt.empty()) {
        PageBlock b;
        b.kind = PageBlock::Kind::kHeading;
        b.textual = std::move(txt);
        page->blocks.push_back(std::move(b));
      }
      continue;
    }
    if (tag == "div" || tag == "section" || tag == "article" ||
        tag == "body" || tag == "html" || tag == "main" || tag == "span" ||
        tag == "ul" || tag == "ol") {
      if ((tag == "div" || tag == "span") && !HasNestedBlocks(*child)) {
        std::string txt = child->InnerText();
        if (!txt.empty()) {
          PageBlock b;
          b.kind = PageBlock::Kind::kParagraph;
          b.textual = std::move(txt);
          page->blocks.push_back(std::move(b));
        }
        continue;
      }
      Walk(*child, page);
      continue;
    }
    // Unknown container: recurse.
    Walk(*child, page);
  }
}

}  // namespace

Page SegmentPage(std::string_view html) {
  Page page;
  std::unique_ptr<Node> dom = ParseHtml(html);
  Walk(*dom, &page);
  return page;
}

}  // namespace briq::html
