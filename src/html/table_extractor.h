#ifndef BRIQ_HTML_TABLE_EXTRACTOR_H_
#define BRIQ_HTML_TABLE_EXTRACTOR_H_

#include <string_view>
#include <vector>

#include "html/html_dom.h"
#include "table/table.h"
#include "util/result.h"

namespace briq::html {

/// Converts a DOM <table> element into a table::Table: rows from
/// thead/tbody/tfoot/tr, cells from td/th with rowspan/colspan expansion
/// (spanned positions receive copies of the content), caption from
/// <caption>, header row/column from <th> placement with the numeric
/// heuristic (Table::DetectHeaders) as fallback. The returned table is
/// already quantity-annotated.
util::Result<table::Table> ExtractTable(const Node& table_element);

/// All tables in an HTML document, in document order. Tables that end up
/// empty (no rows/cells) are skipped.
std::vector<table::Table> ExtractTables(std::string_view html);

}  // namespace briq::html

#endif  // BRIQ_HTML_TABLE_EXTRACTOR_H_
