#ifndef BRIQ_HTML_PAGE_SEGMENTER_H_
#define BRIQ_HTML_PAGE_SEGMENTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "table/table.h"

namespace briq::html {

/// One content block of a web page, in document order.
struct PageBlock {
  enum class Kind { kParagraph, kTable, kHeading };
  Kind kind = Kind::kParagraph;
  std::string textual;    // paragraphs & headings
  table::Table table;  // tables (annotated)
};

/// A segmented web page: title plus the ordered sequence of paragraphs,
/// headings, and tables. This is the input to the core table-text
/// extraction stage (paper §III), which groups paragraphs with their
/// related tables into coherent documents.
struct Page {
  std::string title;
  std::vector<PageBlock> blocks;

  size_t ParagraphCount() const;
  size_t TableCount() const;
};

/// Parses an HTML page and flattens it into blocks. Paragraphs come from
/// <p>; headings from <h1>-<h6>; tables via ExtractTable. List items and
/// block-level <div> text with no nested blocks are treated as paragraphs.
Page SegmentPage(std::string_view html);

}  // namespace briq::html

#endif  // BRIQ_HTML_PAGE_SEGMENTER_H_
