#include "html/html_lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "util/string_util.h"

namespace briq::html {

std::string HtmlToken::Attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (util::EqualsIgnoreCase(k, name)) return v;
  }
  return "";
}

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == ':';
}

// UTF-8 encodes `cp` onto `out`.
void AppendCodepoint(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

const std::unordered_map<std::string, uint32_t>& NamedEntities() {
  static const auto& kMap = *new std::unordered_map<std::string, uint32_t>{
      {"amp", '&'},     {"lt", '<'},      {"gt", '>'},     {"quot", '"'},
      {"apos", '\''},   {"nbsp", ' '},    {"euro", 0x20AC}, {"pound", 0xA3},
      {"yen", 0xA5},    {"cent", 0xA2},   {"plusmn", 0xB1}, {"mdash", 0x2014},
      {"ndash", 0x2013}, {"times", 0xD7}, {"copy", 0xA9},  {"reg", 0xAE},
      {"deg", 0xB0},    {"middot", 0xB7}, {"hellip", 0x2026},
      {"lsquo", 0x2018}, {"rsquo", 0x2019}, {"ldquo", 0x201C},
      {"rdquo", 0x201D},
  };
  return kMap;
}

}  // namespace

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      ++i;
      continue;
    }
    size_t semi = s.find(';', i + 1);
    // Entities are short; a distant/absent ';' means a literal '&'.
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back('&');
      ++i;
      continue;
    }
    std::string_view body = s.substr(i + 1, semi - i - 1);
    if (!body.empty() && body[0] == '#') {
      uint32_t cp = 0;
      bool ok = false;
      if (body.size() > 1 && (body[1] == 'x' || body[1] == 'X')) {
        cp = static_cast<uint32_t>(
            std::strtoul(std::string(body.substr(2)).c_str(), nullptr, 16));
        ok = body.size() > 2;
      } else {
        cp = static_cast<uint32_t>(
            std::strtoul(std::string(body.substr(1)).c_str(), nullptr, 10));
        ok = body.size() > 1;
      }
      if (ok && cp > 0 && cp <= 0x10FFFF) {
        AppendCodepoint(cp, &out);
        i = semi + 1;
        continue;
      }
    } else {
      auto it = NamedEntities().find(util::ToLower(body));
      if (it != NamedEntities().end()) {
        AppendCodepoint(it->second, &out);
        i = semi + 1;
        continue;
      }
    }
    out.push_back('&');
    ++i;
  }
  return out;
}

std::vector<HtmlToken> LexHtml(std::string_view html) {
  std::vector<HtmlToken> tokens;
  size_t i = 0;
  const size_t n = html.size();

  auto emit_text = [&](size_t begin, size_t end) {
    if (end <= begin) return;
    std::string decoded = DecodeEntities(html.substr(begin, end - begin));
    // Skip pure-whitespace runs between tags.
    if (util::Trim(decoded).empty()) return;
    HtmlToken t;
    t.kind = HtmlTokenKind::kText;
    t.textual = std::move(decoded);
    tokens.push_back(std::move(t));
  };

  size_t text_start = 0;
  while (i < n) {
    if (html[i] != '<') {
      ++i;
      continue;
    }
    // Comment?
    if (html.compare(i, 4, "<!--") == 0) {
      emit_text(text_start, i);
      size_t end = html.find("-->", i + 4);
      i = end == std::string_view::npos ? n : end + 3;
      text_start = i;
      continue;
    }
    // Doctype / PI?
    if (i + 1 < n && (html[i + 1] == '!' || html[i + 1] == '?')) {
      emit_text(text_start, i);
      size_t end = html.find('>', i);
      i = end == std::string_view::npos ? n : end + 1;
      text_start = i;
      continue;
    }
    // Tag?
    bool closing = i + 1 < n && html[i + 1] == '/';
    size_t name_start = i + (closing ? 2 : 1);
    if (name_start >= n ||
        !std::isalpha(static_cast<unsigned char>(html[name_start]))) {
      ++i;  // stray '<'
      continue;
    }
    emit_text(text_start, i);

    size_t j = name_start;
    while (j < n && IsNameChar(html[j])) ++j;
    std::string tag = util::ToLower(html.substr(name_start, j - name_start));

    HtmlToken t;
    t.kind = closing ? HtmlTokenKind::kEndTag : HtmlTokenKind::kStartTag;
    t.tag = tag;

    // Attributes (start tags only).
    while (j < n && html[j] != '>') {
      if (html[j] == '/' && j + 1 < n && html[j + 1] == '>') {
        t.self_closing = true;
        j += 1;
        break;
      }
      if (std::isspace(static_cast<unsigned char>(html[j]))) {
        ++j;
        continue;
      }
      if (closing) {  // ignore junk in end tags
        ++j;
        continue;
      }
      // Attribute name.
      size_t an = j;
      while (j < n && IsNameChar(html[j])) ++j;
      if (j == an) {
        ++j;
        continue;
      }
      std::string name = util::ToLower(html.substr(an, j - an));
      std::string value;
      while (j < n && std::isspace(static_cast<unsigned char>(html[j]))) ++j;
      if (j < n && html[j] == '=') {
        ++j;
        while (j < n && std::isspace(static_cast<unsigned char>(html[j]))) ++j;
        if (j < n && (html[j] == '"' || html[j] == '\'')) {
          char quote = html[j];
          size_t vstart = ++j;
          while (j < n && html[j] != quote) ++j;
          value = DecodeEntities(html.substr(vstart, j - vstart));
          if (j < n) ++j;
        } else {
          size_t vstart = j;
          while (j < n && !std::isspace(static_cast<unsigned char>(html[j])) &&
                 html[j] != '>') {
            ++j;
          }
          value = DecodeEntities(html.substr(vstart, j - vstart));
        }
      }
      t.attributes.emplace_back(std::move(name), std::move(value));
    }
    if (j < n && html[j] == '>') ++j;
    i = j;
    text_start = i;

    // Raw-text elements: skip content up to the matching end tag.
    if (!closing && (tag == "script" || tag == "style")) {
      std::string close = "</" + tag;
      size_t end = util::ToLower(html.substr(i)).find(close);
      if (end == std::string::npos) {
        i = n;
      } else {
        i += end;
      }
      text_start = i;
      continue;  // don't emit the raw content; end tag lexes next round
    }

    tokens.push_back(std::move(t));
  }
  emit_text(text_start, n);
  return tokens;
}

}  // namespace briq::html
