#include "html/table_extractor.h"

#include <algorithm>
#include <cstdlib>

#include "util/string_util.h"

namespace briq::html {

namespace {

int SpanAttribute(const Node& cell, const char* name) {
  std::string v = cell.Attribute(name);
  if (v.empty()) return 1;
  int n = std::atoi(v.c_str());
  // Clamp pathological span values.
  return std::clamp(n, 1, 100);
}

struct GridCell {
  std::string content;
  bool is_th = false;
  bool occupied = false;
};

}  // namespace

util::Result<table::Table> ExtractTable(const Node& table_element) {
  if (!table_element.IsElement("table")) {
    return util::Status::InvalidArgument("node is not a <table>");
  }

  // Collect <tr> in document order (directly under <table> or inside
  // thead/tbody/tfoot), not descending into nested tables.
  std::vector<const Node*> rows;
  std::string caption;
  for (const auto& child : table_element.children) {
    if (child->type != Node::Type::kElement) continue;
    if (child->tag == "caption") caption = child->InnerText();
    if (child->tag == "tr") rows.push_back(child.get());
    if (child->tag == "thead" || child->tag == "tbody" ||
        child->tag == "tfoot") {
      for (const auto& sub : child->children) {
        if (sub->IsElement("tr")) rows.push_back(sub.get());
      }
    }
  }
  if (rows.empty()) {
    return util::Status::NotFound("table has no rows");
  }

  // Lay out cells on a grid with rowspan/colspan expansion.
  std::vector<std::vector<GridCell>> grid(rows.size());
  size_t max_cols = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    size_t c = 0;
    for (const auto& child : rows[r]->children) {
      if (child->type != Node::Type::kElement ||
          (child->tag != "td" && child->tag != "th")) {
        continue;
      }
      // Find the next unoccupied column in this row.
      while (c < grid[r].size() && grid[r][c].occupied) ++c;
      int colspan = SpanAttribute(*child, "colspan");
      int rowspan = SpanAttribute(*child, "rowspan");
      std::string content = child->InnerText();
      bool is_th = child->tag == "th";
      for (int dr = 0; dr < rowspan && r + dr < rows.size(); ++dr) {
        auto& row_cells = grid[r + dr];
        if (row_cells.size() < c + colspan) row_cells.resize(c + colspan);
        for (int dc = 0; dc < colspan; ++dc) {
          GridCell& g = row_cells[c + dc];
          if (!g.occupied) {
            g.content = content;
            g.is_th = is_th;
            g.occupied = true;
          }
        }
      }
      c += colspan;
      max_cols = std::max(max_cols, grid[r].size());
    }
    max_cols = std::max(max_cols, grid[r].size());
  }
  if (max_cols == 0) {
    return util::Status::NotFound("table has no cells");
  }

  std::vector<std::vector<std::string>> string_rows(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    string_rows[r].resize(max_cols);
    for (size_t c = 0; c < grid[r].size() && c < max_cols; ++c) {
      string_rows[r][c] = grid[r][c].content;
    }
  }

  table::Table t = table::Table::FromRows(std::move(string_rows));
  t.set_caption(std::move(caption));

  // Header detection from <th> placement.
  bool first_row_th = true;
  if (grid[0].empty()) first_row_th = false;
  for (const GridCell& g : grid[0]) {
    if (g.occupied && !g.is_th) first_row_th = false;
  }
  bool first_col_th = grid.size() > 1;
  for (size_t r = 1; r < grid.size(); ++r) {
    if (grid[r].empty() || !grid[r][0].occupied || !grid[r][0].is_th) {
      first_col_th = false;
    }
  }
  if (first_row_th) t.set_header_row(true);
  if (first_col_th) t.set_header_col(true);
  if (!first_row_th && !first_col_th) t.DetectHeaders();

  t.AnnotateQuantities();
  return t;
}

std::vector<table::Table> ExtractTables(std::string_view html) {
  std::unique_ptr<Node> dom = ParseHtml(html);
  std::vector<table::Table> out;
  for (const Node* node : dom->FindAll("table")) {
    auto t = ExtractTable(*node);
    if (t.ok() && !t->empty()) out.push_back(std::move(t).value());
  }
  return out;
}

}  // namespace briq::html
