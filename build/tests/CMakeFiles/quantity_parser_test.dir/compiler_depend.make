# Empty compiler generated dependencies file for quantity_parser_test.
# This may be replaced when dependencies are built.
