file(REMOVE_RECURSE
  "CMakeFiles/quantity_parser_test.dir/quantity_parser_test.cc.o"
  "CMakeFiles/quantity_parser_test.dir/quantity_parser_test.cc.o.d"
  "quantity_parser_test"
  "quantity_parser_test.pdb"
  "quantity_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantity_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
