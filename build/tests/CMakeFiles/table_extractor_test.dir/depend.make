# Empty dependencies file for table_extractor_test.
# This may be replaced when dependencies are built.
