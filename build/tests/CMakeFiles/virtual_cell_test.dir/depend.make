# Empty dependencies file for virtual_cell_test.
# This may be replaced when dependencies are built.
