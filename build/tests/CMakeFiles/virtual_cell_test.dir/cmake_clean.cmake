file(REMOVE_RECURSE
  "CMakeFiles/virtual_cell_test.dir/virtual_cell_test.cc.o"
  "CMakeFiles/virtual_cell_test.dir/virtual_cell_test.cc.o.d"
  "virtual_cell_test"
  "virtual_cell_test.pdb"
  "virtual_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
