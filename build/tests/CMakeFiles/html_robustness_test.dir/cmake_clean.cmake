file(REMOVE_RECURSE
  "CMakeFiles/html_robustness_test.dir/html_robustness_test.cc.o"
  "CMakeFiles/html_robustness_test.dir/html_robustness_test.cc.o.d"
  "html_robustness_test"
  "html_robustness_test.pdb"
  "html_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
