# Empty dependencies file for html_robustness_test.
# This may be replaced when dependencies are built.
