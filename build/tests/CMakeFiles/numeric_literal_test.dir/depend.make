# Empty dependencies file for numeric_literal_test.
# This may be replaced when dependencies are built.
