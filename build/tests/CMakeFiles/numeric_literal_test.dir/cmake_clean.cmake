file(REMOVE_RECURSE
  "CMakeFiles/numeric_literal_test.dir/numeric_literal_test.cc.o"
  "CMakeFiles/numeric_literal_test.dir/numeric_literal_test.cc.o.d"
  "numeric_literal_test"
  "numeric_literal_test.pdb"
  "numeric_literal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_literal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
