file(REMOVE_RECURSE
  "CMakeFiles/noun_phrase_test.dir/noun_phrase_test.cc.o"
  "CMakeFiles/noun_phrase_test.dir/noun_phrase_test.cc.o.d"
  "noun_phrase_test"
  "noun_phrase_test.pdb"
  "noun_phrase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noun_phrase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
