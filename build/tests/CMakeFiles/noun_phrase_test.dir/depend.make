# Empty dependencies file for noun_phrase_test.
# This may be replaced when dependencies are built.
