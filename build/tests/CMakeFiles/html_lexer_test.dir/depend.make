# Empty dependencies file for html_lexer_test.
# This may be replaced when dependencies are built.
