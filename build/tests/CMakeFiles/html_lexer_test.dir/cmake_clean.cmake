file(REMOVE_RECURSE
  "CMakeFiles/html_lexer_test.dir/html_lexer_test.cc.o"
  "CMakeFiles/html_lexer_test.dir/html_lexer_test.cc.o.d"
  "html_lexer_test"
  "html_lexer_test.pdb"
  "html_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
