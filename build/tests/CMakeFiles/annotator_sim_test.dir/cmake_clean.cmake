file(REMOVE_RECURSE
  "CMakeFiles/annotator_sim_test.dir/annotator_sim_test.cc.o"
  "CMakeFiles/annotator_sim_test.dir/annotator_sim_test.cc.o.d"
  "annotator_sim_test"
  "annotator_sim_test.pdb"
  "annotator_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotator_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
