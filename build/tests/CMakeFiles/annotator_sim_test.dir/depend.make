# Empty dependencies file for annotator_sim_test.
# This may be replaced when dependencies are built.
