# Empty dependencies file for html_dom_test.
# This may be replaced when dependencies are built.
