# Empty compiler generated dependencies file for number_words_test.
# This may be replaced when dependencies are built.
