file(REMOVE_RECURSE
  "CMakeFiles/number_words_test.dir/number_words_test.cc.o"
  "CMakeFiles/number_words_test.dir/number_words_test.cc.o.d"
  "number_words_test"
  "number_words_test.pdb"
  "number_words_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/number_words_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
