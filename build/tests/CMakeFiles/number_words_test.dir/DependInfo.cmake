
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/number_words_test.cc" "tests/CMakeFiles/number_words_test.dir/number_words_test.cc.o" "gcc" "tests/CMakeFiles/number_words_test.dir/number_words_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/briq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/briq_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/briq_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/briq_html.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/briq_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/briq_table.dir/DependInfo.cmake"
  "/root/repo/build/src/quantity/CMakeFiles/briq_quantity.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/briq_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/briq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
