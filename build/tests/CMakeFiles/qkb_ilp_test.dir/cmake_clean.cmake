file(REMOVE_RECURSE
  "CMakeFiles/qkb_ilp_test.dir/qkb_ilp_test.cc.o"
  "CMakeFiles/qkb_ilp_test.dir/qkb_ilp_test.cc.o.d"
  "qkb_ilp_test"
  "qkb_ilp_test.pdb"
  "qkb_ilp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qkb_ilp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
