# Empty compiler generated dependencies file for qkb_ilp_test.
# This may be replaced when dependencies are built.
