file(REMOVE_RECURSE
  "CMakeFiles/pipeline_stages_test.dir/pipeline_stages_test.cc.o"
  "CMakeFiles/pipeline_stages_test.dir/pipeline_stages_test.cc.o.d"
  "pipeline_stages_test"
  "pipeline_stages_test.pdb"
  "pipeline_stages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_stages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
