# Empty dependencies file for unit_catalog_test.
# This may be replaced when dependencies are built.
