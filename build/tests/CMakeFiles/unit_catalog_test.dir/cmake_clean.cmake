file(REMOVE_RECURSE
  "CMakeFiles/unit_catalog_test.dir/unit_catalog_test.cc.o"
  "CMakeFiles/unit_catalog_test.dir/unit_catalog_test.cc.o.d"
  "unit_catalog_test"
  "unit_catalog_test.pdb"
  "unit_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
