file(REMOVE_RECURSE
  "libbriq_text.a"
)
