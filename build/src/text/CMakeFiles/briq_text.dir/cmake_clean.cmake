file(REMOVE_RECURSE
  "CMakeFiles/briq_text.dir/noun_phrase.cc.o"
  "CMakeFiles/briq_text.dir/noun_phrase.cc.o.d"
  "CMakeFiles/briq_text.dir/number_words.cc.o"
  "CMakeFiles/briq_text.dir/number_words.cc.o.d"
  "CMakeFiles/briq_text.dir/stopwords.cc.o"
  "CMakeFiles/briq_text.dir/stopwords.cc.o.d"
  "CMakeFiles/briq_text.dir/tokenizer.cc.o"
  "CMakeFiles/briq_text.dir/tokenizer.cc.o.d"
  "libbriq_text.a"
  "libbriq_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
