# Empty dependencies file for briq_text.
# This may be replaced when dependencies are built.
