# Empty dependencies file for briq_table.
# This may be replaced when dependencies are built.
