
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/mention.cc" "src/table/CMakeFiles/briq_table.dir/mention.cc.o" "gcc" "src/table/CMakeFiles/briq_table.dir/mention.cc.o.d"
  "/root/repo/src/table/table.cc" "src/table/CMakeFiles/briq_table.dir/table.cc.o" "gcc" "src/table/CMakeFiles/briq_table.dir/table.cc.o.d"
  "/root/repo/src/table/virtual_cell.cc" "src/table/CMakeFiles/briq_table.dir/virtual_cell.cc.o" "gcc" "src/table/CMakeFiles/briq_table.dir/virtual_cell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quantity/CMakeFiles/briq_quantity.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/briq_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/briq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
