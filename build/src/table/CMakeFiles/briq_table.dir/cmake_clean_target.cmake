file(REMOVE_RECURSE
  "libbriq_table.a"
)
