file(REMOVE_RECURSE
  "CMakeFiles/briq_table.dir/mention.cc.o"
  "CMakeFiles/briq_table.dir/mention.cc.o.d"
  "CMakeFiles/briq_table.dir/table.cc.o"
  "CMakeFiles/briq_table.dir/table.cc.o.d"
  "CMakeFiles/briq_table.dir/virtual_cell.cc.o"
  "CMakeFiles/briq_table.dir/virtual_cell.cc.o.d"
  "libbriq_table.a"
  "libbriq_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
