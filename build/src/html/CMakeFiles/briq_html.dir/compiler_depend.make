# Empty compiler generated dependencies file for briq_html.
# This may be replaced when dependencies are built.
