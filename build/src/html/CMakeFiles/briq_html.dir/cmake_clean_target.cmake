file(REMOVE_RECURSE
  "libbriq_html.a"
)
