# Empty dependencies file for briq_html.
# This may be replaced when dependencies are built.
