file(REMOVE_RECURSE
  "CMakeFiles/briq_html.dir/html_dom.cc.o"
  "CMakeFiles/briq_html.dir/html_dom.cc.o.d"
  "CMakeFiles/briq_html.dir/html_lexer.cc.o"
  "CMakeFiles/briq_html.dir/html_lexer.cc.o.d"
  "CMakeFiles/briq_html.dir/page_segmenter.cc.o"
  "CMakeFiles/briq_html.dir/page_segmenter.cc.o.d"
  "CMakeFiles/briq_html.dir/table_extractor.cc.o"
  "CMakeFiles/briq_html.dir/table_extractor.cc.o.d"
  "libbriq_html.a"
  "libbriq_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
