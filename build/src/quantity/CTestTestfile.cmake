# CMake generated Testfile for 
# Source directory: /root/repo/src/quantity
# Build directory: /root/repo/build/src/quantity
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
