
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quantity/header_cue.cc" "src/quantity/CMakeFiles/briq_quantity.dir/header_cue.cc.o" "gcc" "src/quantity/CMakeFiles/briq_quantity.dir/header_cue.cc.o.d"
  "/root/repo/src/quantity/numeric_literal.cc" "src/quantity/CMakeFiles/briq_quantity.dir/numeric_literal.cc.o" "gcc" "src/quantity/CMakeFiles/briq_quantity.dir/numeric_literal.cc.o.d"
  "/root/repo/src/quantity/quantity.cc" "src/quantity/CMakeFiles/briq_quantity.dir/quantity.cc.o" "gcc" "src/quantity/CMakeFiles/briq_quantity.dir/quantity.cc.o.d"
  "/root/repo/src/quantity/quantity_parser.cc" "src/quantity/CMakeFiles/briq_quantity.dir/quantity_parser.cc.o" "gcc" "src/quantity/CMakeFiles/briq_quantity.dir/quantity_parser.cc.o.d"
  "/root/repo/src/quantity/unit.cc" "src/quantity/CMakeFiles/briq_quantity.dir/unit.cc.o" "gcc" "src/quantity/CMakeFiles/briq_quantity.dir/unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/briq_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/briq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
