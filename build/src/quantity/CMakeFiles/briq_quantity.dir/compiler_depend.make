# Empty compiler generated dependencies file for briq_quantity.
# This may be replaced when dependencies are built.
