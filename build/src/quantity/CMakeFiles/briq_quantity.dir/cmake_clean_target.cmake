file(REMOVE_RECURSE
  "libbriq_quantity.a"
)
