file(REMOVE_RECURSE
  "CMakeFiles/briq_quantity.dir/header_cue.cc.o"
  "CMakeFiles/briq_quantity.dir/header_cue.cc.o.d"
  "CMakeFiles/briq_quantity.dir/numeric_literal.cc.o"
  "CMakeFiles/briq_quantity.dir/numeric_literal.cc.o.d"
  "CMakeFiles/briq_quantity.dir/quantity.cc.o"
  "CMakeFiles/briq_quantity.dir/quantity.cc.o.d"
  "CMakeFiles/briq_quantity.dir/quantity_parser.cc.o"
  "CMakeFiles/briq_quantity.dir/quantity_parser.cc.o.d"
  "CMakeFiles/briq_quantity.dir/unit.cc.o"
  "CMakeFiles/briq_quantity.dir/unit.cc.o.d"
  "libbriq_quantity.a"
  "libbriq_quantity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_quantity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
