
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/briq_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/briq_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/briq_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/config.cc.o.d"
  "/root/repo/src/core/cues.cc" "src/core/CMakeFiles/briq_core.dir/cues.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/cues.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/briq_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/briq_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/explain.cc.o.d"
  "/root/repo/src/core/extraction.cc" "src/core/CMakeFiles/briq_core.dir/extraction.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/extraction.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/briq_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/features.cc.o.d"
  "/root/repo/src/core/filtering.cc" "src/core/CMakeFiles/briq_core.dir/filtering.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/filtering.cc.o.d"
  "/root/repo/src/core/gt_matching.cc" "src/core/CMakeFiles/briq_core.dir/gt_matching.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/gt_matching.cc.o.d"
  "/root/repo/src/core/ilp_resolution.cc" "src/core/CMakeFiles/briq_core.dir/ilp_resolution.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/ilp_resolution.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/briq_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/qkb.cc" "src/core/CMakeFiles/briq_core.dir/qkb.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/qkb.cc.o.d"
  "/root/repo/src/core/resolution.cc" "src/core/CMakeFiles/briq_core.dir/resolution.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/resolution.cc.o.d"
  "/root/repo/src/core/tagger.cc" "src/core/CMakeFiles/briq_core.dir/tagger.cc.o" "gcc" "src/core/CMakeFiles/briq_core.dir/tagger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/briq_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/briq_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/briq_html.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/briq_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/briq_table.dir/DependInfo.cmake"
  "/root/repo/build/src/quantity/CMakeFiles/briq_quantity.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/briq_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/briq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
