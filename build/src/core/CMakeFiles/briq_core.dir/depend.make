# Empty dependencies file for briq_core.
# This may be replaced when dependencies are built.
