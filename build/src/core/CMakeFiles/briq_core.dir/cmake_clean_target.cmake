file(REMOVE_RECURSE
  "libbriq_core.a"
)
