file(REMOVE_RECURSE
  "CMakeFiles/briq_core.dir/baselines.cc.o"
  "CMakeFiles/briq_core.dir/baselines.cc.o.d"
  "CMakeFiles/briq_core.dir/classifier.cc.o"
  "CMakeFiles/briq_core.dir/classifier.cc.o.d"
  "CMakeFiles/briq_core.dir/config.cc.o"
  "CMakeFiles/briq_core.dir/config.cc.o.d"
  "CMakeFiles/briq_core.dir/cues.cc.o"
  "CMakeFiles/briq_core.dir/cues.cc.o.d"
  "CMakeFiles/briq_core.dir/evaluation.cc.o"
  "CMakeFiles/briq_core.dir/evaluation.cc.o.d"
  "CMakeFiles/briq_core.dir/explain.cc.o"
  "CMakeFiles/briq_core.dir/explain.cc.o.d"
  "CMakeFiles/briq_core.dir/extraction.cc.o"
  "CMakeFiles/briq_core.dir/extraction.cc.o.d"
  "CMakeFiles/briq_core.dir/features.cc.o"
  "CMakeFiles/briq_core.dir/features.cc.o.d"
  "CMakeFiles/briq_core.dir/filtering.cc.o"
  "CMakeFiles/briq_core.dir/filtering.cc.o.d"
  "CMakeFiles/briq_core.dir/gt_matching.cc.o"
  "CMakeFiles/briq_core.dir/gt_matching.cc.o.d"
  "CMakeFiles/briq_core.dir/ilp_resolution.cc.o"
  "CMakeFiles/briq_core.dir/ilp_resolution.cc.o.d"
  "CMakeFiles/briq_core.dir/pipeline.cc.o"
  "CMakeFiles/briq_core.dir/pipeline.cc.o.d"
  "CMakeFiles/briq_core.dir/qkb.cc.o"
  "CMakeFiles/briq_core.dir/qkb.cc.o.d"
  "CMakeFiles/briq_core.dir/resolution.cc.o"
  "CMakeFiles/briq_core.dir/resolution.cc.o.d"
  "CMakeFiles/briq_core.dir/tagger.cc.o"
  "CMakeFiles/briq_core.dir/tagger.cc.o.d"
  "libbriq_core.a"
  "libbriq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
