file(REMOVE_RECURSE
  "libbriq_graph.a"
)
