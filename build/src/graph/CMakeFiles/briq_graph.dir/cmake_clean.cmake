file(REMOVE_RECURSE
  "CMakeFiles/briq_graph.dir/graph.cc.o"
  "CMakeFiles/briq_graph.dir/graph.cc.o.d"
  "CMakeFiles/briq_graph.dir/random_walk.cc.o"
  "CMakeFiles/briq_graph.dir/random_walk.cc.o.d"
  "libbriq_graph.a"
  "libbriq_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
