# Empty dependencies file for briq_graph.
# This may be replaced when dependencies are built.
