file(REMOVE_RECURSE
  "libbriq_ml.a"
)
