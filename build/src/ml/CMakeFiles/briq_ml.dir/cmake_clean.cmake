file(REMOVE_RECURSE
  "CMakeFiles/briq_ml.dir/calibration.cc.o"
  "CMakeFiles/briq_ml.dir/calibration.cc.o.d"
  "CMakeFiles/briq_ml.dir/dataset.cc.o"
  "CMakeFiles/briq_ml.dir/dataset.cc.o.d"
  "CMakeFiles/briq_ml.dir/decision_tree.cc.o"
  "CMakeFiles/briq_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/briq_ml.dir/grid_search.cc.o"
  "CMakeFiles/briq_ml.dir/grid_search.cc.o.d"
  "CMakeFiles/briq_ml.dir/metrics.cc.o"
  "CMakeFiles/briq_ml.dir/metrics.cc.o.d"
  "CMakeFiles/briq_ml.dir/random_forest.cc.o"
  "CMakeFiles/briq_ml.dir/random_forest.cc.o.d"
  "libbriq_ml.a"
  "libbriq_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
