# Empty compiler generated dependencies file for briq_ml.
# This may be replaced when dependencies are built.
