# Empty dependencies file for briq_corpus.
# This may be replaced when dependencies are built.
