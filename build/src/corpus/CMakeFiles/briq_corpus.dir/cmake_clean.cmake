file(REMOVE_RECURSE
  "CMakeFiles/briq_corpus.dir/annotator_sim.cc.o"
  "CMakeFiles/briq_corpus.dir/annotator_sim.cc.o.d"
  "CMakeFiles/briq_corpus.dir/document.cc.o"
  "CMakeFiles/briq_corpus.dir/document.cc.o.d"
  "CMakeFiles/briq_corpus.dir/domain_profile.cc.o"
  "CMakeFiles/briq_corpus.dir/domain_profile.cc.o.d"
  "CMakeFiles/briq_corpus.dir/generator.cc.o"
  "CMakeFiles/briq_corpus.dir/generator.cc.o.d"
  "CMakeFiles/briq_corpus.dir/paper_examples.cc.o"
  "CMakeFiles/briq_corpus.dir/paper_examples.cc.o.d"
  "CMakeFiles/briq_corpus.dir/perturb.cc.o"
  "CMakeFiles/briq_corpus.dir/perturb.cc.o.d"
  "CMakeFiles/briq_corpus.dir/serialization.cc.o"
  "CMakeFiles/briq_corpus.dir/serialization.cc.o.d"
  "libbriq_corpus.a"
  "libbriq_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
