
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/annotator_sim.cc" "src/corpus/CMakeFiles/briq_corpus.dir/annotator_sim.cc.o" "gcc" "src/corpus/CMakeFiles/briq_corpus.dir/annotator_sim.cc.o.d"
  "/root/repo/src/corpus/document.cc" "src/corpus/CMakeFiles/briq_corpus.dir/document.cc.o" "gcc" "src/corpus/CMakeFiles/briq_corpus.dir/document.cc.o.d"
  "/root/repo/src/corpus/domain_profile.cc" "src/corpus/CMakeFiles/briq_corpus.dir/domain_profile.cc.o" "gcc" "src/corpus/CMakeFiles/briq_corpus.dir/domain_profile.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/briq_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/briq_corpus.dir/generator.cc.o.d"
  "/root/repo/src/corpus/paper_examples.cc" "src/corpus/CMakeFiles/briq_corpus.dir/paper_examples.cc.o" "gcc" "src/corpus/CMakeFiles/briq_corpus.dir/paper_examples.cc.o.d"
  "/root/repo/src/corpus/perturb.cc" "src/corpus/CMakeFiles/briq_corpus.dir/perturb.cc.o" "gcc" "src/corpus/CMakeFiles/briq_corpus.dir/perturb.cc.o.d"
  "/root/repo/src/corpus/serialization.cc" "src/corpus/CMakeFiles/briq_corpus.dir/serialization.cc.o" "gcc" "src/corpus/CMakeFiles/briq_corpus.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/briq_table.dir/DependInfo.cmake"
  "/root/repo/build/src/quantity/CMakeFiles/briq_quantity.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/briq_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/briq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
