file(REMOVE_RECURSE
  "libbriq_corpus.a"
)
