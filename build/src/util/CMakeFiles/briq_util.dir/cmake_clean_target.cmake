file(REMOVE_RECURSE
  "libbriq_util.a"
)
