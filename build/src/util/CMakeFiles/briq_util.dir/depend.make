# Empty dependencies file for briq_util.
# This may be replaced when dependencies are built.
