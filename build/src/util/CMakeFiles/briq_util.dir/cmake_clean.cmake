file(REMOVE_RECURSE
  "CMakeFiles/briq_util.dir/json.cc.o"
  "CMakeFiles/briq_util.dir/json.cc.o.d"
  "CMakeFiles/briq_util.dir/logging.cc.o"
  "CMakeFiles/briq_util.dir/logging.cc.o.d"
  "CMakeFiles/briq_util.dir/random.cc.o"
  "CMakeFiles/briq_util.dir/random.cc.o.d"
  "CMakeFiles/briq_util.dir/similarity.cc.o"
  "CMakeFiles/briq_util.dir/similarity.cc.o.d"
  "CMakeFiles/briq_util.dir/status.cc.o"
  "CMakeFiles/briq_util.dir/status.cc.o.d"
  "CMakeFiles/briq_util.dir/string_util.cc.o"
  "CMakeFiles/briq_util.dir/string_util.cc.o.d"
  "CMakeFiles/briq_util.dir/table_printer.cc.o"
  "CMakeFiles/briq_util.dir/table_printer.cc.o.d"
  "libbriq_util.a"
  "libbriq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
