file(REMOVE_RECURSE
  "CMakeFiles/fig5_anecdotes.dir/fig5_anecdotes.cc.o"
  "CMakeFiles/fig5_anecdotes.dir/fig5_anecdotes.cc.o.d"
  "fig5_anecdotes"
  "fig5_anecdotes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_anecdotes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
