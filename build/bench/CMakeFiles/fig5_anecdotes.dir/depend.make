# Empty dependencies file for fig5_anecdotes.
# This may be replaced when dependencies are built.
