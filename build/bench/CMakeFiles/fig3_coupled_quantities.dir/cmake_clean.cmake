file(REMOVE_RECURSE
  "CMakeFiles/fig3_coupled_quantities.dir/fig3_coupled_quantities.cc.o"
  "CMakeFiles/fig3_coupled_quantities.dir/fig3_coupled_quantities.cc.o.d"
  "fig3_coupled_quantities"
  "fig3_coupled_quantities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_coupled_quantities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
