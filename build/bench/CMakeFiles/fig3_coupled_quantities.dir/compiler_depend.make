# Empty compiler generated dependencies file for fig3_coupled_quantities.
# This may be replaced when dependencies are built.
