file(REMOVE_RECURSE
  "CMakeFiles/table1_training_data.dir/table1_training_data.cc.o"
  "CMakeFiles/table1_training_data.dir/table1_training_data.cc.o.d"
  "table1_training_data"
  "table1_training_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_training_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
