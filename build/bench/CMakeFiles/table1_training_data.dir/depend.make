# Empty dependencies file for table1_training_data.
# This may be replaced when dependencies are built.
