# Empty dependencies file for briq_bench_harness.
# This may be replaced when dependencies are built.
