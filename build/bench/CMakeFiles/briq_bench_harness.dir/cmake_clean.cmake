file(REMOVE_RECURSE
  "CMakeFiles/briq_bench_harness.dir/harness.cc.o"
  "CMakeFiles/briq_bench_harness.dir/harness.cc.o.d"
  "libbriq_bench_harness.a"
  "libbriq_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
