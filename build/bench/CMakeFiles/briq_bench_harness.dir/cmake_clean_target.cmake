file(REMOVE_RECURSE
  "libbriq_bench_harness.a"
)
