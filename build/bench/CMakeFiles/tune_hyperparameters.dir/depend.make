# Empty dependencies file for tune_hyperparameters.
# This may be replaced when dependencies are built.
