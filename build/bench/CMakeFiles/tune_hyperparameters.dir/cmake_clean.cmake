file(REMOVE_RECURSE
  "CMakeFiles/tune_hyperparameters.dir/tune_hyperparameters.cc.o"
  "CMakeFiles/tune_hyperparameters.dir/tune_hyperparameters.cc.o.d"
  "tune_hyperparameters"
  "tune_hyperparameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_hyperparameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
