# Empty dependencies file for extended_aggregates.
# This may be replaced when dependencies are built.
