file(REMOVE_RECURSE
  "CMakeFiles/extended_aggregates.dir/extended_aggregates.cc.o"
  "CMakeFiles/extended_aggregates.dir/extended_aggregates.cc.o.d"
  "extended_aggregates"
  "extended_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
