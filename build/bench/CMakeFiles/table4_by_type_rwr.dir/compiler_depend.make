# Empty compiler generated dependencies file for table4_by_type_rwr.
# This may be replaced when dependencies are built.
