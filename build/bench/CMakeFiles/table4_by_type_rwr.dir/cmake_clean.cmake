file(REMOVE_RECURSE
  "CMakeFiles/table4_by_type_rwr.dir/table4_by_type_rwr.cc.o"
  "CMakeFiles/table4_by_type_rwr.dir/table4_by_type_rwr.cc.o.d"
  "table4_by_type_rwr"
  "table4_by_type_rwr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_by_type_rwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
