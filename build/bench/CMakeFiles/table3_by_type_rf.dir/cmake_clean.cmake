file(REMOVE_RECURSE
  "CMakeFiles/table3_by_type_rf.dir/table3_by_type_rf.cc.o"
  "CMakeFiles/table3_by_type_rf.dir/table3_by_type_rf.cc.o.d"
  "table3_by_type_rf"
  "table3_by_type_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_by_type_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
