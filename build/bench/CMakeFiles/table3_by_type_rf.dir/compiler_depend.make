# Empty compiler generated dependencies file for table3_by_type_rf.
# This may be replaced when dependencies are built.
