# Empty dependencies file for table6_filtering.
# This may be replaced when dependencies are built.
