file(REMOVE_RECURSE
  "CMakeFiles/table6_filtering.dir/table6_filtering.cc.o"
  "CMakeFiles/table6_filtering.dir/table6_filtering.cc.o.d"
  "table6_filtering"
  "table6_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
