# Empty compiler generated dependencies file for table8_throughput.
# This may be replaced when dependencies are built.
