file(REMOVE_RECURSE
  "CMakeFiles/table8_throughput.dir/table8_throughput.cc.o"
  "CMakeFiles/table8_throughput.dir/table8_throughput.cc.o.d"
  "table8_throughput"
  "table8_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
