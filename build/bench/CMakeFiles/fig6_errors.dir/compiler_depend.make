# Empty compiler generated dependencies file for fig6_errors.
# This may be replaced when dependencies are built.
