file(REMOVE_RECURSE
  "CMakeFiles/fig6_errors.dir/fig6_errors.cc.o"
  "CMakeFiles/fig6_errors.dir/fig6_errors.cc.o.d"
  "fig6_errors"
  "fig6_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
