# Empty compiler generated dependencies file for table5_by_type_briq.
# This may be replaced when dependencies are built.
