file(REMOVE_RECURSE
  "CMakeFiles/table5_by_type_briq.dir/table5_by_type_briq.cc.o"
  "CMakeFiles/table5_by_type_briq.dir/table5_by_type_briq.cc.o.d"
  "table5_by_type_briq"
  "table5_by_type_briq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_by_type_briq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
