# Empty compiler generated dependencies file for table9_table_stats.
# This may be replaced when dependencies are built.
