file(REMOVE_RECURSE
  "CMakeFiles/table9_table_stats.dir/table9_table_stats.cc.o"
  "CMakeFiles/table9_table_stats.dir/table9_table_stats.cc.o.d"
  "table9_table_stats"
  "table9_table_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_table_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
