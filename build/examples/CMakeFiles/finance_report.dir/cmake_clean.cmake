file(REMOVE_RECURSE
  "CMakeFiles/finance_report.dir/finance_report.cpp.o"
  "CMakeFiles/finance_report.dir/finance_report.cpp.o.d"
  "finance_report"
  "finance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
