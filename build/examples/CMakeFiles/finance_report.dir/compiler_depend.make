# Empty compiler generated dependencies file for finance_report.
# This may be replaced when dependencies are built.
