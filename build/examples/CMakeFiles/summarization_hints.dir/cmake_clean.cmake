file(REMOVE_RECURSE
  "CMakeFiles/summarization_hints.dir/summarization_hints.cpp.o"
  "CMakeFiles/summarization_hints.dir/summarization_hints.cpp.o.d"
  "summarization_hints"
  "summarization_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarization_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
