# Empty dependencies file for summarization_hints.
# This may be replaced when dependencies are built.
