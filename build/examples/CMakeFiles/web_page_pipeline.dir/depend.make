# Empty dependencies file for web_page_pipeline.
# This may be replaced when dependencies are built.
