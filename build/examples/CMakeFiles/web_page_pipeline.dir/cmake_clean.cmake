file(REMOVE_RECURSE
  "CMakeFiles/web_page_pipeline.dir/web_page_pipeline.cpp.o"
  "CMakeFiles/web_page_pipeline.dir/web_page_pipeline.cpp.o.d"
  "web_page_pipeline"
  "web_page_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_page_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
