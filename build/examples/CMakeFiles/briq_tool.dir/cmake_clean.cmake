file(REMOVE_RECURSE
  "CMakeFiles/briq_tool.dir/briq_tool.cpp.o"
  "CMakeFiles/briq_tool.dir/briq_tool.cpp.o.d"
  "briq_tool"
  "briq_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briq_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
