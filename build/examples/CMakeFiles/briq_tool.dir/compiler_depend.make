# Empty compiler generated dependencies file for briq_tool.
# This may be replaced when dependencies are built.
