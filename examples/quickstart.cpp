// Quickstart: train BriQ on a small synthetic corpus and align the paper's
// Figure 1a health example — "A total of 123 patients ..." against the
// side-effects table.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/pipeline.h"
#include "corpus/generator.h"
#include "corpus/paper_examples.h"

int main() {
  using namespace briq;

  // 1) Configuration. Every hyperparameter of the pipeline lives here.
  core::BriqConfig config;

  // 2) Training data: a synthetic tableS-style corpus with ground truth
  //    (the substitution for the paper's annotated Common Crawl sample).
  corpus::CorpusOptions options;
  options.num_documents = 150;
  options.seed = 42;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);

  std::vector<core::PreparedDocument> prepared;
  for (const corpus::Document& d : corpus.documents) {
    prepared.push_back(core::PrepareDocument(d, config));
  }
  std::vector<const core::PreparedDocument*> train;
  for (const auto& d : prepared) train.push_back(&d);

  // 3) Train the two learned components (mention-pair classifier + text
  //    mention tagger).
  core::BriqSystem briq(config);
  util::Status status = briq.Train(train);
  if (!status.ok()) {
    std::cerr << "training failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "trained on " << corpus.size() << " documents\n\n";

  // 4) Align a new document: the paper's running health example.
  corpus::Document doc = corpus::Figure1aHealth();
  std::cout << "document text:\n  " << doc.paragraphs[0] << "\n\n";

  core::PreparedDocument target = core::PrepareDocument(doc, config);
  core::DocumentAlignment alignment = briq.Align(target);

  std::cout << "alignments found (" << alignment.decisions.size() << "):\n";
  for (const core::AlignmentDecision& d : alignment.decisions) {
    const table::TextMention& x = target.text_mentions[d.text_idx];
    const table::TableMention& t = target.table_mentions[d.table_idx];
    std::cout << "  \"" << x.surface() << "\"  ->  " << t.DebugString()
              << "  (score " << d.score << ")\n";
  }
  return 0;
}
