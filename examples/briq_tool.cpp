// briq_tool — command-line front end for the library.
//
//   briq_tool generate <n_docs> <out.json> [seed] [--compact]
//                                                   synthesize a corpus
//   briq_tool shard <corpus.json> <out_dir> [shard_size]
//                                                   convert a legacy single-
//                                                   file corpus to briq-shard-
//                                                   v1 JSONL shards
//   briq_tool stats <corpus.json|shard_dir>         corpus statistics
//   briq_tool eval <corpus.json|shard_dir>          train/test split + metrics
//   briq_tool align <corpus.json|shard_dir> <doc_index>
//                                                   print one document's
//                                                   alignments (trained on
//                                                   the rest of the corpus)
//   briq_tool align <shard_dir> --stream            align a whole sharded
//                                                   corpus through the
//                                                   streaming pipeline

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "core/streaming_aligner.h"
#include "corpus/generator.h"
#include "corpus/serialization.h"
#include "corpus/shard_io.h"
#include "obs/export.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace {

using namespace briq;

/// Shard-file stem used by `briq_tool shard` and expected by the corpus
/// readers below.
constexpr char kShardStem[] = "corpus";

void PrintUsage(std::ostream& out) {
  out <<
      "usage:\n"
      "  briq_tool generate <n_docs> <out.json> [seed] [--compact]\n"
      "  briq_tool shard <corpus.json> <out_dir> [shard_size]\n"
      "  briq_tool stats <corpus.json|shard_dir>\n"
      "  briq_tool eval <corpus.json|shard_dir> [--metrics-out <path>]\n"
      "  briq_tool align <corpus.json|shard_dir> <doc_index>"
      " [--metrics-out <path>]\n"
      "  briq_tool align <shard_dir> --stream [--threads <n>]"
      " [--metrics-out <path>]\n"
      "\n"
      "flags:\n"
      "  --metrics-out <path>  write an observability snapshot (metrics and\n"
      "                        trace spans) as JSON when the command ends\n"
      "  --stream              align every document of a sharded corpus\n"
      "                        through the bounded-memory streaming pipeline\n"
      "  --threads <n>         worker threads for --stream (default:\n"
      "                        hardware concurrency)\n"
      "\n"
      "environment:\n"
      "  BRIQ_LOG_LEVEL        debug|info|warning|error — minimum log level\n"
      "                        emitted to stderr (default: info)\n";
}

int Usage() {
  PrintUsage(std::cerr);
  return 2;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::optional<std::string> FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

/// Writes the observability snapshot when --metrics-out was given; folds
/// the write status into the command's exit code.
int MaybeWriteMetrics(int argc, char** argv, int rc) {
  const std::optional<std::string> path =
      FlagValue(argc, argv, "--metrics-out");
  if (!path) return rc;
  util::Status status = obs::WriteMetricsJson(*path);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return rc == 0 ? 1 : rc;
  }
  std::cout << "wrote metrics to " << *path << "\n";
  return rc;
}

/// Parses a non-negative integer argument, or returns nullopt (instead of
/// letting std::stoul terminate the process on malformed input).
std::optional<size_t> ParseSize(const char* arg) {
  size_t value = 0;
  size_t pos = 0;
  try {
    value = std::stoul(arg, &pos);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (arg[pos] != '\0') return std::nullopt;
  return value;
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  corpus::CorpusOptions options;
  const std::optional<size_t> n_docs = ParseSize(argv[2]);
  if (!n_docs) return Usage();
  options.num_documents = *n_docs;
  if (argc > 4 && std::strncmp(argv[4], "--", 2) != 0) {
    const std::optional<size_t> seed = ParseSize(argv[4]);
    if (!seed) return Usage();
    options.seed = *seed;
  }
  const corpus::CorpusJsonStyle style =
      HasFlag(argc, argv, "--compact") ? corpus::CorpusJsonStyle::kCompact
                                       : corpus::CorpusJsonStyle::kPretty;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);
  util::Status status = corpus::SaveCorpus(corpus, argv[3], style);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << corpus.size() << " documents to " << argv[3]
            << "\n";
  return 0;
}

int Shard(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto corpus = corpus::LoadCorpus(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  size_t shard_size = 128;
  if (argc > 4) {
    const std::optional<size_t> parsed = ParseSize(argv[4]);
    if (!parsed || *parsed == 0) return Usage();
    shard_size = *parsed;
  }
  std::error_code ec;
  std::filesystem::create_directories(argv[3], ec);
  auto paths =
      corpus::WriteCorpusShards(*corpus, argv[3], kShardStem, shard_size);
  if (!paths.ok()) {
    std::cerr << paths.status().ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << corpus->size() << " documents as " << paths->size()
            << " shard(s) of <= " << shard_size << " docs under " << argv[3]
            << "\n";
  return 0;
}

/// Loads either a legacy single-file corpus or (when `path` is a
/// directory) a briq-shard-v1 sharded corpus.
util::Result<corpus::Corpus> Load(const char* path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return corpus::LoadShardedCorpus(path, kShardStem);
  }
  return corpus::LoadCorpus(path);
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto corpus = Load(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  size_t paragraphs = 0;
  size_t tables = 0;
  size_t gt = 0;
  std::map<std::string, size_t> by_domain;
  std::map<std::string, size_t> by_type;
  for (const corpus::Document& d : corpus->documents) {
    paragraphs += d.paragraphs.size();
    tables += d.tables.size();
    gt += d.ground_truth.size();
    ++by_domain[d.domain];
    for (const auto& g : d.ground_truth) {
      ++by_type[table::AggregateFunctionName(g.target.func)];
    }
  }
  util::TablePrinter printer("corpus statistics");
  printer.SetHeader({"metric", "value"});
  printer.AddRow({"documents", std::to_string(corpus->size())});
  printer.AddRow({"paragraphs", std::to_string(paragraphs)});
  printer.AddRow({"tables", std::to_string(tables)});
  printer.AddRow({"annotated alignments", std::to_string(gt)});
  for (const auto& [domain, n] : by_domain) {
    printer.AddRow({"domain: " + domain, std::to_string(n)});
  }
  for (const auto& [type, n] : by_type) {
    printer.AddRow({"mention type: " + type, std::to_string(n)});
  }
  std::cout << printer.ToString();
  return 0;
}

// Trains on all documents except `holdout` (or the first 90% when
// holdout < 0) and returns the trained system with the prepared docs.
struct Trained {
  core::BriqConfig config;
  std::vector<core::PreparedDocument> prepared;
  std::unique_ptr<core::BriqSystem> system;
};

Trained TrainOn(const corpus::Corpus& corpus, int holdout) {
  Trained t;
  for (const auto& d : corpus.documents) {
    t.prepared.push_back(core::PrepareDocument(d, t.config));
  }
  std::vector<const core::PreparedDocument*> train;
  size_t limit = holdout < 0 ? corpus.size() * 9 / 10 : corpus.size();
  for (size_t i = 0; i < limit; ++i) {
    if (static_cast<int>(i) == holdout) continue;
    train.push_back(&t.prepared[i]);
  }
  t.system = std::make_unique<core::BriqSystem>(t.config);
  BRIQ_CHECK_OK(t.system->Train(train));
  return t;
}

int Eval(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto corpus = Load(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  Trained t = TrainOn(*corpus, /*holdout=*/-1);
  std::vector<core::PreparedDocument> test(
      t.prepared.begin() + corpus->size() * 9 / 10, t.prepared.end());
  if (test.empty()) {
    std::cerr << "corpus too small for a test split\n";
    return 1;
  }
  core::RfOnlyAligner rf(t.system.get());
  core::RwrOnlyAligner rwr(&t.config);

  util::TablePrinter printer("evaluation on the held-out 10%");
  printer.SetHeader({"system", "precision", "recall", "F1"});
  auto row = [&](const char* name, const core::EvalResult& r) {
    auto fmt = [](double v) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f", v);
      return std::string(buf);
    };
    printer.AddRow({name, fmt(r.Precision()), fmt(r.Recall()), fmt(r.F1())});
  };
  row("BriQ", core::EvaluateCorpus(*t.system, test));
  row("RF-only", core::EvaluateCorpus(rf, test));
  row("RWR-only", core::EvaluateCorpus(rwr, test));
  std::cout << printer.ToString();
  return 0;
}

/// `align <shard_dir> --stream`: aligns every document of a sharded
/// corpus through the StreamingAligner (training on the first 90% of the
/// corpus first), printing a one-line summary per run. With --metrics-out
/// this is the command that exercises the full streaming telemetry:
/// queue depth/wait gauges, shard read latencies, reorder-window peaks.
int AlignStream(int argc, char** argv) {
  std::error_code ec;
  if (!std::filesystem::is_directory(argv[2], ec)) {
    std::cerr << "align --stream requires a shard directory (see `briq_tool "
                 "shard`)\n";
    return 1;
  }
  auto corpus = Load(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  Trained t = TrainOn(*corpus, /*holdout=*/-1);

  core::StreamingOptions options;
  if (const std::optional<std::string> threads =
          FlagValue(argc, argv, "--threads")) {
    const std::optional<size_t> parsed = ParseSize(threads->c_str());
    if (!parsed) return Usage();
    options.num_threads = static_cast<int>(*parsed);
  }

  size_t docs = 0;
  size_t decisions = 0;
  util::Status status = core::AlignShardedCorpus(
      *t.system, t.config, argv[2], kShardStem, options,
      [&](size_t, const corpus::Document&,
          const core::DocumentAlignment& alignment) {
        ++docs;
        decisions += alignment.decisions.size();
      });
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "streamed " << docs << " documents, " << decisions
            << " alignment decisions\n";
  return 0;
}

int AlignOne(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto corpus = Load(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  const std::optional<size_t> parsed = ParseSize(argv[3]);
  if (!parsed) return Usage();
  const size_t index = *parsed;
  if (index >= corpus->size()) {
    std::cerr << "doc_index out of range (corpus has " << corpus->size()
              << " documents)\n";
    return 1;
  }
  Trained t = TrainOn(*corpus, index);
  const core::PreparedDocument& doc = t.prepared[index];
  core::DocumentAlignment alignment = t.system->Align(doc);

  std::cout << "document " << doc.source->id << " ("
            << doc.text_mentions.size() << " text mentions, "
            << doc.table_mentions.size() << " table mentions incl. virtual "
            << "cells)\n";
  for (const auto& p : doc.source->paragraphs) {
    std::cout << "  | " << p << "\n";
  }
  std::cout << "\nalignments:\n";
  for (const auto& d : alignment.decisions) {
    std::cout << "  \"" << doc.text_mentions[d.text_idx].surface()
              << "\"  ->  " << doc.table_mentions[d.table_idx].DebugString()
              << "\n";
  }
  return 0;
}

/// Applies BRIQ_LOG_LEVEL from the environment. Returns false (after
/// printing the usage) when the variable is set to an unknown value.
bool ApplyLogLevelFromEnv() {
  const char* env = std::getenv("BRIQ_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return true;
  const std::string level = env;
  if (level == "debug") {
    util::SetLogThreshold(util::LogLevel::kDebug);
  } else if (level == "info") {
    util::SetLogThreshold(util::LogLevel::kInfo);
  } else if (level == "warning") {
    util::SetLogThreshold(util::LogLevel::kWarning);
  } else if (level == "error") {
    util::SetLogThreshold(util::LogLevel::kError);
  } else {
    std::cerr << "briq_tool: unknown BRIQ_LOG_LEVEL '" << level
              << "' (expected debug|info|warning|error)\n";
    PrintUsage(std::cerr);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!ApplyLogLevelFromEnv()) return 2;
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintUsage(std::cout);
    return 0;
  }
  if (cmd == "generate") return Generate(argc, argv);
  if (cmd == "shard") return Shard(argc, argv);
  if (cmd == "stats") return Stats(argc, argv);
  if (cmd == "eval") return MaybeWriteMetrics(argc, argv, Eval(argc, argv));
  if (cmd == "align") {
    const bool stream = HasFlag(argc, argv, "--stream");
    if (stream && argc < 3) return Usage();
    const int rc =
        stream ? AlignStream(argc, argv) : AlignOne(argc, argv);
    return MaybeWriteMetrics(argc, argv, rc);
  }
  return Usage();
}
