// briq_tool — command-line front end for the library.
//
//   briq_tool generate <n_docs> <out.json> [seed] [--compact]
//                                                   synthesize a corpus
//   briq_tool shard <corpus.json> <out_dir> [shard_size]
//                                                   convert a legacy single-
//                                                   file corpus to briq-shard-
//                                                   v1 JSONL shards
//   briq_tool stats <corpus.json|shard_dir>         corpus statistics
//   briq_tool eval <corpus.json|shard_dir>          train/test split + metrics
//   briq_tool align <corpus.json|shard_dir> <doc_index>
//                                                   print one document's
//                                                   alignments (trained on
//                                                   the rest of the corpus)
//   briq_tool align <shard_dir> --stream            align a whole sharded
//                                                   corpus through the
//                                                   streaming pipeline
//   briq_tool train <corpus.json|shard_dir> --model-out <model>
//                                                   stream-train and persist
//                                                   a briq-model-v1 file
//
// "Train once, serve many": `train --model-out` writes the forests to disk,
// and eval / align / serve accept `--model <path>` to skip in-process
// training entirely.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "core/streaming_aligner.h"
#include "core/streaming_trainer.h"
#include "corpus/generator.h"
#include "corpus/serialization.h"
#include "corpus/shard_io.h"
#include "fleet/driver.h"
#include "obs/access_log.h"
#include "obs/export.h"
#include "obs/flusher.h"
#include "obs/prometheus.h"
#include "obs/trace_export.h"
#include "serve/align_service.h"
#include "serve/http_server.h"
#include "serve/statusz.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/shutdown.h"
#include "util/table_printer.h"

namespace {

using namespace briq;

/// Shard-file stem used by `briq_tool shard` and expected by the corpus
/// readers below.
constexpr char kShardStem[] = "corpus";

void PrintUsage(std::ostream& out) {
  out <<
      "usage:\n"
      "  briq_tool generate <n_docs> <out.json> [seed] [--compact]\n"
      "  briq_tool shard <corpus.json> <out_dir> [shard_size]\n"
      "  briq_tool stats <corpus.json|shard_dir>\n"
      "  briq_tool eval <corpus.json|shard_dir> [--metrics-out <path>]\n"
      "  briq_tool align <corpus.json|shard_dir> <doc_index>"
      " [--json] [--metrics-out <path>]\n"
      "  briq_tool align --html <page.html> --model <model> [--json]\n"
      "  briq_tool align <shard_dir> --stream [--threads <n>]"
      " [--metrics-out <path>]\n"
      "  briq_tool train <corpus.json|shard_dir> --model-out <model>\n"
      "                  [--train-pct <p>] [--threads <n>] [--spill-dir <d>]\n"
      "                  [--max-samples <n>] [--metrics-out <path>]\n"
      "  briq_tool serve [--model <model>] [--port <p>]"
      " [--serve-threads <n>]\n"
      "                  [--queue-capacity <q>] [--serve-linger <sec>]\n"
      "                  [--access-log <path>] [--retry-after-seconds <n>]\n"
      "                  [--slow-request-seconds <sec>] [--trace-out <path>]\n"
      "  briq_tool quantity <string> [--cell] [--legacy]"
      " [--locale us|eu]\n"
      "                                                  lex one string:\n"
      "                                                  value, unit, base\n"
      "  briq_tool logcheck <file.jsonl> [--require k1,k2,...]\n"
      "                                                  verify a JSONL file\n"
      "                                                  (e.g. the access log)\n"
      "  briq_tool fleet <align|train> <shard_dir> [--workers <n>]\n"
      "                  [--on-worker-failure fail|restart]"
      " [--max-restarts <n>]\n"
      "                  [--model <m> | --model-out <prefix>]"
      " [--threads <n>]\n"
      "                  [--heartbeat-seconds <s>] [--metrics-interval <s>]\n"
      "                  [--metrics-out <path>] [--serve-port <p>]\n"
      "                  [--serve-linger <s>]\n"
      "                                                  multi-process shard\n"
      "                                                  fleet (DESIGN.md"
      " §5j)\n"
      "\n"
      "flags:\n"
      "  --json                (align) print the alignment as canonical\n"
      "                        compact JSON — byte-identical to what `serve`\n"
      "                        returns from POST /align on the same document\n"
      "                        and model\n"
      "  --html <page.html>    (align) align a raw HTML page instead of a\n"
      "                        corpus document: the page is segmented into\n"
      "                        coherent documents first (requires --model)\n"
      "  --metrics-out <path>  write an observability snapshot (metrics and\n"
      "                        trace spans) as JSON when the command ends\n"
      "  --stream              align every document of a sharded corpus\n"
      "                        through the bounded-memory streaming pipeline\n"
      "  --threads <n>         worker threads for --stream / train (default:\n"
      "                        hardware concurrency)\n"
      "  --model <path>        (eval / align / serve) load a briq-model-v1\n"
      "                        file written by `train --model-out` instead\n"
      "                        of training in-process\n"
      "  --model-out <path>    (train) where to write the trained model\n"
      "  --train-pct <p>       (train) train on the first <p> percent of the\n"
      "                        corpus (default 90, matching eval's split)\n"
      "  --spill-dir <d>       (train) spill training samples to checksummed\n"
      "                        files under <d> and fit out-of-core, keeping\n"
      "                        peak memory independent of the corpus size\n"
      "  --max-samples <n>     (train) with --spill-dir, keep a seeded\n"
      "                        uniform reservoir of <n> samples per forest\n"
      "\n"
      "continuous telemetry (train / eval / align / serve):\n"
      "  --metrics-interval <sec>    append a metrics JSONL record every\n"
      "                              <sec> seconds while the job runs\n"
      "  --metrics-every-docs <n>    ... and/or every <n> documents\n"
      "                              (whichever trigger fires first)\n"
      "  --metrics-flush-out <path>  JSONL sink of the periodic flusher\n"
      "  --trace-out <path>          write sampled document span trees as\n"
      "                              Chrome trace-event JSON (Perfetto)\n"
      "  --trace-sample <frac>       random fraction of documents to trace\n"
      "                              (default 0.01)\n"
      "  --trace-slowest <k>         always keep the <k> slowest documents\n"
      "                              per flush window (default 4)\n"
      "  --serve-port <p>            expose GET /metrics (Prometheus text)\n"
      "                              and /healthz on 127.0.0.1:<p> while the\n"
      "                              job runs; port 0 picks a free one\n"
      "  --serve-linger <sec>        keep serving up to <sec> seconds after\n"
      "                              the job ends (GET /quitquitquit ends\n"
      "                              the linger early)\n"
      "  --metrics-push <host:port>  push every flushed snapshot (plus\n"
      "                              heartbeats) as length-prefixed JSON\n"
      "                              frames to a fleet collector on\n"
      "                              127.0.0.1:<port>\n"
      "  --worker-id <k>             worker id stamped into pushed frames\n"
      "  --heartbeat-seconds <s>     heartbeat cadence between pushes\n"
      "                              (default 0.5)\n"
      "\n"
      "fleet runs (`briq_tool fleet`, DESIGN.md §5j):\n"
      "  --workers <n>               worker processes; the corpus' shards\n"
      "                              are split into <n> contiguous ranges\n"
      "                              (default 2, clamped to the shard count)\n"
      "  --on-worker-failure <p>     fail (default): stop the fleet on the\n"
      "                              first bad worker exit or missed\n"
      "                              heartbeat; restart: re-exec the worker\n"
      "                              over its range, up to --max-restarts\n"
      "                              (default 2) times per slot\n"
      "  --model <m>                 (fleet align) forwarded to workers so\n"
      "                              they skip in-process training\n"
      "  --model-out <prefix>        (fleet train) worker K writes\n"
      "                              <prefix>.wK\n"
      "  --shard-range <a:b>         (align --stream / train) process only\n"
      "                              shards [a, b) — what fleet workers are\n"
      "                              handed; document indices stay global\n"
      "  --sleep-per-doc-ms <n>      (align --stream) throttle: sleep after\n"
      "                              each document (fleet smoke tests)\n"
      "\n"
      "serving alignments (`briq_tool serve`, DESIGN.md §5h):\n"
      "  --model <model>             serve POST /align from this\n"
      "                              briq-model-v1 file (without it /align\n"
      "                              answers 503)\n"
      "  --port <p>                  port to bind on 127.0.0.1 (default 0 =\n"
      "                              ephemeral; --serve-port is an alias)\n"
      "  --serve-threads <n>         worker threads handling connections\n"
      "                              (default: hardware concurrency)\n"
      "  --queue-capacity <q>        accepted connections buffered ahead of\n"
      "                              the workers (default 64); when full the\n"
      "                              acceptor sheds load with 503 +\n"
      "                              Retry-After instead of queueing\n"
      "  --retry-after-seconds <n>   Retry-After value sent with shed 503s\n"
      "                              (default 1)\n"
      "  --access-log <path>         append one JSON line per request (trace\n"
      "                              id, route, status, bytes, wall +\n"
      "                              per-stage seconds, queue wait); rotates\n"
      "                              by size (--access-log-max-bytes <n>)\n"
      "  --slow-request-seconds <s>  requests at least this slow are kept in\n"
      "                              the /statusz slow-request ring and, with\n"
      "                              --trace-out, always exported regardless\n"
      "                              of --trace-sample (default 0.5)\n"
      "\n"
      "  GET /statusz serves a self-contained HTML debug page (build/model\n"
      "  info, rolling p50/p95/p99 per route, queue depth, slow requests);\n"
      "  every response carries X-Briq-Trace-Id and Server-Timing headers.\n"
      "\n"
      "environment:\n"
      "  BRIQ_LOG_LEVEL        debug|info|warning|error — minimum log level\n"
      "                        emitted to stderr (default: info)\n";
}

int Usage() {
  PrintUsage(std::cerr);
  return 2;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::optional<std::string> FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

bool Contains(const std::vector<const char*>& flags, const char* arg) {
  for (const char* flag : flags) {
    if (std::strcmp(flag, arg) == 0) return true;
  }
  return false;
}

/// Strict flag vetting: every `--` token must be a known value flag (which
/// consumes the next token) or a known boolean flag for the subcommand.
/// A typo'd flag would otherwise be silently ignored — and an ignored
/// `--model-out` or `--on-worker-failure` is a silently wrong run. Returns
/// 0 or the usage exit code (2).
int CheckFlags(int argc, char** argv,
               const std::vector<const char*>& value_flags,
               const std::vector<const char*>& bool_flags = {}) {
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    if (Contains(value_flags, arg)) {
      if (i + 1 >= argc) {
        std::cerr << "briq_tool: flag '" << arg << "' requires a value\n";
        return Usage();
      }
      ++i;  // the value, even if it starts with "--"
      continue;
    }
    if (Contains(bool_flags, arg)) continue;
    std::cerr << "briq_tool: unknown flag '" << arg << "' for '" << argv[1]
              << "'\n";
    return Usage();
  }
  return 0;
}

/// The continuous-telemetry flags shared by every RunWithTelemetry command
/// (SetupTelemetry + MaybeWriteMetrics), prepended to a command's own
/// value flags.
std::vector<const char*> WithTelemetryFlags(std::vector<const char*> flags) {
  for (const char* flag :
       {"--metrics-out", "--metrics-interval", "--metrics-every-docs",
        "--metrics-flush-out", "--trace-out", "--trace-sample",
        "--trace-slowest", "--serve-port", "--serve-linger", "--metrics-push",
        "--worker-id", "--heartbeat-seconds"}) {
    flags.push_back(flag);
  }
  return flags;
}

/// Writes the observability snapshot when --metrics-out was given; folds
/// the write status into the command's exit code.
int MaybeWriteMetrics(int argc, char** argv, int rc) {
  const std::optional<std::string> path =
      FlagValue(argc, argv, "--metrics-out");
  if (!path) return rc;
  util::Status status = obs::WriteMetricsJson(*path);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return rc == 0 ? 1 : rc;
  }
  std::cout << "wrote metrics to " << *path << "\n";
  return rc;
}

/// Parses a non-negative integer argument, or returns nullopt (instead of
/// letting std::stoul terminate the process on malformed input).
std::optional<size_t> ParseSize(const char* arg) {
  size_t value = 0;
  size_t pos = 0;
  try {
    value = std::stoul(arg, &pos);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (arg[pos] != '\0') return std::nullopt;
  return value;
}

/// Parses a finite double argument, or returns nullopt.
std::optional<double> ParseDouble(const char* arg) {
  double value = 0.0;
  size_t pos = 0;
  try {
    value = std::stod(arg, &pos);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (arg[pos] != '\0') return std::nullopt;
  return value;
}

/// Parses the --shard-range spec "a:b" (shard indices, end exclusive).
bool ParseShardRange(const std::string& spec, size_t* begin, size_t* end) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) return false;
  const std::optional<size_t> b = ParseSize(spec.substr(0, colon).c_str());
  const std::optional<size_t> e = ParseSize(spec.substr(colon + 1).c_str());
  if (!b || !e || *b >= *e) return false;
  *begin = *b;
  *end = *e;
  return true;
}

/// Documents declared by the shard headers of [shard_begin, shard_end)
/// alone — the range analogue of corpus::CountShardedDocuments, used by
/// `train --shard-range` to compute its split without a corpus pass.
util::Result<size_t> CountRangeDocuments(const std::string& directory,
                                         size_t shard_begin,
                                         size_t shard_end) {
  BRIQ_ASSIGN_OR_RETURN(const std::vector<std::string> paths,
                        corpus::ListShards(directory, kShardStem));
  shard_end = std::min(shard_end, paths.size());
  if (shard_begin >= shard_end) {
    return util::Status::InvalidArgument(
        "--shard-range is empty for this corpus (it has " +
        std::to_string(paths.size()) + " shard(s))");
  }
  size_t total = 0;
  for (size_t i = shard_begin; i < shard_end; ++i) {
    BRIQ_ASSIGN_OR_RETURN(const corpus::ShardHeader header,
                          corpus::ReadShardHeader(paths[i]));
    total += header.num_documents;
  }
  return total;
}

/// Continuous-telemetry attachments (DESIGN.md §5e): a sampled Perfetto
/// trace exporter, a periodic metrics flusher, and a live /metrics
/// endpoint. All optional, all flag-driven, torn down in Finish().
struct Telemetry {
  std::unique_ptr<obs::TraceExporter> exporter;
  std::unique_ptr<obs::MetricsFlusher> flusher;
  std::unique_ptr<obs::MetricsHttpServer> server;
  double serve_linger_seconds = 0.0;

  /// Lingers on the serve port (so a scraper can still collect the final
  /// numbers), then stops the flusher (final JSONL record + trace flush)
  /// and the server.
  void Finish() {
    if (server != nullptr && serve_linger_seconds > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(serve_linger_seconds));
      while (std::chrono::steady_clock::now() < deadline &&
             !server->quit_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (flusher != nullptr) flusher->Stop();
    if (exporter != nullptr) {
      exporter->Detach();
      const util::Status status = exporter->Flush();
      if (!status.ok()) std::cerr << status.ToString() << "\n";
    }
    if (server != nullptr) server->Stop();
  }
};

/// Builds the telemetry attachments requested on the command line.
/// `docs_counter` drives --metrics-every-docs and the docs/sec rate
/// (streaming and whole-document commands count different instruments).
/// Returns nonzero on a malformed flag or a failed start.
int SetupTelemetry(int argc, char** argv, const char* docs_counter,
                   Telemetry* t) {
  if (const std::optional<std::string> trace_out =
          FlagValue(argc, argv, "--trace-out")) {
    obs::TraceExportOptions options;
    options.path = *trace_out;
    if (const std::optional<std::string> v =
            FlagValue(argc, argv, "--trace-sample")) {
      const std::optional<double> parsed = ParseDouble(v->c_str());
      if (!parsed || *parsed < 0.0 || *parsed > 1.0) return Usage();
      options.sample_fraction = *parsed;
    }
    if (const std::optional<std::string> v =
            FlagValue(argc, argv, "--trace-slowest")) {
      const std::optional<size_t> parsed = ParseSize(v->c_str());
      if (!parsed) return Usage();
      options.slowest_per_window = *parsed;
    }
    t->exporter = std::make_unique<obs::TraceExporter>(options);
    t->exporter->Attach();
  }

  const std::optional<std::string> flush_out =
      FlagValue(argc, argv, "--metrics-flush-out");
  const std::optional<std::string> interval =
      FlagValue(argc, argv, "--metrics-interval");
  const std::optional<std::string> every_docs =
      FlagValue(argc, argv, "--metrics-every-docs");
  const std::optional<std::string> push =
      FlagValue(argc, argv, "--metrics-push");
  if (flush_out || interval || every_docs || push) {
    obs::FlusherOptions options;
    options.docs_counter = docs_counter;
    if (flush_out) options.path = *flush_out;
    if (interval) {
      const std::optional<double> parsed = ParseDouble(interval->c_str());
      if (!parsed) return Usage();
      options.interval_seconds = *parsed;
    }
    if (every_docs) {
      const std::optional<size_t> parsed = ParseSize(every_docs->c_str());
      if (!parsed) return Usage();
      options.every_docs = *parsed;
      // Docs-only cadence unless an interval was also requested.
      if (!interval) options.interval_seconds = 0.0;
    }
    if (push) {
      // host:port, loopback only — the push socket is util::ClientSocket,
      // which connects to 127.0.0.1 by design.
      const size_t colon = push->rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "--metrics-push expects host:port\n";
        return Usage();
      }
      const std::string host = push->substr(0, colon);
      if (host != "127.0.0.1" && host != "localhost") {
        std::cerr << "--metrics-push host must be 127.0.0.1 or localhost "
                     "(the push socket is loopback-only)\n";
        return Usage();
      }
      const std::optional<size_t> port =
          ParseSize(push->substr(colon + 1).c_str());
      if (!port || *port == 0 || *port > 65535) return Usage();
      options.push_port = static_cast<uint16_t>(*port);
      if (const std::optional<std::string> v =
              FlagValue(argc, argv, "--worker-id")) {
        const std::optional<size_t> parsed = ParseSize(v->c_str());
        if (!parsed) return Usage();
        options.push_worker_id = static_cast<int>(*parsed);
      }
      if (const std::optional<std::string> v =
              FlagValue(argc, argv, "--heartbeat-seconds")) {
        const std::optional<double> parsed = ParseDouble(v->c_str());
        if (!parsed || *parsed <= 0.0) return Usage();
        options.heartbeat_seconds = *parsed;
      }
    }
    t->flusher = std::make_unique<obs::MetricsFlusher>(
        options, /*registry=*/nullptr, t->exporter.get());
    const util::Status status = t->flusher->Start();
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }

  if (const std::optional<std::string> port_flag =
          FlagValue(argc, argv, "--serve-port")) {
    const std::optional<size_t> port = ParseSize(port_flag->c_str());
    if (!port || *port > 65535) return Usage();
    t->server = std::make_unique<obs::MetricsHttpServer>();
    const util::Status status =
        t->server->Start(static_cast<uint16_t>(*port));
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    // The resolved port on its own parseable line: scripts pass port 0 and
    // read the real one back from here.
    std::cout << "serving metrics on http://127.0.0.1:" << t->server->port()
              << "/metrics\n"
              << std::flush;
    if (const std::optional<std::string> linger =
            FlagValue(argc, argv, "--serve-linger")) {
      const std::optional<double> parsed = ParseDouble(linger->c_str());
      if (!parsed) return Usage();
      t->serve_linger_seconds = *parsed;
    }
  }
  return 0;
}

/// Runs a command body between telemetry setup and teardown, then honors
/// --metrics-out.
int RunWithTelemetry(int argc, char** argv, const char* docs_counter,
                     const std::function<int()>& body) {
  Telemetry telemetry;
  const int setup_rc = SetupTelemetry(argc, argv, docs_counter, &telemetry);
  if (setup_rc != 0) return setup_rc;
  const int rc = body();
  telemetry.Finish();
  return MaybeWriteMetrics(argc, argv, rc);
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  corpus::CorpusOptions options;
  const std::optional<size_t> n_docs = ParseSize(argv[2]);
  if (!n_docs) return Usage();
  options.num_documents = *n_docs;
  if (argc > 4 && std::strncmp(argv[4], "--", 2) != 0) {
    const std::optional<size_t> seed = ParseSize(argv[4]);
    if (!seed) return Usage();
    options.seed = *seed;
  }
  const corpus::CorpusJsonStyle style =
      HasFlag(argc, argv, "--compact") ? corpus::CorpusJsonStyle::kCompact
                                       : corpus::CorpusJsonStyle::kPretty;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);
  util::Status status = corpus::SaveCorpus(corpus, argv[3], style);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << corpus.size() << " documents to " << argv[3]
            << "\n";
  return 0;
}

int Shard(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto corpus = corpus::LoadCorpus(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  size_t shard_size = 128;
  if (argc > 4 && std::strncmp(argv[4], "--", 2) != 0) {
    const std::optional<size_t> parsed = ParseSize(argv[4]);
    if (!parsed || *parsed == 0) return Usage();
    shard_size = *parsed;
  }
  std::error_code ec;
  std::filesystem::create_directories(argv[3], ec);
  auto paths =
      corpus::WriteCorpusShards(*corpus, argv[3], kShardStem, shard_size);
  if (!paths.ok()) {
    std::cerr << paths.status().ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << corpus->size() << " documents as " << paths->size()
            << " shard(s) of <= " << shard_size << " docs under " << argv[3]
            << "\n";
  return 0;
}

/// Loads either a legacy single-file corpus or (when `path` is a
/// directory) a briq-shard-v1 sharded corpus.
util::Result<corpus::Corpus> Load(const char* path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return corpus::LoadShardedCorpus(path, kShardStem);
  }
  return corpus::LoadCorpus(path);
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto corpus = Load(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  size_t paragraphs = 0;
  size_t tables = 0;
  size_t gt = 0;
  std::map<std::string, size_t> by_domain;
  std::map<std::string, size_t> by_type;
  for (const corpus::Document& d : corpus->documents) {
    paragraphs += d.paragraphs.size();
    tables += d.tables.size();
    gt += d.ground_truth.size();
    ++by_domain[d.domain];
    for (const auto& g : d.ground_truth) {
      ++by_type[table::AggregateFunctionName(g.target.func)];
    }
  }
  util::TablePrinter printer("corpus statistics");
  printer.SetHeader({"metric", "value"});
  printer.AddRow({"documents", std::to_string(corpus->size())});
  printer.AddRow({"paragraphs", std::to_string(paragraphs)});
  printer.AddRow({"tables", std::to_string(tables)});
  printer.AddRow({"annotated alignments", std::to_string(gt)});
  for (const auto& [domain, n] : by_domain) {
    printer.AddRow({"domain: " + domain, std::to_string(n)});
  }
  for (const auto& [type, n] : by_type) {
    printer.AddRow({"mention type: " + type, std::to_string(n)});
  }
  std::cout << printer.ToString();
  return 0;
}

// Trains on all documents except `holdout` (or the first 90% when
// holdout < 0) and returns the trained system with the prepared docs.
struct Trained {
  core::BriqConfig config;
  std::vector<core::PreparedDocument> prepared;
  std::unique_ptr<core::BriqSystem> system;
};

Trained TrainOn(const corpus::Corpus& corpus, int holdout) {
  Trained t;
  for (const auto& d : corpus.documents) {
    t.prepared.push_back(core::PrepareDocument(d, t.config));
  }
  std::vector<const core::PreparedDocument*> train;
  size_t limit = holdout < 0 ? corpus.size() * 9 / 10 : corpus.size();
  for (size_t i = 0; i < limit; ++i) {
    if (static_cast<int>(i) == holdout) continue;
    train.push_back(&t.prepared[i]);
  }
  t.system = std::make_unique<core::BriqSystem>(t.config);
  BRIQ_CHECK_OK(t.system->Train(train));
  return t;
}

/// "Serve" half of train-once-serve-many: prepares the corpus and restores
/// the forests from a briq-model-v1 file instead of training in-process.
util::Result<Trained> TrainedFromModel(const corpus::Corpus& corpus,
                                       const std::string& model_path) {
  Trained t;
  for (const auto& d : corpus.documents) {
    t.prepared.push_back(core::PrepareDocument(d, t.config));
  }
  t.system = std::make_unique<core::BriqSystem>(t.config);
  BRIQ_RETURN_IF_ERROR(t.system->LoadModel(model_path));
  return t;
}

/// Dispatches on --model: load a persisted model, or train in-process the
/// way the command always has. Returns nullopt (after printing the error)
/// when the model cannot be loaded.
std::optional<Trained> TrainOrLoad(int argc, char** argv,
                                   const corpus::Corpus& corpus, int holdout) {
  if (const std::optional<std::string> model =
          FlagValue(argc, argv, "--model")) {
    util::Result<Trained> t = TrainedFromModel(corpus, *model);
    if (!t.ok()) {
      std::cerr << t.status().ToString() << "\n";
      return std::nullopt;
    }
    return std::move(t).value();
  }
  return TrainOn(corpus, holdout);
}

/// `briq_tool train`: streams the first --train-pct percent of the corpus
/// through the StreamingTrainer and writes the result as a briq-model-v1
/// file. A sharded corpus never materializes in memory; add --spill-dir to
/// also keep the training samples out of core.
int Train(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::optional<std::string> model_out =
      FlagValue(argc, argv, "--model-out");
  if (!model_out) {
    std::cerr << "train requires --model-out <path>\n";
    return Usage();
  }

  size_t train_pct = 90;
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--train-pct")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed || *parsed == 0 || *parsed > 100) return Usage();
    train_pct = *parsed;
  }

  core::StreamingTrainOptions options;
  if (const std::optional<std::string> threads =
          FlagValue(argc, argv, "--threads")) {
    const std::optional<size_t> parsed = ParseSize(threads->c_str());
    if (!parsed) return Usage();
    options.num_threads = static_cast<int>(*parsed);
  }
  if (const std::optional<std::string> spill =
          FlagValue(argc, argv, "--spill-dir")) {
    options.spill_dir = *spill;
    std::error_code ec;
    std::filesystem::create_directories(*spill, ec);
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--max-samples")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed) return Usage();
    if (options.spill_dir.empty()) {
      std::cerr << "--max-samples requires --spill-dir\n";
      return Usage();
    }
    options.max_classifier_samples = *parsed;
    options.max_tagger_samples = *parsed;
  }

  core::BriqConfig config;
  core::BriqSystem system(config);
  core::StreamingTrainer trainer(&system, options);
  size_t total_docs = 0;
  size_t trained_docs = 0;
  util::Status status;

  size_t shard_begin = 0;
  size_t shard_end = SIZE_MAX;
  bool has_range = false;
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--shard-range")) {
    if (!ParseShardRange(*v, &shard_begin, &shard_end)) return Usage();
    has_range = true;
  }

  std::error_code ec;
  if (std::filesystem::is_directory(argv[2], ec)) {
    // Sharded corpus: count documents from the shard headers (cheap), then
    // stream — the corpus itself never materializes in memory. With
    // --shard-range both the count and the reader cover just the range.
    auto count = has_range
                     ? CountRangeDocuments(argv[2], shard_begin, shard_end)
                     : corpus::CountShardedDocuments(argv[2], kShardStem);
    if (!count.ok()) {
      std::cerr << count.status().ToString() << "\n";
      return 1;
    }
    total_docs = *count;
    const size_t limit = total_docs * train_pct / 100;
    auto reader = has_range
                      ? corpus::ShardedCorpusReader::Open(
                            argv[2], kShardStem, shard_begin, shard_end)
                      : corpus::ShardedCorpusReader::Open(argv[2], kShardStem);
    if (!reader.ok()) {
      std::cerr << reader.status().ToString() << "\n";
      return 1;
    }
    status = trainer.Train(
        [&]() -> util::Result<std::optional<corpus::Document>> {
          if (trained_docs >= limit) {
            return std::optional<corpus::Document>(std::nullopt);
          }
          auto next = reader->Next();
          if (next.ok() && next->has_value()) ++trained_docs;
          return next;
        });
  } else {
    if (has_range) {
      std::cerr << "--shard-range requires a sharded corpus directory\n";
      return Usage();
    }
    auto corpus = corpus::LoadCorpus(argv[2]);
    if (!corpus.ok()) {
      std::cerr << corpus.status().ToString() << "\n";
      return 1;
    }
    total_docs = corpus->size();
    const size_t limit = total_docs * train_pct / 100;
    status = trainer.Train(
        [&]() -> util::Result<std::optional<corpus::Document>> {
          if (trained_docs >= limit) {
            return std::optional<corpus::Document>(std::nullopt);
          }
          return std::optional<corpus::Document>(
              corpus->documents[trained_docs++]);
        });
  }
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  status = system.SaveModel(*model_out);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  const auto& stats = system.classifier().stats();
  std::cout << "trained on " << trained_docs << " of " << total_docs
            << " documents (" << train_pct << "%), "
            << stats.total_positives << " positive / "
            << stats.total_negatives << " negative pairs\n"
            << "wrote model to " << *model_out << "\n";
  return 0;
}

int Eval(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto corpus = Load(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  std::optional<Trained> trained = TrainOrLoad(argc, argv, *corpus,
                                               /*holdout=*/-1);
  if (!trained) return 1;
  Trained t = std::move(*trained);
  std::vector<core::PreparedDocument> test(
      t.prepared.begin() + corpus->size() * 9 / 10, t.prepared.end());
  if (test.empty()) {
    std::cerr << "corpus too small for a test split\n";
    return 1;
  }
  core::RfOnlyAligner rf(t.system.get());
  core::RwrOnlyAligner rwr(&t.config);

  util::TablePrinter printer("evaluation on the held-out 10%");
  printer.SetHeader({"system", "precision", "recall", "F1"});
  auto row = [&](const char* name, const core::EvalResult& r) {
    auto fmt = [](double v) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f", v);
      return std::string(buf);
    };
    printer.AddRow({name, fmt(r.Precision()), fmt(r.Recall()), fmt(r.F1())});
  };
  row("BriQ", core::EvaluateCorpus(*t.system, test));
  row("RF-only", core::EvaluateCorpus(rf, test));
  row("RWR-only", core::EvaluateCorpus(rwr, test));
  std::cout << printer.ToString();
  return 0;
}

/// `align <shard_dir> --stream`: aligns every document of a sharded
/// corpus through the StreamingAligner (training on the first 90% of the
/// corpus first), printing a one-line summary per run. With --metrics-out
/// this is the command that exercises the full streaming telemetry:
/// queue depth/wait gauges, shard read latencies, reorder-window peaks.
int AlignStream(int argc, char** argv) {
  std::error_code ec;
  if (!std::filesystem::is_directory(argv[2], ec)) {
    std::cerr << "align --stream requires a shard directory (see `briq_tool "
                 "shard`)\n";
    return 1;
  }

  size_t shard_begin = 0;
  size_t shard_end = SIZE_MAX;
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--shard-range")) {
    if (!ParseShardRange(*v, &shard_begin, &shard_end)) return Usage();
  }

  int sleep_per_doc_ms = 0;
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--sleep-per-doc-ms")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed) return Usage();
    sleep_per_doc_ms = static_cast<int>(*parsed);
  }

  Trained t;
  if (const std::optional<std::string> model =
          FlagValue(argc, argv, "--model")) {
    // Persisted model: skip loading the corpus entirely — the streaming
    // pipeline reads the shards itself, so peak memory stays O(1) in the
    // corpus size (this is what every fleet worker runs).
    t.system = std::make_unique<core::BriqSystem>(t.config);
    const util::Status status = t.system->LoadModel(*model);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  } else {
    auto corpus = Load(argv[2]);
    if (!corpus.ok()) {
      std::cerr << corpus.status().ToString() << "\n";
      return 1;
    }
    std::optional<Trained> trained = TrainOrLoad(argc, argv, *corpus,
                                                 /*holdout=*/-1);
    if (!trained) return 1;
    t = std::move(*trained);
  }

  core::StreamingOptions options;
  if (const std::optional<std::string> threads =
          FlagValue(argc, argv, "--threads")) {
    const std::optional<size_t> parsed = ParseSize(threads->c_str());
    if (!parsed) return Usage();
    options.num_threads = static_cast<int>(*parsed);
  }

  size_t docs = 0;
  size_t decisions = 0;
  util::Status status = core::AlignShardedCorpus(
      *t.system, t.config, argv[2], kShardStem, options,
      [&](size_t, const corpus::Document&,
          const core::DocumentAlignment& alignment) {
        ++docs;
        decisions += alignment.decisions.size();
        if (sleep_per_doc_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(sleep_per_doc_ms));
        }
      },
      shard_begin, shard_end);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "streamed " << docs << " documents, " << decisions
            << " alignment decisions\n";
  return 0;
}

/// `align --html <page.html> --model <m>`: raw page in, alignments out —
/// the offline twin of POSTing HTML to /align (shared implementation, so
/// the output bytes match).
int AlignHtml(int argc, char** argv, const std::string& html_path) {
  const std::optional<std::string> model = FlagValue(argc, argv, "--model");
  if (!model) {
    std::cerr << "align --html requires --model <path> (no corpus to train "
                 "on)\n";
    return Usage();
  }
  std::ifstream in(html_path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << html_path << "\n";
    return 1;
  }
  std::ostringstream html;
  html << in.rdbuf();
  core::BriqSystem system{core::BriqConfig{}};
  const util::Status status = system.LoadModel(*model);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  // --json is implied: the HTML path has no legacy text rendering.
  std::cout << serve::AlignHtmlJson(system, html.str());
  return 0;
}

int AlignOne(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto corpus = Load(argv[2]);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  const std::optional<size_t> parsed = ParseSize(argv[3]);
  if (!parsed) return Usage();
  const size_t index = *parsed;
  if (index >= corpus->size()) {
    std::cerr << "doc_index out of range (corpus has " << corpus->size()
              << " documents)\n";
    return 1;
  }
  std::optional<Trained> trained =
      TrainOrLoad(argc, argv, *corpus, static_cast<int>(index));
  if (!trained) return 1;
  Trained t = std::move(*trained);
  if (HasFlag(argc, argv, "--json")) {
    // Canonical serving JSON (serve_parity_test pins this to POST /align
    // byte-for-byte).
    std::cout << serve::AlignDocumentJson(*t.system,
                                          corpus->documents[index]);
    return 0;
  }
  const core::PreparedDocument& doc = t.prepared[index];
  core::DocumentAlignment alignment = t.system->Align(doc);

  std::cout << "document " << doc.source->id << " ("
            << doc.text_mentions.size() << " text mentions, "
            << doc.table_mentions.size() << " table mentions incl. virtual "
            << "cells)\n";
  for (const auto& p : doc.source->paragraphs) {
    std::cout << "  | " << p << "\n";
  }
  std::cout << "\nalignments:\n";
  for (const auto& d : alignment.decisions) {
    std::cout << "  \"" << doc.text_mentions[d.text_idx].surface()
              << "\"  ->  " << doc.table_mentions[d.table_idx].DebugString()
              << "\n";
  }
  return 0;
}

/// `briq_tool serve`: alignment-as-a-service (DESIGN.md §5h). Boots the
/// multi-threaded serve::HttpServer hosting POST /align (when --model is
/// given; 503 otherwise) next to the GET /metrics, /healthz, and
/// /quitquitquit diagnostics the old loopback responder offered. Serves
/// until GET /quitquitquit or --serve-linger expires (default: one hour,
/// so a forgotten instance doesn't live forever).
int Serve(int argc, char** argv) {
  // --model: the "serve many" half of train-once-serve-many — the model
  // loads once here and is shared read-only across every worker thread.
  std::unique_ptr<core::BriqSystem> system;
  std::string model_info;
  if (const std::optional<std::string> model =
          FlagValue(argc, argv, "--model")) {
    system = std::make_unique<core::BriqSystem>(core::BriqConfig{});
    const util::Status status = system->LoadModel(*model);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "loaded model " << *model << "\n";
    model_info = *model;
  }

  serve::HttpServerOptions options;
  for (const char* flag : {"--port", "--serve-port"}) {
    if (const std::optional<std::string> v = FlagValue(argc, argv, flag)) {
      const std::optional<size_t> parsed = ParseSize(v->c_str());
      if (!parsed || *parsed > 65535) return Usage();
      options.port = static_cast<uint16_t>(*parsed);
    }
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--serve-threads")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed || *parsed == 0) return Usage();
    options.num_threads = static_cast<int>(*parsed);
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--queue-capacity")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed || *parsed == 0) return Usage();
    options.queue_capacity = *parsed;
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--retry-after-seconds")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed) return Usage();
    options.retry_after_seconds = static_cast<int>(*parsed);
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--slow-request-seconds")) {
    const std::optional<double> parsed = ParseDouble(v->c_str());
    if (!parsed) return Usage();
    options.slow_request_seconds = *parsed;
  }
  double linger_seconds = 3600.0;
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--serve-linger")) {
    const std::optional<double> parsed = ParseDouble(v->c_str());
    if (!parsed) return Usage();
    linger_seconds = *parsed;
  }

  // --access-log: structured per-request JSONL (fail fast on an unwritable
  // path — silently serving unlogged would defeat the point).
  std::unique_ptr<obs::AccessLog> access_log;
  if (const std::optional<std::string> path =
          FlagValue(argc, argv, "--access-log")) {
    obs::AccessLogOptions log_options;
    log_options.path = *path;
    if (const std::optional<std::string> v =
            FlagValue(argc, argv, "--access-log-max-bytes")) {
      const std::optional<size_t> parsed = ParseSize(v->c_str());
      if (!parsed) return Usage();
      log_options.max_bytes = *parsed;
    }
    access_log = std::make_unique<obs::AccessLog>(log_options);
    const util::Status status = access_log->Open();
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    options.access_log = access_log.get();
  }

  // --trace-out: same exporter the batch commands use, with every request
  // slower than the /statusz threshold pinned into the export regardless
  // of the sampling fraction.
  std::unique_ptr<obs::TraceExporter> exporter;
  if (const std::optional<std::string> trace_out =
          FlagValue(argc, argv, "--trace-out")) {
    obs::TraceExportOptions trace_options;
    trace_options.path = *trace_out;
    if (const std::optional<std::string> v =
            FlagValue(argc, argv, "--trace-sample")) {
      const std::optional<double> parsed = ParseDouble(v->c_str());
      if (!parsed || *parsed < 0.0 || *parsed > 1.0) return Usage();
      trace_options.sample_fraction = *parsed;
    }
    if (const std::optional<std::string> v =
            FlagValue(argc, argv, "--trace-slowest")) {
      const std::optional<size_t> parsed = ParseSize(v->c_str());
      if (!parsed) return Usage();
      trace_options.slowest_per_window = *parsed;
    }
    trace_options.always_keep_slower_than_seconds =
        options.slow_request_seconds;
    exporter = std::make_unique<obs::TraceExporter>(trace_options);
    exporter->Attach();
  }

  std::atomic<bool> quit{false};
  serve::Router router;
  serve::RegisterDiagnosticRoutes(&router, &quit);
  serve::RegisterAlignRoute(&router, system.get());
  serve::StatuszInfo statusz_info;
  statusz_info.build_info = "briq_tool serve";
  statusz_info.model_info = model_info;
  serve::RegisterStatuszRoute(&router, statusz_info);

  serve::HttpServer server(std::move(router), options);
  const util::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  // The resolved port on its own parseable line (scripts pass port 0 and
  // read the real one back), format-compatible with the telemetry
  // sidecar's announcement.
  std::cout << "serving metrics on http://127.0.0.1:" << server.port()
            << "/metrics\n";
  std::cout << "POST /align "
            << (system != nullptr ? "ready" : "disabled (no --model)")
            << "\n"
            << std::flush;
  // SIGTERM/SIGINT drain gracefully: the loop below exits, Stop() finishes
  // the in-flight requests, and the trace/access-log teardown still runs —
  // a supervisor's TERM loses no records. A second signal kills outright.
  util::InstallShutdownHandler();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(linger_seconds));
  while (std::chrono::steady_clock::now() < deadline && !quit.load() &&
         !util::ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (util::ShutdownRequested()) {
    std::cout << "shutting down on signal " << util::ShutdownSignal()
              << " (draining in-flight requests)\n"
              << std::flush;
  }
  server.Stop();
  if (exporter != nullptr) {
    exporter->Detach();
    const util::Status flush_status = exporter->Flush();
    if (!flush_status.ok()) std::cerr << flush_status.ToString() << "\n";
  }
  if (access_log != nullptr) {
    access_log->Close();
    if (!access_log->status().ok()) {
      std::cerr << access_log->status().ToString() << "\n";
      return 1;
    }
  }
  return 0;
}

/// `briq_tool quantity <string> [--cell] [--legacy] [--locale us|eu]`:
/// runs the quantity extractor on one string and prints every mention
/// with its normalized value, unit, base-unit value, interval endpoints,
/// precision, and approximation cue. Extended (CQE-grade) forms are on by
/// default; --legacy runs the historical language, --cell parses in
/// table-cell mode ("$(9.49) Million", "--"), --locale pins the
/// separator disambiguation.
int Quantity(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::cerr << "briq_tool: quantity needs a string argument\n";
    return Usage();
  }
  const std::string input = argv[2];
  quantity::ExtractionOptions options;
  options.extended_forms = !HasFlag(argc, argv, "--legacy");
  if (const std::optional<std::string> locale =
          FlagValue(argc, argv, "--locale")) {
    if (*locale == "us") {
      options.locale = quantity::LocaleHint::kUS;
    } else if (*locale == "eu" || *locale == "european") {
      options.locale = quantity::LocaleHint::kEuropean;
    } else {
      std::cerr << "briq_tool: --locale must be 'us' or 'eu'\n";
      return Usage();
    }
  }

  std::vector<quantity::ParsedQuantity> mentions;
  if (HasFlag(argc, argv, "--cell")) {
    if (std::optional<quantity::ParsedQuantity> q =
            quantity::ParseCellQuantity(input, options)) {
      mentions.push_back(std::move(*q));
    }
  } else {
    mentions = quantity::ExtractQuantities(input, options);
  }
  if (mentions.empty()) {
    std::cout << "no quantity found\n";
    return 1;
  }
  for (const quantity::ParsedQuantity& q : mentions) {
    const quantity::NormalizedQuantity n = q.normalized();
    std::cout << "surface   \"" << q.surface << "\" [" << q.span.begin << ", "
              << q.span.end << ")\n";
    if (q.is_interval()) {
      std::cout << "value     [" << q.value_lo << ", " << q.value_hi
                << "] (midpoint " << q.value << ")\n";
    } else {
      std::cout << "value     " << q.value << "\n";
    }
    if (q.has_unit()) {
      std::cout << "unit      " << q.unit << " ("
                << quantity::UnitCategoryName(q.unit_category) << ")\n";
      if (q.unit_to_base != 1.0 || n.base_unit != q.unit) {
        std::cout << "base      " << n.value << " " << n.base_unit << " (x"
                  << q.unit_to_base << ")\n";
      }
    }
    std::cout << "precision " << q.precision << "\n";
    if (q.approx != quantity::ApproxIndicator::kNone) {
      std::cout << "approx    " << quantity::ApproxIndicatorName(q.approx)
                << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}

/// `briq_tool logcheck <file.jsonl> [--require k1,k2,...]`: verifies a
/// JSONL file (the access log, the metrics flusher's output) is
/// well-formed — every non-empty line parses as a JSON object carrying
/// every required key. CI uses it to validate the access log after a
/// serve run.
int LogCheck(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::vector<std::string> required;
  if (const std::optional<std::string> keys =
          FlagValue(argc, argv, "--require")) {
    std::string key;
    for (const char c : *keys + ",") {
      if (c == ',') {
        if (!key.empty()) required.push_back(key);
        key.clear();
      } else {
        key.push_back(c);
      }
    }
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::cerr << "logcheck: cannot open " << argv[2] << "\n";
    return 1;
  }
  std::string line;
  size_t line_number = 0;
  size_t checked = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    util::Result<util::Json> parsed = util::Json::Parse(line);
    if (!parsed.ok()) {
      std::cerr << "logcheck: " << argv[2] << ":" << line_number
                << ": not valid JSON: " << parsed.status().message() << "\n";
      return 1;
    }
    if (!parsed->is_object()) {
      std::cerr << "logcheck: " << argv[2] << ":" << line_number
                << ": not a JSON object\n";
      return 1;
    }
    for (const std::string& key : required) {
      if (!parsed->Has(key)) {
        std::cerr << "logcheck: " << argv[2] << ":" << line_number
                  << ": missing required key \"" << key << "\"\n";
        return 1;
      }
    }
    ++checked;
  }
  std::cout << checked << " line(s) ok\n";
  return 0;
}

/// `briq_tool fleet <align|train> <shard_dir>`: the multi-process shard
/// driver (DESIGN.md §5j). Partitions the corpus' shards into contiguous
/// ranges, re-execs this binary once per range with --shard-range and
/// --metrics-push, and serves the merged fleet telemetry until every
/// worker finished (or the failure policy stops the run).
int Fleet(int argc, char** argv) {
  if (argc < 4) return Usage();
  fleet::FleetOptions options;
  options.mode = argv[2];
  options.corpus_dir = argv[3];

  // Workers re-exec this very binary. /proc/self/exe resolves it even when
  // argv[0] was a bare name found via PATH; --worker-binary overrides
  // (tests point it at a stub).
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  options.worker_binary = ec ? std::string(argv[0]) : self.string();
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--worker-binary")) {
    options.worker_binary = *v;
  }

  if (const std::optional<std::string> v = FlagValue(argc, argv, "--workers")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed || *parsed == 0) return Usage();
    options.num_workers = static_cast<int>(*parsed);
  }
  if (const std::optional<std::string> v = FlagValue(argc, argv, "--threads")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed || *parsed == 0) return Usage();
    options.worker_threads = static_cast<int>(*parsed);
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--on-worker-failure")) {
    if (*v == "fail") {
      options.on_failure = fleet::OnWorkerFailure::kFail;
    } else if (*v == "restart") {
      options.on_failure = fleet::OnWorkerFailure::kRestart;
    } else {
      std::cerr << "--on-worker-failure expects fail or restart\n";
      return Usage();
    }
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--max-restarts")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed) return Usage();
    options.max_restarts = static_cast<int>(*parsed);
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--heartbeat-seconds")) {
    const std::optional<double> parsed = ParseDouble(v->c_str());
    if (!parsed || *parsed <= 0.0) return Usage();
    options.heartbeat_seconds = *parsed;
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--metrics-interval")) {
    const std::optional<double> parsed = ParseDouble(v->c_str());
    if (!parsed || *parsed <= 0.0) return Usage();
    options.metrics_interval_seconds = *parsed;
  }
  // The fleet's --metrics-out is the merged JSONL record stream (the
  // multi-process mirror of --metrics-flush-out), written by the driver —
  // not the single-process observability snapshot MaybeWriteMetrics emits.
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--metrics-out")) {
    options.metrics_out = *v;
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--serve-port")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed || *parsed > 65535) return Usage();
    options.http_port = static_cast<uint16_t>(*parsed);
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--serve-linger")) {
    const std::optional<double> parsed = ParseDouble(v->c_str());
    if (!parsed) return Usage();
    options.serve_linger_seconds = *parsed;
  }
  if (const std::optional<std::string> v = FlagValue(argc, argv, "--model")) {
    options.model = *v;
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--model-out")) {
    options.model_out = *v;
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--sleep-per-doc-ms")) {
    const std::optional<size_t> parsed = ParseSize(v->c_str());
    if (!parsed) return Usage();
    options.sleep_per_doc_ms = static_cast<int>(*parsed);
  }
  if (const std::optional<std::string> v =
          FlagValue(argc, argv, "--shutdown-grace-seconds")) {
    const std::optional<double> parsed = ParseDouble(v->c_str());
    if (!parsed || *parsed <= 0.0) return Usage();
    options.shutdown_grace_seconds = *parsed;
  }

  fleet::FleetDriver driver(std::move(options));
  const util::Status status = driver.Run();
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

/// Applies BRIQ_LOG_LEVEL from the environment. Returns false (after
/// printing the usage) when the variable is set to an unknown value.
bool ApplyLogLevelFromEnv() {
  const char* env = std::getenv("BRIQ_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return true;
  const std::string level = env;
  if (level == "debug") {
    util::SetLogThreshold(util::LogLevel::kDebug);
  } else if (level == "info") {
    util::SetLogThreshold(util::LogLevel::kInfo);
  } else if (level == "warning") {
    util::SetLogThreshold(util::LogLevel::kWarning);
  } else if (level == "error") {
    util::SetLogThreshold(util::LogLevel::kError);
  } else {
    std::cerr << "briq_tool: unknown BRIQ_LOG_LEVEL '" << level
              << "' (expected debug|info|warning|error)\n";
    PrintUsage(std::cerr);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!ApplyLogLevelFromEnv()) return 2;
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintUsage(std::cout);
    return 0;
  }
  if (cmd == "generate") {
    if (const int rc = CheckFlags(argc, argv, {"--metrics-out"}, {"--compact"}))
      return rc;
    return MaybeWriteMetrics(argc, argv, Generate(argc, argv));
  }
  if (cmd == "shard") {
    if (const int rc = CheckFlags(argc, argv, {"--metrics-out"})) return rc;
    return MaybeWriteMetrics(argc, argv, Shard(argc, argv));
  }
  if (cmd == "stats") {
    if (const int rc = CheckFlags(argc, argv, {})) return rc;
    return Stats(argc, argv);
  }
  if (cmd == "serve") {
    if (const int rc = CheckFlags(
            argc, argv,
            {"--model", "--port", "--serve-port", "--serve-threads",
             "--queue-capacity", "--retry-after-seconds",
             "--slow-request-seconds", "--serve-linger", "--access-log",
             "--access-log-max-bytes", "--trace-out", "--trace-sample",
             "--trace-slowest", "--metrics-out"}))
      return rc;
    return Serve(argc, argv);
  }
  if (cmd == "logcheck") {
    if (const int rc = CheckFlags(argc, argv, {"--require"})) return rc;
    return LogCheck(argc, argv);
  }
  if (cmd == "quantity") {
    if (const int rc = CheckFlags(argc, argv, {"--locale"},
                                  {"--cell", "--legacy"}))
      return rc;
    return Quantity(argc, argv);
  }
  if (cmd == "fleet") {
    if (const int rc = CheckFlags(
            argc, argv,
            {"--workers", "--threads", "--on-worker-failure", "--max-restarts",
             "--heartbeat-seconds", "--metrics-interval", "--metrics-out",
             "--serve-port", "--serve-linger", "--model", "--model-out",
             "--worker-binary", "--sleep-per-doc-ms",
             "--shutdown-grace-seconds"}))
      return rc;
    return Fleet(argc, argv);
  }
  if (cmd == "eval") {
    if (const int rc = CheckFlags(argc, argv, WithTelemetryFlags({"--model"})))
      return rc;
    return RunWithTelemetry(argc, argv, "briq.align.documents",
                            [&] { return Eval(argc, argv); });
  }
  if (cmd == "train") {
    if (const int rc = CheckFlags(
            argc, argv,
            WithTelemetryFlags({"--model-out", "--train-pct", "--threads",
                                "--spill-dir", "--max-samples",
                                "--shard-range"})))
      return rc;
    return RunWithTelemetry(argc, argv, "briq.train.documents",
                            [&] { return Train(argc, argv); });
  }
  if (cmd == "align") {
    if (const int rc = CheckFlags(
            argc, argv,
            WithTelemetryFlags({"--model", "--html", "--threads",
                                "--shard-range", "--sleep-per-doc-ms"}),
            {"--json", "--stream"}))
      return rc;
    if (const std::optional<std::string> html =
            FlagValue(argc, argv, "--html")) {
      return RunWithTelemetry(argc, argv, "briq.serve.align_documents",
                              [&] { return AlignHtml(argc, argv, *html); });
    }
    const bool stream = HasFlag(argc, argv, "--stream");
    if (stream && argc < 3) return Usage();
    // Streaming runs count documents at the reorder emitter; one-document
    // alignment counts at the pipeline.
    return RunWithTelemetry(
        argc, argv,
        stream ? "briq.stream.documents" : "briq.align.documents", [&] {
          return stream ? AlignStream(argc, argv) : AlignOne(argc, argv);
        });
  }
  std::cerr << "briq_tool: unknown command '" << cmd << "'\n";
  return Usage();
}
