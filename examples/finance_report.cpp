// Finance scenario: the paper's two hardest text phenomena on one page —
// approximate and scaled mentions ("$3.26 billion CDN" vs cell "3,263"
// under an "(in Mio)" caption, Figure 1c), and coupled quantities that are
// ambiguous across two structurally identical tables (Figure 3).

#include <iostream>

#include "core/gt_matching.h"
#include "core/pipeline.h"
#include "util/logging.h"
#include "corpus/generator.h"
#include "corpus/paper_examples.h"

namespace {

void Report(const briq::core::PreparedDocument& doc,
            const briq::core::DocumentAlignment& alignment) {
  using briq::core::MatchGroundTruth;
  for (const auto& m : MatchGroundTruth(doc)) {
    std::cout << "  \"" << m.gt->surface << "\"";
    if (m.text_idx < 0) {
      std::cout << "  (not extracted)\n";
      continue;
    }
    const auto* d = alignment.ForTextMention(m.text_idx);
    if (d == nullptr) {
      std::cout << "  ->  no alignment\n";
      continue;
    }
    const auto& t = doc.table_mentions[d->table_idx];
    bool correct = m.table_idx == d->table_idx;
    std::cout << "  ->  " << t.DebugString()
              << (correct ? "   [matches annotation]" : "   [differs]")
              << "\n";
  }
}

}  // namespace

int main() {
  using namespace briq;

  core::BriqConfig config;
  corpus::CorpusOptions options;
  options.num_documents = 200;
  options.seed = 7;
  // Train with emphasis on finance pages.
  options.domain_weights = {{"finance", 0.6}, {"others", 0.2},
                            {"politics", 0.2}};
  corpus::Corpus corpus = corpus::GenerateCorpus(options);

  std::vector<core::PreparedDocument> prepared;
  for (const auto& d : corpus.documents) {
    prepared.push_back(core::PrepareDocument(d, config));
  }
  std::vector<const core::PreparedDocument*> train;
  for (const auto& d : prepared) train.push_back(&d);

  core::BriqSystem briq(config);
  BRIQ_CHECK_OK(briq.Train(train));

  std::cout << "== Figure 1c: income statement with scaled mentions ==\n";
  corpus::Document fig1c = corpus::Figure1cFinance();
  std::cout << fig1c.paragraphs[0] << "\n\n";
  auto prepared_1c = core::PrepareDocument(fig1c, config);
  Report(prepared_1c, briq.Align(prepared_1c));

  std::cout << "\n== Figure 3: coupled quantities across two tables ==\n";
  corpus::Document fig3 = corpus::Figure3CoupledQuantities();
  std::cout << fig3.paragraphs[0] << "\n\n";
  auto prepared_3 = core::PrepareDocument(fig3, config);
  Report(prepared_3, briq.Align(prepared_3));

  return 0;
}
