// Full web-page pipeline: raw HTML in, quantity alignments out. Exercises
// every substrate — the HTML parser, table extractor, page segmentation
// into coherent documents (paragraph + related tables, paper §III), and
// the BriQ aligner.

#include <iostream>

#include "core/pipeline.h"
#include "util/logging.h"
#include "corpus/generator.h"
#include "html/page_segmenter.h"

namespace {

// A small multi-topic page the way it would arrive from a crawl: sloppy
// markup (unclosed cells), entities, one health table and one finance
// table, each discussed by its own paragraph.
constexpr const char* kPageHtml = R"(
<html><head><title>Weekly digest</title></head><body>
<h2>Drug trial update</h2>
<p>Depression was the most common side effect in the drug trials, reported
by 38 patients, while eye disorders were reported by 5 patients. A total of
123 patients reported side effects.</p>
<table>
 <tr><th>side effects</th><th>male</th><th>female</th><th>total</th>
 <tr><td>Rash<td>15<td>20<td>35
 <tr><td>Depression<td>13<td>25<td>38
 <tr><td>Hypertension<td>19<td>15<td>34
 <tr><td>Nausea<td>5<td>6<td>11
 <tr><td>Eye Disorders<td>2<td>3<td>5
</table>
<h2>Quarterly earnings</h2>
<p>Total Revenue reached $3,263 million in 2013, up from $3,193 million the
year before; income taxes came to $179 million.</p>
<table>
 <caption>Income gains ($ Millions)</caption>
 <tr><th>Income</th><th>2013</th><th>2012</th></tr>
 <tr><td>Total Revenue</td><td>3,263</td><td>3,193</td></tr>
 <tr><td>Income taxes</td><td>179</td><td>177</td></tr>
</table>
</body></html>
)";

}  // namespace

int main() {
  using namespace briq;

  // Train a system on synthetic data first.
  core::BriqConfig config;
  corpus::CorpusOptions options;
  options.num_documents = 150;
  options.seed = 99;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);
  std::vector<core::PreparedDocument> prepared;
  for (const auto& d : corpus.documents) {
    prepared.push_back(core::PrepareDocument(d, config));
  }
  std::vector<const core::PreparedDocument*> train;
  for (const auto& d : prepared) train.push_back(&d);
  core::BriqSystem briq(config);
  BRIQ_CHECK_OK(briq.Train(train));

  // 1) Parse and segment the page.
  html::Page page = html::SegmentPage(kPageHtml);
  std::cout << "page \"" << page.title << "\": " << page.ParagraphCount()
            << " paragraphs, " << page.TableCount() << " tables\n";

  // 2) Build coherent documents: each paragraph with its related tables.
  std::vector<corpus::Document> docs = core::BuildDocumentsFromPage(page);
  std::cout << "coherent documents: " << docs.size() << "\n\n";

  // 3) Align each document.
  for (const corpus::Document& doc : docs) {
    std::cout << "--- " << doc.id << " (" << doc.tables.size()
              << " related table(s)) ---\n";
    core::PreparedDocument p = core::PrepareDocument(doc, config);
    core::DocumentAlignment alignment = briq.Align(p);
    if (alignment.decisions.empty()) {
      std::cout << "  (no quantity alignments)\n";
    }
    for (const auto& d : alignment.decisions) {
      std::cout << "  \"" << p.text_mentions[d.text_idx].surface()
                << "\"  ->  " << p.table_mentions[d.table_idx].DebugString()
                << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
