// Corpus-scale run: generate a tableL-style corpus, simulate the human
// annotation pass (Fleiss' kappa and the >= 2-annotator filter), train,
// evaluate against both baselines, and measure throughput — the whole
// experimental protocol of paper §VII in one program. The final stage
// re-runs inference out-of-core: the corpus is written as briq-shard-v1
// JSONL shards and streamed back through core::StreamingAligner in
// bounded memory, the shape a web-scale (Dresden-corpus) run would take.

#include <filesystem>
#include <iostream>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "core/streaming_aligner.h"
#include "util/logging.h"
#include "corpus/annotator_sim.h"
#include "corpus/generator.h"
#include "corpus/shard_io.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace briq;

  size_t num_documents = argc > 1 ? std::stoul(argv[1]) : 400;

  // --- Corpus construction ---------------------------------------------
  corpus::CorpusOptions options;
  options.num_documents = num_documents;
  options.seed = 20240707;
  corpus::Corpus raw = corpus::GenerateCorpus(options);

  size_t filtered = 0;
  for (const auto& d : raw.documents) {
    if (corpus::PassesCorpusFilter(d)) ++filtered;
  }
  std::cout << "generated " << raw.size() << " documents ("
            << filtered << " pass the DWTC-style filter)\n";

  // --- Simulated annotation (tableS construction) -----------------------
  corpus::AnnotationOutcome annotation = corpus::SimulateAnnotation(raw);
  std::cout << "annotation: " << annotation.pairs_judged
            << " pairs judged (incl. unrelated decoys), "
            << annotation.pairs_kept << " of "
            << annotation.pairs_kept + annotation.pairs_dropped
            << " candidate alignments confirmed by >=2 annotators, Fleiss "
            << "kappa = " << annotation.fleiss_kappa
            << " (paper: 0.6854)\n";
  corpus::Corpus& corpus = annotation.annotated;

  // --- Split & prepare ----------------------------------------------------
  core::BriqConfig config;
  std::vector<core::PreparedDocument> train_docs;
  std::vector<core::PreparedDocument> test_docs;
  const size_t split = corpus.size() * 9 / 10;
  for (size_t i = 0; i < corpus.size(); ++i) {
    auto prepared = core::PrepareDocument(corpus.documents[i], config);
    (i < split ? train_docs : test_docs).push_back(std::move(prepared));
  }
  std::vector<const core::PreparedDocument*> train;
  for (const auto& d : train_docs) train.push_back(&d);

  // --- Train ---------------------------------------------------------------
  util::Stopwatch train_watch;
  core::BriqSystem briq(config);
  BRIQ_CHECK_OK(briq.Train(train));
  std::cout << "trained in " << train_watch.ElapsedSeconds() << " s ("
            << briq.classifier().stats().total_positives << " positives, "
            << briq.classifier().stats().total_negatives << " negatives)\n";

  // --- Evaluate --------------------------------------------------------------
  core::RfOnlyAligner rf(&briq);
  core::RwrOnlyAligner rwr(&config);
  auto print = [&](const char* name, const core::EvalResult& r) {
    std::cout << "  " << name << ": P=" << r.Precision()
              << " R=" << r.Recall() << " F1=" << r.F1() << "\n";
  };
  std::cout << "test-set quality (" << test_docs.size() << " docs):\n";
  print("BriQ", core::EvaluateCorpus(briq, test_docs));
  print("RF  ", core::EvaluateCorpus(rf, test_docs));
  print("RWR ", core::EvaluateCorpus(rwr, test_docs));

  // --- Throughput ---------------------------------------------------------
  util::Stopwatch watch;
  size_t mentions = 0;
  for (const auto& d : test_docs) {
    briq.Align(d);
    mentions += d.text_mentions.size();
  }
  double seconds = watch.ElapsedSeconds();
  std::cout << "inference: " << test_docs.size() << " docs, " << mentions
            << " text mentions in " << seconds << " s  ("
            << test_docs.size() / seconds * 60 << " docs/min)\n";

  // --- Streaming (out-of-core) inference -----------------------------------
  // Shard the corpus to disk, then pull it back through the bounded-memory
  // pipeline: peak RSS is O(queue + threads) documents, not O(corpus), and
  // results arrive in document order, bit-identical to Align above.
  namespace fs = std::filesystem;
  const fs::path shard_dir =
      fs::temp_directory_path() / "briq_corpus_pipeline_shards";
  std::error_code ec;
  fs::remove_all(shard_dir, ec);
  fs::create_directories(shard_dir);
  auto shards = corpus::WriteCorpusShards(corpus, shard_dir.string(),
                                          "corpus", /*shard_size=*/64);
  BRIQ_CHECK(shards.ok()) << shards.status().ToString();

  core::StreamingOptions stream_options;
  stream_options.num_threads = 0;  // hardware concurrency
  stream_options.queue_capacity = 64;
  size_t streamed = 0;
  size_t streamed_decisions = 0;
  watch.Reset();
  util::Status stream_status = core::AlignShardedCorpus(
      briq, config, shard_dir.string(), "corpus", stream_options,
      [&](size_t, const corpus::Document&,
          const core::DocumentAlignment& alignment) {
        ++streamed;
        streamed_decisions += alignment.decisions.size();
      });
  BRIQ_CHECK(stream_status.ok()) << stream_status.ToString();
  seconds = watch.ElapsedSeconds();
  std::cout << "streaming: " << streamed << " docs from " << shards->size()
            << " shards, " << streamed_decisions << " alignment decisions in "
            << seconds << " s  (" << streamed / seconds * 60
            << " docs/min, incl. parse + prepare)\n";
  fs::remove_all(shard_dir, ec);
  return 0;
}
